"""E19 — termination detection costs the computation's messages (§2.6, [29])
and global snapshots are consistent cuts (the unification remark).

Paper claims reproduced:
* Chandy–Misra: control messages >= basic messages; Dijkstra–Scholten
  meets the bound with equality on every seeded workload;
* Chandy–Lamport snapshots conserve the token total in every run, while
  the naive instantaneous dump undercounts whenever tokens are in flight.
"""

from conftest import record

from repro.asynchronous import (
    conservation_series,
    message_bound_series,
    run_dijkstra_scholten,
)


def test_e19_message_bound(benchmark):
    series = benchmark(lambda: message_bound_series(range(15), n=6))
    record(benchmark, pairs=[list(p) for p in series])
    assert all(control == basic for basic, control in series)


def test_e19_larger_computation(benchmark):
    result = benchmark(
        lambda: run_dijkstra_scholten(n=8, budget=8, fanout=3, seed=5)
    )
    record(benchmark, basic=result.basic_messages,
           control=result.control_messages)
    assert result.detected and result.detection_was_correct
    assert result.chandy_misra_holds


def test_e19_snapshot_consistency(benchmark):
    series = benchmark(lambda: conservation_series(range(15)))
    consistent = sum(1 for initial, snap, _naive in series if snap == initial)
    naive_wrong = sum(1 for initial, _snap, naive in series if naive < initial)
    record(benchmark, consistent=consistent, runs=len(series),
           naive_undercounts=naive_wrong)
    assert consistent == len(series)
    assert naive_wrong >= 3
