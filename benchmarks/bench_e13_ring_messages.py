"""E13 — ring election costs Theta(n log n) messages (§2.4.2).

Paper claims reproduced:
* LCR's worst case is exactly n(n+1)/2 + n (quadratic), HS stays within
  8 n log n + 4n, and the crossover falls between n = 8 and n = 32;
* bit-reversal rings are maximally comparison-symmetric (every aligned
  segment order-equivalent), the structure behind the Omega(n log n)
  bounds;
* the time-slice counterexample algorithm gets away with exactly n
  messages by paying time proportional to n * min_id — the assumption in
  the synchronous lower bound is necessary.
"""


from conftest import record

from repro.rings import (
    bit_reversal_ring,
    lcr_election,
    order_equivalent_segments,
    ring_election_certificate,
    timeslice_election,
    worst_case_ring,
)


def test_e13_message_series(benchmark):
    cert = benchmark(lambda: ring_election_certificate(sizes=(8, 16, 32, 64, 128)))
    record(benchmark,
           hs=cert.details["hs_messages"],
           lcr_worst=cert.details["lcr_worst_messages"])
    cert.revalidate()
    hs = cert.details["hs_messages"]
    lcr = cert.details["lcr_worst_messages"]
    assert lcr[8] < hs[8]      # small rings: the simple algorithm wins
    assert hs[64] < lcr[64]    # large rings: n log n wins
    assert hs[128] < lcr[128]


def test_e13_lcr_worst_case_exact(benchmark):
    def sweep():
        # Message-count sweep only; the traced election path is measured
        # separately by bench_runtime.py.
        return {n: lcr_election(worst_case_ring(n), record_trace=False).messages
                for n in (16, 64, 128)}

    series = benchmark(sweep)
    record(benchmark, series={str(n): m for n, m in series.items()})
    for n, messages in series.items():
        assert messages == n * (n + 1) // 2 + n


def test_e13_symmetric_ring_structure(benchmark):
    def measure():
        rows = {}
        for k in (3, 4, 5):
            ring = bit_reversal_ring(k)
            rows[2 ** k] = all(
                order_equivalent_segments(ring, 2 ** j) == 2 ** (k - j)
                for j in range(1, k)
            )
        return rows

    rows = benchmark(measure)
    record(benchmark, fully_symmetric=rows)
    assert all(rows.values())


def test_e13_timeslice_counterexample(benchmark):
    def run():
        rows = {}
        for min_id in (1, 4, 8):
            idents = [min_id] + [min_id + 10 + i for i in range(7)]
            result = timeslice_election(idents)
            rows[min_id] = (result.messages, result.rounds)
        return rows

    rows = benchmark(run)
    record(benchmark, rows={str(k): list(v) for k, v in rows.items()})
    n = 8
    for min_id, (messages, rounds) in rows.items():
        assert messages == n                      # O(n) messages...
        assert rounds >= (min_id - 1) * n         # ...time scaling with IDs
