"""Parallel fabric — serial-vs-parallel speedup and merge overhead.

Benchmarks the three fabric consumers (sharded chaos campaigns, parallel
frontier expansion, the sharded register-protocol search) at
``workers=4`` against their serial twins, recording the measured speedup
and the fabric's merge/fold overhead in ``extra_info`` so the BENCH
trajectory tracks them.

Every benchmark *also* asserts bit-identical results between the serial
and parallel runs — a speedup that changed an answer is a bug, not a
win.  Speedups are honest measurements on the current machine
(``cpu_count`` is recorded): on a single-core box the parallel run is
expected to be *slower* than serial and the recorded speedup < 1; the
≥ 2x target is for ≥ 4 hardware threads.
"""

import os
import time

from conftest import record

from repro.chaos import run_campaign
from repro.chaos.targets import default_targets
from repro.core.exploration import explore
from repro.core.stategraph import StateGraph, state_graph
from repro.registers.exhaustive import search_register_consensus
from repro.shared_memory.mutex.dijkstra import dijkstra_system

WORKERS = 4
CAMPAIGN_RUNS = 60


def _best_of(fn, reps: int = 2) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fingerprints(report):
    return [cx.fingerprint for cx in report.counterexamples]


def test_parallel_campaign_workers4(benchmark):
    """Sharded chaos campaign at workers=4 vs serial, full roster."""
    serial = run_campaign(
        targets=default_targets(), runs=CAMPAIGN_RUNS, master_seed=0
    )
    serial_s = _best_of(
        lambda: run_campaign(
            targets=default_targets(), runs=CAMPAIGN_RUNS, master_seed=0
        ),
        reps=1,
    )
    parallel_s = _best_of(
        lambda: run_campaign(
            targets=default_targets(), runs=CAMPAIGN_RUNS, master_seed=0,
            workers=WORKERS,
        ),
        reps=1,
    )
    report = benchmark(
        lambda: run_campaign(
            targets=default_targets(), runs=CAMPAIGN_RUNS, master_seed=0,
            workers=WORKERS,
        )
    )
    assert report.results == serial.results
    assert _fingerprints(report) == _fingerprints(serial)
    record(
        benchmark,
        workers=WORKERS,
        cpu_count=os.cpu_count(),
        cases=len(report.results),
        counterexamples=len(report.counterexamples),
        serial_s=round(serial_s, 4),
        parallel_s=round(parallel_s, 4),
        speedup=round(serial_s / parallel_s, 3),
        identical_to_serial=True,
    )


def test_parallel_explore_workers4(benchmark):
    """Parallel frontier expansion at workers=4 vs serial (Dijkstra n=3).

    Fresh automata per run (the graph memo lives on the automaton), so
    every measured expansion starts cold.
    """
    serial_result = explore(dijkstra_system(3), include_inputs=True)
    serial_s = _best_of(
        lambda: explore(dijkstra_system(3), include_inputs=True), reps=1
    )
    parallel_s = _best_of(
        lambda: explore(dijkstra_system(3), include_inputs=True,
                        workers=WORKERS),
        reps=1,
    )
    result = benchmark(
        lambda: explore(
            dijkstra_system(3), include_inputs=True, workers=WORKERS
        )
    )
    assert result.reachable == serial_result.reachable
    assert result.parents == serial_result.parents
    record(
        benchmark,
        workers=WORKERS,
        cpu_count=os.cpu_count(),
        states=len(result.reachable),
        serial_s=round(serial_s, 4),
        parallel_s=round(parallel_s, 4),
        speedup=round(serial_s / parallel_s, 3),
        identical_to_serial=True,
    )


def test_parallel_register_search_workers4(benchmark):
    """Sharded exhaustive register search at workers=4 vs serial (depth 2)."""
    serial_outcome = search_register_consensus(depth=2)
    serial_s = _best_of(lambda: search_register_consensus(depth=2), reps=1)
    parallel_s = _best_of(
        lambda: search_register_consensus(depth=2, workers=WORKERS), reps=1
    )
    outcome = benchmark(
        lambda: search_register_consensus(depth=2, workers=WORKERS)
    )
    assert outcome == serial_outcome
    record(
        benchmark,
        workers=WORKERS,
        cpu_count=os.cpu_count(),
        candidates=outcome.candidates,
        serial_s=round(serial_s, 4),
        parallel_s=round(parallel_s, 4),
        speedup=round(serial_s / parallel_s, 3),
        identical_to_serial=True,
    )


def test_parallel_merge_overhead(benchmark):
    """The fold cost the parent pays per prefetched state.

    Expands Dijkstra n=3 once to fill a successor memo, then benchmarks
    a *fresh* frontier fold over a graph pre-seeded with every sweep —
    the limit case of infinitely fast workers.  The difference between
    this and a cold serial expansion is exactly the work the fabric can
    parallelize; the fold itself is the sequential floor (Amdahl term)
    and its per-state cost is the number to watch.
    """
    automaton = dijkstra_system(3)
    warm = state_graph(automaton)
    warm.reachable(max_states=500_000, include_inputs=True)

    def fold_only():
        fresh = StateGraph(automaton)
        for sid in range(len(warm.interner)):
            if not warm._plocal.is_expanded(sid):
                continue
            fresh.seed_transitions(
                warm.interner.state_of(sid),
                warm._view(warm._plocal, warm._lviews, sid),
                warm._view(warm._pinput, warm._iviews, sid)
                if warm._pinput.is_expanded(sid) else None,
            )
        fresh.frontier(True).expand_all(500_000)
        return len(fresh.frontier(True).parents)

    states = benchmark(fold_only)
    assert states == len(warm.frontier(True).parents)
    serial_s = _best_of(
        lambda: explore(dijkstra_system(3), include_inputs=True), reps=1
    )
    fold_s = _best_of(fold_only, reps=1)
    record(
        benchmark,
        states=states,
        cold_serial_s=round(serial_s, 4),
        fold_s=round(fold_s, 4),
        sequential_fraction=round(fold_s / serial_s, 3),
        fold_us_per_state=round(1e6 * fold_s / states, 2),
    )
