"""Unified runtime — trace recording and replay stay cheap.

Guards the tentpole refactor: routing every substrate through the
``repro.core.runtime`` trace schema must not slow the simulators down.
Two representative workloads, each exercised end to end (run, record the
unified trace, verify by replay):

* ring election (asynchronous LCR under the seeded scheduler);
* synchronous consensus (FloodSet under a crash adversary).
"""

from conftest import record

from repro.consensus.floodset import FloodSet
from repro.consensus.synchronous import CrashAdversary, run_synchronous
from repro.core.runtime import replay
from repro.rings import lcr_election, worst_case_ring


def test_runtime_ring_election_traced(benchmark):
    ring = worst_case_ring(64)

    def run():
        return lcr_election(ring, seed=0)

    result = benchmark(run)
    record(benchmark, messages=result.messages,
           trace_events=len(result.trace.events))
    assert result.election_complete
    assert result.trace.fingerprint() == replay(result.trace).fingerprint()


def test_runtime_sync_consensus_traced(benchmark):
    adversary_spec = {0: (1, (2, 3))}

    def run():
        return run_synchronous(
            FloodSet(), [0, 1, 1, 0, 1, 0], adversary=CrashAdversary(dict(adversary_spec)),
            t=1,
        )

    result = benchmark(run)
    record(benchmark, decisions={str(p): d for p, d in result.decisions.items()},
           trace_events=len(result.trace.events))
    assert result.agreement_holds()
    assert result.trace.fingerprint() == replay(result.trace).fingerprint()
