"""E16 — common knowledge cannot be gained asynchronously (§2.2.4, §2.6).

Paper claims reproduced: over a lossy channel, k deliveries buy exactly
k-1 levels of nested knowledge and never common knowledge; a synchronous
reliable broadcast attains common knowledge in one round.
"""

from conftest import record

from repro.asynchronous import HandshakeProtocol
from repro.knowledge import (
    common_knowledge_certificate,
    delivery_knowledge_profile,
    simultaneous_broadcast_system,
)


def test_e16_knowledge_ladder(benchmark):
    profile = benchmark(
        lambda: delivery_knowledge_profile(HandshakeProtocol(8, 4))
    )
    depths = {k: entry["depth"] for k, entry in profile.items()}
    record(benchmark, depths={str(k): d for k, d in depths.items()})
    for k, entry in profile.items():
        if k >= 1:
            assert entry["depth"] == k - 1
        assert not entry["common"]


def test_e16_certificate(benchmark):
    cert = benchmark(common_knowledge_certificate)
    record(benchmark, depths={str(k): v for k, v in
                              cert.details["knowledge_depths"].items()})
    assert "never" in cert.claim or "cannot" in cert.claim


def test_e16_synchrony_contrast(benchmark):
    def contrast():
        system, fact = simultaneous_broadcast_system(n=5)
        return system.common_knowledge(fact, "sent")

    assert benchmark(contrast)
    record(benchmark, synchronous_common_knowledge=True)
