"""E8 — Dwork–Skeen: committing costs 2n-2 messages (§2.2.5).

Paper claims reproduced:
* 2PC meets 2n-2 exactly in every failure-free commit run;
* the decentralized variant pays n(n-1) for one round of latency;
* shaving one message below the bound (BrokenCommit) breaks the commit
  rule via exactly the missing information path the proof names.
"""

from conftest import record

from repro.consensus import (
    BrokenCommit,
    DecentralizedCommit,
    TwoPhaseCommit,
    commit_rule_holds,
    dwork_skeen_series,
    failure_free_commit_run,
    information_paths_complete,
    run_synchronous,
)


def test_e8_2pc_meets_bound(benchmark):
    series = benchmark(
        lambda: dwork_skeen_series(TwoPhaseCommit(), [2, 3, 4, 6, 8, 12, 16])
    )
    record(benchmark, series={str(n): list(v) for n, v in series.items()})
    for n, (measured, bound) in series.items():
        assert measured == bound == 2 * n - 2


def test_e8_decentralized_tradeoff(benchmark):
    def build():
        rows = {}
        for n in (3, 6, 10):
            run = failure_free_commit_run(DecentralizedCommit(), n)
            rows[n] = (run.messages_sent, run.rounds_run)
        return rows

    rows = benchmark(build)
    record(benchmark, rows={str(n): list(v) for n, v in rows.items()})
    for n, (messages, rounds) in rows.items():
        assert messages == n * (n - 1) and rounds == 1


def test_e8_below_bound_breaks_commit_rule(benchmark):
    def attack():
        n = 5
        run = failure_free_commit_run(BrokenCommit(), n)
        abort_run = run_synchronous(BrokenCommit(), [1] * (n - 1) + [0], t=0)
        complete, missing = information_paths_complete(run)
        return {
            "messages": run.messages_sent,
            "bound": 2 * n - 2,
            "commit_rule_holds": commit_rule_holds(abort_run),
            "paths_complete": complete,
            "missing_pairs": len(missing),
        }

    outcome = benchmark(attack)
    record(benchmark, **outcome)
    assert outcome["messages"] < outcome["bound"]
    assert not outcome["commit_rule_holds"]
    assert not outcome["paths_complete"]
