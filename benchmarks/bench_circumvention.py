"""Circumvention layer — detectors, Omega consensus and leases stay cheap.

Guards the three runtimes the circumvention receipts depend on: a full
heartbeat-detector horizon under a partition schedule, both sides of the
FLP circumvention (an Omega-led decision and a relentless stall cut off
by its own budget), and a seeded campaign over the lease roster with
shrinking on.  The recorded extra_info preserves what each run proved so
a report run doubles as a regression check on the receipts themselves.
"""

from conftest import record

from repro.chaos import (
    BUDGET_EXCEEDED,
    VIOLATION,
    AdversarialSuspicionTarget,
    BuggyLeaseTarget,
    QuorumLeaseTarget,
    run_campaign,
)
from repro.circumvention import (
    run_heartbeat_detector,
    run_quorum_lease,
    run_rotating_consensus,
)
from repro.core.budget import Budget, BudgetExceeded

DETECTOR_ATOMS = tuple(("split", t, 0b1100) for t in range(3, 9)) + (
    ("down", 6, 3),
)
LEASE_ATOMS = tuple(("split", t, 0b1100) for t in range(6, 12))
RELENTLESS = tuple(("relentless", p) for p in range(3))


def test_heartbeat_detector_horizon(benchmark):
    """One full detector horizon: split, crash, heal, stabilize."""

    def run():
        return run_heartbeat_detector(DETECTOR_ATOMS, 0)

    detector = benchmark(run)
    record(benchmark, leader_changes=detector.leader_changes,
           last_change=detector.last_change,
           events=detector.trace.steps)
    assert detector.complete
    live = sorted(set(detector.leaders) - {3})
    assert {detector.leaders[p] for p in live} == {min(live)}


def test_flp_circumvention_both_sides(benchmark):
    """An Omega decision plus a budget-cut relentless stall, back to back."""

    def run():
        decided = run_rotating_consensus((("suspect", 0, 1),), 0)
        try:
            run_rotating_consensus(
                RELENTLESS, 0, meter=Budget(max_steps=120).meter("stall")
            )
        except BudgetExceeded as exc:
            return decided, exc
        raise AssertionError("relentless coalition failed to stall")

    decided, stall = benchmark(run)
    record(benchmark, decided=decided.decided, rounds=decided.rounds,
           stall_spent=stall.spent, stall_limit=stall.limit)
    assert decided.decided is not None
    assert stall.spent > stall.limit


def test_quorum_lease_horizon(benchmark):
    """One lease horizon under a sustained split: degrade, heal, commit."""

    def run():
        return run_quorum_lease(LEASE_ATOMS, 0)

    lease = benchmark(run)
    record(benchmark, leases=len(lease.leases), commits=lease.commits,
           events=lease.trace.steps)
    assert lease.complete and lease.commits > 0


def test_lease_campaign_with_shrinking(benchmark):
    """Fuzz + shrink + replay-verify the lease roster and the stall target."""

    def run():
        return run_campaign(
            targets=[
                QuorumLeaseTarget(),
                BuggyLeaseTarget(),
                AdversarialSuspicionTarget(),
            ],
            runs=10, master_seed=0,
        )

    report = benchmark(run)
    counts = report.verdict_counts()
    smallest = min(
        (len(cx.shrunk) for cx in report.counterexamples), default=0
    )
    record(benchmark,
           lease_violations=counts["lease-no-quorum-bug"].get(VIOLATION, 0),
           stalls=counts["rotating-consensus-adversarial"].get(
               BUDGET_EXCEEDED, 0),
           smallest_shrunk_schedule=smallest)
    assert counts["lease-no-quorum-bug"].get(VIOLATION, 0) > 0
    assert counts["rotating-consensus-adversarial"].get(
        BUDGET_EXCEEDED, 0) > 0
    assert all(cx.replay_verified for cx in report.counterexamples)
