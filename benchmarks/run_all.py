#!/usr/bin/env python
"""Run the E1–E24 benchmark suite and record the perf trajectory.

Runs every ``bench_*.py`` experiment under pytest-benchmark, aggregates
timings plus each benchmark's reproduced ``extra_info``, and writes a
single machine-readable snapshot (``BENCH_core.json`` at the repo root by
default).  Subsequent PRs regress against the checked-in snapshot, which
is what gives the repository a measurable performance trajectory.

Usage::

    python benchmarks/run_all.py             # full suite -> BENCH_core.json
    python benchmarks/run_all.py --quick     # CI smoke: subset, one round
    python benchmarks/run_all.py -k e6       # just the FLP benchmarks
    python benchmarks/run_all.py --output /tmp/after.json

The snapshot records, per benchmark: mean/stddev/min wall time, round
count, and the experiment's reproduced numbers (``extra_info``), so a
regression in either speed *or* reproduced results is visible in one
diff.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

# The smoke subset exercises the pillars of the engine: valency analysis
# (E6), the ablation harness, and the unified simulation runtime
# (ring-election and synchronous-consensus trace/replay round trips).
QUICK_FILES = (
    "bench_e6_flp.py",
    "bench_ablations.py",
    "bench_runtime.py",
    "bench_chaos.py",
)

SCHEMA = "repro-bench-core/v1"


def run_suite(args: argparse.Namespace) -> dict:
    """Invoke pytest-benchmark and return its parsed JSON report."""
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="bench-", delete=False
    ) as handle:
        raw_path = handle.name
    targets = (
        [os.path.join(BENCH_DIR, f) for f in QUICK_FILES]
        if args.quick
        else [BENCH_DIR]
    )
    min_rounds = 1 if args.quick else args.min_rounds
    max_time = 0.01 if args.quick else args.max_time
    command = [
        sys.executable, "-m", "pytest", *targets,
        "-q", "--no-header",
        f"--benchmark-json={raw_path}",
        f"--benchmark-min-rounds={min_rounds}",
        f"--benchmark-max-time={max_time}",
    ]
    if args.keyword:
        command += ["-k", args.keyword]
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    print("$", " ".join(command), flush=True)
    proc = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark suite failed (pytest exit {proc.returncode})")
    with open(raw_path) as handle:
        report = json.load(handle)
    os.unlink(raw_path)
    return report


def aggregate(report: dict, args: argparse.Namespace) -> dict:
    """Reduce the pytest-benchmark report to the trajectory snapshot."""
    benchmarks = []
    for bench in sorted(report.get("benchmarks", []), key=lambda b: b["fullname"]):
        stats = bench["stats"]
        benchmarks.append(
            {
                "name": bench["name"],
                "file": bench["fullname"].split("::")[0],
                "mean_s": round(stats["mean"], 6),
                "stddev_s": round(stats["stddev"], 6),
                "min_s": round(stats["min"], 6),
                "rounds": stats["rounds"],
                "extra_info": bench.get("extra_info", {}),
            }
        )
    machine = report.get("machine_info", {})
    return {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "recorded_at": report.get("datetime"),
        "python": platform.python_version(),
        "machine": {
            "node": machine.get("node"),
            "processor": machine.get("processor"),
            "cpu_count": os.cpu_count(),
        },
        "totals": {
            "benchmarks": len(benchmarks),
            "mean_total_s": round(sum(b["mean_s"] for b in benchmarks), 6),
        },
        "benchmarks": benchmarks,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke run: E6 + ablations only, one round each",
    )
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_core.json"),
        help="where to write the snapshot (default: repo-root BENCH_core.json)",
    )
    parser.add_argument("-k", dest="keyword", default=None,
                        help="pytest -k selection within the suite")
    parser.add_argument("--min-rounds", type=int, default=3,
                        help="pytest-benchmark min rounds (full mode)")
    parser.add_argument("--max-time", type=float, default=0.5,
                        help="pytest-benchmark max seconds per bench (full mode)")
    args = parser.parse_args(argv)

    snapshot = aggregate(run_suite(args), args)
    with open(args.output, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False)
        handle.write("\n")
    totals = snapshot["totals"]
    print(
        f"wrote {args.output}: {totals['benchmarks']} benchmarks, "
        f"mean total {totals['mean_total_s']:.2f}s"
    )


if __name__ == "__main__":
    main()
