#!/usr/bin/env python
"""Run the E1–E24 benchmark suite and record the perf trajectory.

Runs every ``bench_*.py`` experiment under pytest-benchmark, aggregates
timings plus each benchmark's reproduced ``extra_info``, and writes a
single machine-readable snapshot (``BENCH_core.json`` at the repo root by
default).  Subsequent PRs regress against the checked-in snapshot, which
is what gives the repository a measurable performance trajectory.

Usage::

    python benchmarks/run_all.py             # full suite -> BENCH_core.json
    python benchmarks/run_all.py --quick     # CI smoke: subset, one round
    python benchmarks/run_all.py -k e6       # just the FLP benchmarks
    python benchmarks/run_all.py --output /tmp/after.json
    python benchmarks/run_all.py --workers 4 # shard files across 4 pytests

``--workers N`` shards the benchmark *files* across N concurrently
running pytest processes and merges their reports into one snapshot
(benchmarks are sorted by name, so the merged snapshot is independent of
which shard finished first).  Timings of co-scheduled shards contend for
cores, so use it for trajectory smoke runs, not for precision
comparisons.

The snapshot records, per benchmark: mean/stddev/min wall time, round
count, and the experiment's reproduced numbers (``extra_info``), so a
regression in either speed *or* reproduced results is visible in one
diff.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import subprocess
import sys
import tempfile

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.artifacts import atomic_write_json  # noqa: E402

# The smoke subset exercises the pillars of the engine: valency analysis
# (E6), the ablation harness, the unified simulation runtime
# (ring-election and synchronous-consensus trace/replay round trips),
# the circumvention layer's detector/consensus/lease runtimes, and the
# certificate store's cold-vs-warm query path.
QUICK_FILES = (
    "bench_e6_flp.py",
    "bench_ablations.py",
    "bench_runtime.py",
    "bench_chaos.py",
    "bench_circumvention.py",
    "bench_randomized.py",
    "bench_megacampaign.py",
    "bench_parallel.py",
    "bench_store.py",
)

SCHEMA = "repro-bench-core/v1"


def _bench_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return env


def _pytest_command(
    targets: list, raw_path: str, args: argparse.Namespace
) -> list:
    min_rounds = 1 if args.quick else args.min_rounds
    max_time = 0.01 if args.quick else args.max_time
    command = [
        sys.executable, "-m", "pytest", *targets,
        "-q", "--no-header", "-p", "no:cacheprovider",
        f"--benchmark-json={raw_path}",
        f"--benchmark-min-rounds={min_rounds}",
        f"--benchmark-max-time={max_time}",
    ]
    if args.keyword:
        command += ["-k", args.keyword]
    return command


def _bench_files(args: argparse.Namespace) -> list:
    if args.quick:
        return list(QUICK_FILES)
    return sorted(
        os.path.basename(p)
        for p in glob.glob(os.path.join(BENCH_DIR, "bench_*.py"))
    )


def run_suite(args: argparse.Namespace) -> dict:
    """Invoke pytest-benchmark and return its parsed JSON report."""
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="bench-", delete=False
    ) as handle:
        raw_path = handle.name
    targets = (
        [os.path.join(BENCH_DIR, f) for f in QUICK_FILES]
        if args.quick
        else [BENCH_DIR]
    )
    command = _pytest_command(targets, raw_path, args)
    print("$", " ".join(command), flush=True)
    proc = subprocess.run(command, cwd=REPO_ROOT, env=_bench_env())
    if proc.returncode != 0:
        raise SystemExit(f"benchmark suite failed (pytest exit {proc.returncode})")
    with open(raw_path) as handle:
        report = json.load(handle)
    os.unlink(raw_path)
    return report


def run_suite_sharded(args: argparse.Namespace) -> dict:
    """Shard benchmark files across ``--workers`` concurrent pytests.

    Files are dealt round-robin over the shards (cheap load balancing:
    neighbours in the sorted list tend to have similar cost), every
    shard runs as its own pytest process writing its own raw report,
    and the reports are merged by concatenating their benchmark lists —
    :func:`aggregate` sorts by full name, so the snapshot is independent
    of shard assignment and completion order.
    """
    files = _bench_files(args)
    shards = [files[i::args.workers] for i in range(args.workers)]
    shards = [shard for shard in shards if shard]
    procs = []
    raw_paths = []
    env = _bench_env()
    for shard in shards:
        with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", prefix="bench-shard-", delete=False
        ) as handle:
            raw_path = handle.name
        raw_paths.append(raw_path)
        command = _pytest_command(
            [os.path.join(BENCH_DIR, f) for f in shard], raw_path, args
        )
        print("$", " ".join(command), flush=True)
        procs.append(subprocess.Popen(command, cwd=REPO_ROOT, env=env))
    failures = 0
    for proc in procs:
        if proc.wait() != 0:
            failures += 1
    # Exit code 5 ("no tests collected") happens when -k filters a whole
    # shard away; tolerate empty shards but fail on real errors.
    reports = []
    for raw_path in raw_paths:
        try:
            with open(raw_path) as handle:
                reports.append(json.load(handle))
        except (OSError, json.JSONDecodeError):
            pass
        finally:
            try:
                os.unlink(raw_path)
            except OSError:
                pass
    if not reports or (failures and not args.keyword):
        raise SystemExit(
            f"benchmark shards failed ({failures} of {len(shards)} pytest "
            "processes exited nonzero)"
        )
    merged = dict(reports[0])
    merged["benchmarks"] = [
        bench for report in reports for bench in report.get("benchmarks", [])
    ]
    return merged


def aggregate(report: dict, args: argparse.Namespace) -> dict:
    """Reduce the pytest-benchmark report to the trajectory snapshot."""
    benchmarks = []
    for bench in sorted(report.get("benchmarks", []), key=lambda b: b["fullname"]):
        stats = bench["stats"]
        benchmarks.append(
            {
                "name": bench["name"],
                "file": bench["fullname"].split("::")[0],
                "mean_s": round(stats["mean"], 6),
                "stddev_s": round(stats["stddev"], 6),
                "min_s": round(stats["min"], 6),
                "rounds": stats["rounds"],
                "extra_info": bench.get("extra_info", {}),
            }
        )
    machine = report.get("machine_info", {})
    return {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "workers": getattr(args, "workers", 1),
        "recorded_at": report.get("datetime"),
        "python": platform.python_version(),
        "machine": {
            "node": machine.get("node"),
            "processor": machine.get("processor"),
            "cpu_count": os.cpu_count(),
        },
        "totals": {
            "benchmarks": len(benchmarks),
            "mean_total_s": round(sum(b["mean_s"] for b in benchmarks), 6),
        },
        "benchmarks": benchmarks,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke run: E6 + ablations only, one round each",
    )
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_core.json"),
        help="where to write the snapshot (default: repo-root BENCH_core.json)",
    )
    parser.add_argument("-k", dest="keyword", default=None,
                        help="pytest -k selection within the suite")
    parser.add_argument("--min-rounds", type=int, default=3,
                        help="pytest-benchmark min rounds (full mode)")
    parser.add_argument("--max-time", type=float, default=0.5,
                        help="pytest-benchmark max seconds per bench (full mode)")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard benchmark files across N concurrent "
                        "pytest processes (default: 1, single process)")
    args = parser.parse_args(argv)

    report = run_suite_sharded(args) if args.workers > 1 else run_suite(args)
    snapshot = aggregate(report, args)
    # Atomic: a crashed or killed run never truncates the checked-in
    # trajectory snapshot.
    atomic_write_json(args.output, snapshot, indent=2, sort_keys=False)
    totals = snapshot["totals"]
    print(
        f"wrote {args.output}: {totals['benchmarks']} benchmarks, "
        f"mean total {totals['mean_total_s']:.2f}s"
    )


if __name__ == "__main__":
    main()
