"""E6 — FLP: no 1-resilient asynchronous consensus (§2.2.4).

Paper claims reproduced:
* each candidate protocol fails the FLP dichotomy one way or the other
  (agreement violation or blocking under one crash), verified by
  exhaustive valency analysis over all schedules;
* bivalent initial configurations exist wherever the dichotomy allows;
* the stalling adversary preserves bivalence through fairness stages
  (Lemma 3's machinery);
* Ben-Or's randomized protocol circumvents the theorem: safety in every
  seeded run, termination empirically at probability ~1.
"""

from conftest import record

from repro.asynchronous import (
    FirstMessageWins,
    QuorumVote,
    WaitForAll,
    flp_analysis,
    termination_statistics,
)
from repro.impossibility import StallingAdversary, ValencyAnalyzer
from repro.asynchronous import AsyncConsensusSystem


def test_e6_dichotomy_table(benchmark):
    def build():
        return {
            "first-message-wins": flp_analysis(FirstMessageWins(), 2).failure_mode,
            "quorum-vote": flp_analysis(QuorumVote(), 3).failure_mode,
            "wait-for-all": flp_analysis(WaitForAll(), 2).failure_mode,
        }

    table = benchmark(build)
    record(benchmark, failure_modes=table)
    assert table == {
        "first-message-wins": "agreement-violation",
        "quorum-vote": "agreement-violation",
        "wait-for-all": "blocks-under-crash",
    }


def test_e6_stalling_adversary(benchmark):
    def stall():
        system = AsyncConsensusSystem(QuorumVote(), 3)
        analyzer = ValencyAnalyzer(system)
        adversary = StallingAdversary(analyzer)
        return adversary.run(system.configuration_for((0, 1, 1)), stages=30)

    result = benchmark(stall)
    record(benchmark, stages=result.stages,
           events=len(result.schedule),
           stayed_bivalent=result.stayed_bivalent)
    assert result.stayed_bivalent


def test_e6_ben_or_circumvents(benchmark):
    stats = benchmark(lambda: termination_statistics(4, 1, trials=40))
    record(benchmark, **stats)
    assert stats["decided_fraction"] >= 0.9
