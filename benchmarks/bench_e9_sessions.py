"""E9 — the sessions time gap and synchronizer tradeoff (§2.2.6, [8, 16]).

Paper claims reproduced:
* synchronous systems perform s sessions in time s; asynchronous ones pay
  about s * diameter — the gap grows linearly in both s and diam;
* Awerbuch's synchronizer corners: alpha is O(1) time / O(|E|) messages
  per pulse, beta is O(depth) time / O(n) overhead messages per pulse.
"""

import networkx as nx
from conftest import record

from repro.asynchronous import (
    run_async_sessions,
    run_sync_sessions,
    stretching_lower_bound,
    tradeoff_comparison,
)


def test_e9_sessions_gap(benchmark):
    def sweep():
        rows = {}
        for n in (8, 16, 32):
            for s in (2, 4):
                sync = run_sync_sessions(n, s).total_time
                async_ = run_async_sessions(n, s).total_time
                rows[f"n{n}s{s}"] = (sync, async_, stretching_lower_bound(n, s))
        return rows

    rows = benchmark(sweep)
    record(benchmark, rows={k: list(v) for k, v in rows.items()})
    for sync, async_, bound in rows.values():
        assert async_ >= bound >= 0
        assert async_ > sync


def test_e9_gap_linear_in_diameter(benchmark):
    def sweep():
        return {n: run_async_sessions(n, 3).total_time for n in (8, 16, 32, 64)}

    times = benchmark(sweep)
    record(benchmark, times={str(n): t for n, t in times.items()})
    # Doubling n (hence diameter) roughly doubles the time.
    assert times[64] >= 1.8 * times[32] >= 3 * times[8] / 2


def test_e9_synchronizer_tradeoff(benchmark):
    graph = nx.random_regular_graph(6, 24, seed=11)

    def run():
        return tradeoff_comparison(graph, pulses=5)

    outcome = benchmark(run)
    alpha, beta = outcome["alpha"], outcome["beta"]
    record(
        benchmark,
        alpha_time_per_pulse=alpha.time_per_pulse,
        alpha_overhead_per_pulse=alpha.overhead_per_pulse,
        beta_time_per_pulse=beta.time_per_pulse,
        beta_overhead_per_pulse=beta.overhead_per_pulse,
    )
    assert alpha.time_per_pulse < beta.time_per_pulse
    assert beta.overhead_per_pulse < alpha.overhead_per_pulse
