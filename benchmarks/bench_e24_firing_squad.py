"""E24 — the firing squad: agreement on a *time* (§2.2.1, [31]).

Paper claims reproduced: simultaneous firing is achievable under t
crashes by flooding and firing at signal-age t+2 (verified exhaustively
over the full crash-pattern space), and firing any earlier is splittable
— the relay floor the firing-squad lower bounds formalize.
"""

from conftest import record

from repro.consensus import (
    FloodingFiringSquad,
    HastyFiringSquad,
    find_simultaneity_violation,
)


def test_e24_flooding_squad_simultaneous(benchmark):
    result = benchmark(
        lambda: find_simultaneity_violation(FloodingFiringSquad(), n=4, t=2)
    )
    record(benchmark, runs_checked=result.runs_checked)
    assert result.violation_adversary is None
    assert result.runs_checked > 5_000


def test_e24_hasty_squad_split(benchmark):
    result = benchmark(
        lambda: find_simultaneity_violation(HastyFiringSquad(), n=4, t=1)
    )
    record(
        benchmark,
        firing_rounds={str(k): v for k, v in (result.firing_rounds or {}).items()},
    )
    assert result.violation_adversary is not None
