"""E10 — clock synchronization: skew epsilon(1 - 1/n) is tight (§2.2.6, [77]).

Paper claims reproduced:
* the Lundelius–Lynch averaging algorithm's exact worst-case skew equals
  epsilon(1 - 1/n) at every n (corner-exact search);
* the naive follow-the-leader algorithm pays the full epsilon;
* the diagram-stretching pair of indistinguishable executions forces at
  least epsilon/2 on every algorithm whatsoever.
"""

from conftest import record

from repro.clocks import (
    do_nothing_algorithm,
    follow_zero_algorithm,
    lundelius_lynch_algorithm,
    optimal_bound,
    stretching_bound,
    worst_case_skew,
)


def test_e10_lundelius_lynch_exact(benchmark):
    def sweep():
        return {n: worst_case_skew(lundelius_lynch_algorithm, n)
                for n in (2, 3, 4)}

    skews = benchmark(sweep)
    record(benchmark, skews={str(n): s for n, s in skews.items()},
           bounds={str(n): optimal_bound(n) for n in skews})
    for n, skew in skews.items():
        assert abs(skew - optimal_bound(n)) < 1e-9


def test_e10_naive_baseline_pays_epsilon(benchmark):
    skew = benchmark(lambda: worst_case_skew(follow_zero_algorithm, 4))
    record(benchmark, skew=skew)
    assert abs(skew - 1.0) < 1e-9
    assert skew > optimal_bound(4)


def test_e10_stretching_bound_universal(benchmark):
    def sweep():
        return {
            name: stretching_bound(algorithm, 3, 1.0)
            for name, algorithm in [
                ("lundelius-lynch", lundelius_lynch_algorithm),
                ("follow-zero", follow_zero_algorithm),
                ("do-nothing", do_nothing_algorithm),
            ]
        }

    forced = benchmark(sweep)
    record(benchmark, forced=forced)
    assert all(v >= 0.5 - 1e-9 for v in forced.values())
