"""E1 — Cremers–Hibbard: shared-variable values for 2-process mutex (§2.1).

Paper claims reproduced:
* a 2-valued semaphore gives mutual exclusion + progress (no fairness);
* 2 values are insufficient for lockout-free mutual exclusion
  (exhaustive over two bounded protocol classes);
* more values buy fairness (the 4-valued handoff lock is lockout-free).
"""

from conftest import record

from repro.shared_memory import (
    cremers_hibbard_certificate,
    search_two_process_protocols,
)
from repro.shared_memory.mutex import handoff_lock_system, tas_semaphore_system


def test_e1_exhaustive_two_valued_asymmetric(benchmark):
    cert = benchmark(
        lambda: cremers_hibbard_certificate(values=2, modes=1, symmetric=False)
    )
    record(
        benchmark,
        candidates=cert.candidates_checked,
        fair_solutions=cert.details["fair_solutions"],
        unfair_solutions=cert.details["unfair_solutions"],
        mutual_exclusion_holders=cert.details["mutual_exclusion_holders"],
    )
    assert cert.details["fair_solutions"] == 0
    assert cert.details["unfair_solutions"] > 0


def test_e1_exhaustive_two_valued_symmetric_one_bit(benchmark):
    cert = benchmark(
        lambda: cremers_hibbard_certificate(values=2, modes=2, symmetric=True)
    )
    record(benchmark, candidates=cert.candidates_checked,
           fair_solutions=cert.details["fair_solutions"])
    assert cert.details["fair_solutions"] == 0


def test_e1_three_valued_symmetric_memoryless(benchmark):
    verdicts = benchmark(
        lambda: search_two_process_protocols(values=3, modes=1, symmetric=True)
    )
    fair = sum(1 for v in verdicts if v.fair_solution)
    unfair = sum(1 for v in verdicts if v.unfair_solution)
    record(benchmark, candidates=len(verdicts), fair=fair, unfair=unfair)
    assert fair == 0  # fairness needs local memory even at 3 values


def test_e1_semaphore_and_handoff_possibility(benchmark):
    def verify():
        semaphore = tas_semaphore_system(2)
        handoff = handoff_lock_system()
        return {
            "semaphore_mutex": semaphore.check_mutual_exclusion() is None,
            "semaphore_fair": semaphore.check_lockout_freedom("p0") is None,
            "handoff_mutex": handoff.check_mutual_exclusion() is None,
            "handoff_fair": all(
                handoff.check_lockout_freedom(p) is None for p in ("p0", "p1")
            ),
        }

    outcome = benchmark(verify)
    record(benchmark, **outcome)
    assert outcome == {
        "semaphore_mutex": True,
        "semaphore_fair": False,   # 2 values: no fairness
        "handoff_mutex": True,
        "handoff_fair": True,      # 4 values: fairness
    }
