"""Randomized circumvention — Ben-Or rounds and GST rounds stay cheap.

Guards the two engines the randomized-circumvention receipts depend on:
a single Ben-Or run under a scripted-plus-crash adversary (rounds/sec),
the expected-round sweep that turns "decides with probability 1" into a
measured number (cases/sec through the streaming fold), and a GST
blackout run from total silence to decision.  The recorded extra_info
preserves what each run proved so a report run doubles as a regression
check on the receipts themselves.
"""

from conftest import record

from repro.circumvention import (
    blackout_atoms,
    expected_rounds,
    run_ben_or_traced,
    run_gst_consensus,
)

BENOR_ATOMS = (3, 1, 4, 1, 5, 9, 2, 6, ("crash", 5, 2))
SWEEP_TRIALS = 60


def test_benor_single_run(benchmark):
    """One Ben-Or run: scripted deliveries, one crash, seeded tail."""

    def run():
        return run_ben_or_traced(BENOR_ATOMS, 0, t=1, inputs=(0, 1, 0, 1))

    result = benchmark(run)
    record(benchmark, events=result.events,
           rounds=max(result.phases.values()))
    assert result.complete and result.agreement and result.validity


def test_benor_expected_round_sweep(benchmark):
    """The full analysis harness: stream, fold, gate."""

    def run():
        return expected_rounds(SWEEP_TRIALS, master_seed=0)

    sweep = benchmark(run)
    record(benchmark, trials=sweep.trials,
           termination_rate=sweep.termination_rate,
           mean_rounds=sweep.mean_rounds)
    assert sweep.violations == ()
    assert sweep.ok(min_termination=0.9)


def test_gst_blackout_decision(benchmark):
    """Total pre-GST silence, then a decision within one rotation."""

    def run():
        return run_gst_consensus(blackout_atoms(6, 4), 0, t=1)

    result = benchmark(run)
    record(benchmark, rounds=result.rounds, gst=result.gst)
    assert result.complete
    assert all(v is not None for v in result.decisions.values())
