"""E21 — communication complexity of distributed functions (§2.6, Yao [103]).

Paper claims reproduced: information-theoretic lower bounds on the bits
two parties must exchange.  For the small instances here everything is
exact: equality on k bits costs exactly k+1 (fooling set = the diagonal),
parity costs 2 regardless of size, and fooling-set <= log-rank-implied <=
exact <= trivial holds throughout.
"""

from conftest import record

from repro.communication import (
    complexity_report,
    equality_matrix,
    greater_than_matrix,
    parity_matrix,
)


def test_e21_complexity_table(benchmark):
    def build():
        return {
            "EQ-1bit": complexity_report(equality_matrix(1)),
            "EQ-2bit": complexity_report(equality_matrix(2)),
            "GT-2bit": complexity_report(greater_than_matrix(2)),
            "PARITY-2bit": complexity_report(parity_matrix(2)),
        }

    table = benchmark(build)
    record(benchmark, **{k: v for k, v in table.items()})
    assert table["EQ-1bit"]["exact"] == 2
    assert table["EQ-2bit"]["exact"] == 3
    assert table["GT-2bit"]["exact"] == 3
    assert table["PARITY-2bit"]["exact"] == 2
