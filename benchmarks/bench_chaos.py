"""Chaos engine — fuzzing, shrinking and replay verification stay cheap.

Guards the campaign runner's throughput: a seeded smoke campaign over a
planted-bug target and the healthy control, with shrinking and replay
verification on, must stay fast enough to sit in CI on every push.  The
recorded extra_info preserves what the campaign actually found so a
report run doubles as a regression check on the planted bugs.
"""

from conftest import record

from repro.chaos import (
    VIOLATION,
    EIGByzantineTarget,
    LCRRingTarget,
    RacyLockTarget,
    run_campaign,
)


def test_chaos_campaign_planted_bug(benchmark):
    """Fuzz + shrink + replay-verify the EIG planted bug, 10 seeded runs."""

    def run():
        return run_campaign(
            targets=[EIGByzantineTarget()], runs=10, master_seed=0
        )

    report = benchmark(run)
    counts = report.verdict_counts()["eig-n3t1-byzantine"]
    smallest = min(
        (len(cx.shrunk) for cx in report.counterexamples), default=0
    )
    record(benchmark, violations=counts.get(VIOLATION, 0),
           counterexamples=len(report.counterexamples),
           smallest_shrunk_schedule=smallest)
    assert counts.get(VIOLATION, 0) > 0
    assert all(cx.replay_verified for cx in report.counterexamples)


def test_chaos_campaign_healthy_control(benchmark):
    """The no-shrink fuzzing path: 20 runs of the healthy LCR control."""

    def run():
        return run_campaign(
            targets=[LCRRingTarget(), RacyLockTarget()],
            runs=10, master_seed=0, shrink=False,
        )

    report = benchmark(run)
    record(benchmark, cases=len(report.results),
           verdicts={t: dict(v) for t, v in report.verdict_counts().items()})
    assert report.failures([LCRRingTarget()]) == []
