"""E20 — process renaming: n + t names suffice (§2.2.4, Attiya et al. [10]).

Paper claims reproduced: the snapshot-based wait-free renaming algorithm
always produces distinct names within 1 .. 2n - 1 (= n + t at t = n - 1)
under adversarial interleavings, including with crashed participants.
The exact n+1 vs n+t boundary is the survey's open question 4; the
measured name ranges sit inside the n + t envelope as the upper bound
predicts.
"""

from conftest import record

from repro.registers import renaming_series, run_renaming


def test_e20_names_distinct_and_bounded(benchmark):
    def sweep():
        outcomes = renaming_series([101, 57, 883], seeds=range(20))
        return {
            "all_distinct": all(o.names_distinct for o in outcomes),
            "max_name_seen": max(o.max_name for o in outcomes),
            "bound": 2 * 3 - 1,
        }

    outcome = benchmark(sweep)
    record(benchmark, **outcome)
    assert outcome["all_distinct"]
    assert outcome["max_name_seen"] <= outcome["bound"]


def test_e20_wait_freedom_under_crashes(benchmark):
    def run():
        outcome = run_renaming([5, 9, 2, 7], seed=3, active=[0, 2])
        return outcome.names_distinct and set(outcome.new_names) == {5, 2}

    assert benchmark(run)
    record(benchmark, participants=2, crashed=2)
