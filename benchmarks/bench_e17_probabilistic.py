"""E17 — randomized Byzantine agreement probability ceiling (§2.2.1, [68]).

Paper claims reproduced: with n = 3 and one Byzantine fault, no
randomized protocol guarantees success probability above 2/3.  The
coin-coupled ring splice shows the combinatorial core directly: for
every fixed coin outcome at most 2 of the 3 scenarios succeed, so the
scenario success probabilities sum to at most 2.
"""

from conftest import record

from repro.consensus import karlin_yao_experiment


def test_e17_per_trial_sum_capped_at_two(benchmark):
    result = benchmark(lambda: karlin_yao_experiment(trials=150))
    record(
        benchmark,
        success_rates=result.success_rates,
        max_per_trial_sum=result.max_per_trial_sum,
        mean_per_trial_sum=result.mean_per_trial_sum,
        worst_scenario_rate=result.worst_scenario_rate,
    )
    assert result.max_per_trial_sum <= 2
    assert result.worst_scenario_rate <= 2.0 / 3.0 + 0.1
