"""Streaming mega-campaigns — throughput and memory of the fold path.

Guards the constant-memory refactor on both axes that motivated it:
cases/sec of the streaming fold (with and without a corpus feeding the
coverage map) and peak traced memory, which must stay bounded by
behaviours rather than cases.  The recorded extra_info lands in the
BENCH trajectory so regressions in either axis show up as data, not
anecdotes.
"""

import tracemalloc

from conftest import record

from repro.chaos import ScheduleCorpus, run_campaign
from repro.chaos.targets import FloodSetCrashTarget, LCRRingTarget

SEED = 0
CASES = 600  # split across two fast targets: enough to time, quick in CI


def _roster():
    return [FloodSetCrashTarget(), LCRRingTarget()]


def test_streaming_fold_throughput(benchmark):
    """Pure streaming sweep: no result list, no shrinking, no corpus."""

    def run():
        return run_campaign(
            targets=_roster(), runs=CASES // 2, master_seed=SEED,
            shrink=False, keep_results=False,
        )

    report = benchmark(run)
    assert report.results is None and report.cases == CASES
    record(
        benchmark,
        cases=report.cases,
        cases_per_s=report.throughput["cases_per_s"],
        distinct_traces=sum(report.coverage.values()),
    )


def test_streaming_with_corpus_throughput(benchmark, tmp_path):
    """The mega-campaign loop: coverage map + corpus writes + mutations."""

    rounds = iter(range(10_000))

    def run():
        # A fresh corpus per round: reusing one directory would seed the
        # coverage map with the previous round's discoveries and measure
        # an ever-shrinking workload.
        root = str(tmp_path / f"corpus-{next(rounds)}")
        return run_campaign(
            targets=_roster(), runs=CASES // 2, master_seed=SEED,
            shrink=False, keep_results=False,
            corpus=root, mutations=1,
        ), root

    report, root = benchmark(run)
    record(
        benchmark,
        cases=report.cases,
        cases_per_s=report.throughput["cases_per_s"],
        corpus_entries=len(ScheduleCorpus(root)),
    )
    assert report.corpus_added > 0


def test_streaming_peak_memory(benchmark):
    """Peak traced bytes of a streaming sweep — the constant-memory claim."""

    def run():
        tracemalloc.start()
        report = run_campaign(
            targets=_roster(), runs=CASES // 2, master_seed=SEED,
            shrink=False, keep_results=False,
        )
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return report, peak

    report, peak = benchmark(run)
    record(
        benchmark,
        cases=report.cases,
        peak_traced_bytes=peak,
        bytes_per_case=round(peak / report.cases, 1),
    )
    # Generous ceiling: the fold's working set is tallies + coverage +
    # exemplars, tens of KB; a result list for 600 cases alone would
    # push past this.
    assert peak < 2_000_000
