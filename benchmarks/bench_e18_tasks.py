"""E18 — graph characterization of 1-fault solvable tasks (§2.2.4, [85, 20]).

Paper claims reproduced: tasks with a connected input graph and a
disconnected decision graph (consensus, leader election) are unsolvable
with one faulty process; tasks whose decision graph is connected
(identity, epsilon-agreement) escape the condition — matching their known
solvability.
"""

from conftest import record

from repro.asynchronous import (
    analyze_task,
    binary_consensus_task,
    epsilon_agreement_task,
    identity_task,
    leader_task,
)


def test_e18_solvability_table(benchmark):
    def build():
        tasks = [
            binary_consensus_task(3),
            leader_task(3),
            identity_task(2),
            epsilon_agreement_task(2),
        ]
        return {
            task.name: analyze_task(task).provably_unsolvable
            for task in tasks
        }

    table = benchmark(build)
    record(benchmark, provably_unsolvable=table)
    assert table == {
        "binary-consensus": True,
        "leader-election": True,
        "identity": False,
        "epsilon-agreement": False,
    }
