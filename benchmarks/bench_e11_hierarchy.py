"""E11 — the wait-free consensus hierarchy (§2.3, [65, 76]).

Paper claims reproduced (exhaustively over all schedules per protocol):
registers fail 2-process consensus; TAS and the queue solve 2 but the
natural TAS extension fails 3; CAS solves every n tried.  Plus the
register side of the section: regular registers admit new/old inversion,
one reader can repair it locally, two non-writing readers cannot.
"""

from conftest import record

from repro.registers import (
    check_register_history,
    check_seq_register_history,
    hierarchy_table,
    inversion_history,
    register_consensus_certificate,
    single_reader_histories,
    two_reader_failure,
)


def test_e11_hierarchy_table(benchmark):
    table = benchmark(hierarchy_table)
    rows = {
        f"{v.protocol_name}@n{v.n}": v.solves_consensus for v in table
    }
    record(benchmark, table=rows,
           configurations={f"{v.protocol_name}@n{v.n}": v.configurations
                           for v in table})
    assert rows == {
        "register-consensus@n2": False,
        "tas-consensus-2@n2": True,
        "tas-consensus-3@n3": False,
        "queue-consensus-2@n2": True,
        "cas-consensus@n2": True,
        "cas-consensus@n3": True,
    }


def test_e11_exhaustive_register_consensus_search(benchmark):
    """All 1124 symmetric depth-2 read/write programs fail — the searched-
    class form of 'registers have consensus number 1'."""
    cert = benchmark(lambda: register_consensus_certificate(depth=2))
    record(
        benchmark,
        candidates=cert.candidates_checked,
        agreement_failures=cert.details["agreement_failures"],
        validity_failures=cert.details["validity_failures"],
    )
    assert cert.candidates_checked == 1124


def test_e11_regular_register_boundary(benchmark):
    def verify():
        return {
            "raw_regular_linearizable": check_register_history(
                inversion_history(), initial=0
            ) is not None,
            "one_reader_repaired": all(
                check_seq_register_history(h) is not None
                for h in single_reader_histories(seeds=range(15))
            ),
            "two_readers_fail": check_seq_register_history(
                two_reader_failure()
            ) is not None,
        }

    outcome = benchmark(verify)
    record(benchmark, **outcome)
    assert outcome == {
        "raw_regular_linearizable": False,
        "one_reader_repaired": True,
        "two_readers_fail": False,
    }
