"""E3 — Byzantine agreement needs n > 3t (§2.2.1).

Paper claims reproduced:
* the ring-splice scenario argument defeats EIG (and Phase King) at
  n = 3t for t in {1, 2};
* EIG satisfies agreement and validity at n = 3t + 1 under equivocating
  Byzantine adversaries — the boundary is exactly 3t.
"""

import itertools

from conftest import record

from repro.consensus import (
    ByzantineAdversary,
    EIGByzantine,
    PhaseKing,
    flm_certificate,
    run_synchronous,
)


def test_e3_splice_defeats_eig_n3_t1(benchmark):
    cert = benchmark(lambda: flm_certificate(EIGByzantine(), n=3, t=1))
    record(benchmark, violated=cert.details["scenarios_violated"])
    assert cert.witnesses


def test_e3_splice_defeats_eig_n6_t2(benchmark):
    cert = benchmark(lambda: flm_certificate(EIGByzantine(), n=6, t=2))
    record(benchmark, violated=cert.details["scenarios_violated"])
    assert cert.witnesses


def test_e3_splice_defeats_phase_king_n3_t1(benchmark):
    cert = benchmark(lambda: flm_certificate(PhaseKing(), n=3, t=1))
    assert cert.witnesses


def _equivocator(pids):
    def behaviour(rnd, src, dest, honest):
        return (((), dest % 2),) if rnd == 1 else None

    return ByzantineAdversary(pids, behaviour)


def test_e3_eig_correct_at_n4_t1(benchmark):
    def verify():
        ok = True
        for inputs in itertools.product((0, 1), repeat=4):
            run = run_synchronous(
                EIGByzantine(), list(inputs), adversary=_equivocator([3]), t=1
            )
            ok = ok and run.agreement_holds() and run.validity_holds()
        return ok

    assert benchmark(verify)
    record(benchmark, n=4, t=1, boundary="n = 3t + 1 suffices")


def test_e3_eig_correct_at_n7_t2(benchmark):
    def verify():
        run = run_synchronous(
            EIGByzantine(), [0, 1, 0, 1, 1, 0, 1],
            adversary=_equivocator([5, 6]), t=2,
        )
        return run.agreement_holds() and run.validity_holds()

    assert benchmark(verify)
    record(benchmark, n=7, t=2)
