"""E7 — Two Generals: no coordination over a lossy channel (§2.2.4, [61]).

Paper claims reproduced: every deterministic protocol fails somewhere
along the delivery chain, and deeper handshakes only move the break point
— they never remove it.
"""

from conftest import record

from repro.asynchronous import (
    HandshakeProtocol,
    RecklessProtocol,
    TimidProtocol,
    delivery_chain,
    two_generals_certificate,
    validate_chain_links,
    ATTACK,
)


def test_e7_every_handshake_fails(benchmark):
    def sweep():
        return {
            f"handshake-{r}-{c}": two_generals_certificate(
                HandshakeProtocol(r, c)
            ).details["delivered"]
            for r, c in [(2, 1), (4, 1), (4, 2), (6, 3), (8, 4)]
        }

    break_points = benchmark(sweep)
    record(benchmark, break_points=break_points)
    assert len(break_points) == 5  # all five protocols were defeated


def test_e7_degenerate_protocols(benchmark):
    def run():
        return (
            two_generals_certificate(TimidProtocol()).claim,
            two_generals_certificate(RecklessProtocol()).claim,
        )

    timid, reckless = benchmark(run)
    assert "never coordinates" in timid
    assert "no information" in reckless


def test_e7_chain_validation(benchmark):
    def build_and_validate():
        chain = delivery_chain(HandshakeProtocol(8, 4), ATTACK)
        validate_chain_links(chain)
        return len(chain)

    length = benchmark(build_and_validate)
    record(benchmark, chain_length=length)
    assert length == 9
