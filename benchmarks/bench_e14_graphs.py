"""E14 — general graphs: Omega(e) messages to involve every edge (§2.4.5).

Paper claims reproduced: flooding election touches every edge on every
topology tried (messages >= e always), builds a spanning tree, and the
hidden-node construction shows why a skipped edge is fatal.
"""

import networkx as nx
from conftest import record

from repro.rings import (
    edge_involvement_series,
    flooding_election,
    hidden_node_demonstration,
)


def _graphs():
    return {
        "cycle-16": nx.cycle_graph(16),
        "complete-10": nx.complete_graph(10),
        "tree-31": nx.balanced_tree(2, 4),
        "grid-5x5": nx.grid_2d_graph(5, 5),
        "small-world-20": nx.connected_watts_strogatz_graph(20, 4, 0.2, seed=9),
    }


def test_e14_edge_involvement(benchmark):
    series = benchmark(lambda: edge_involvement_series(_graphs()))
    record(benchmark, series={k: list(v) for k, v in series.items()})
    for name, (messages, edges, involved) in series.items():
        assert involved, name
        assert messages >= edges, name


def test_e14_spanning_trees(benchmark):
    def verify():
        ok = True
        for name, graph in _graphs().items():
            if isinstance(next(iter(graph.nodes)), tuple):
                graph = nx.convert_node_labels_to_integers(graph)
            result = flooding_election(graph, seed=2)
            ok = ok and result.tree_is_spanning(graph)
        return ok

    assert benchmark(verify)


def test_e14_hidden_node(benchmark):
    small, big = benchmark(lambda: hidden_node_demonstration(n_path=5))
    record(benchmark, small_answer=small, big_answer=big)
    assert small == big  # indistinguishable despite different true maxima
