"""Ablations: the design choices the survey says are the hard part.

The paper repeatedly stresses that *"the proper treatment of
admissibility was one of the most difficult aspects of this work"* and
that problem statements can easily be made too strong ("by requiring
that a resource be granted without saying that the environment must
always return the resource").  These ablations switch the corresponding
features off and show the checkers break in exactly the predicted ways.
"""

from conftest import record

from repro.asynchronous import AsyncConsensusSystem, QuorumVote
from repro.impossibility import StallingAdversary, ValencyAnalyzer
from repro.shared_memory.mutex import peterson_system
from repro.shared_memory.system import find_starvation_cycle


def test_ablation_environment_cooperation(benchmark):
    """Dropping the 'environment returns the resource' obligation makes the
    lockout checker report a spurious starvation of Peterson's algorithm —
    the cycle it finds parks the winner in its critical region forever,
    which a well-formed environment never does.  This is the survey's
    'problem statement too strong' failure mode, reproduced."""

    def run():
        system = peterson_system()
        with_env = system.check_lockout_freedom("p0")
        without_env = find_starvation_cycle(
            system,
            victim="p0",
            victim_stuck=lambda s: system.local_state(s, "p0")["region"] == "try",
            environment_returns=None,  # the ablation
        )
        return with_env, without_env

    with_env, without_env = benchmark(run)
    record(
        benchmark,
        correct_checker_flags_peterson=with_env is not None,
        ablated_checker_flags_peterson=without_env is not None,
    )
    assert with_env is None            # Peterson is fair...
    assert without_env is not None     # ...but the ablated checker lies


def test_ablation_stalling_budget(benchmark):
    """The FLP stalling adversary needs room to search for the
    bivalence-preserving extension (Lemma 3 is existential, not greedy);
    with a one-node budget it gets stuck immediately."""

    def run():
        system = AsyncConsensusSystem(QuorumVote(), 3)
        analyzer = ValencyAnalyzer(system)
        start = system.configuration_for((0, 1, 1))
        full = StallingAdversary(analyzer, extension_budget=10_000).run(
            start, stages=12
        )
        starved = StallingAdversary(analyzer, extension_budget=1).run(
            start, stages=12
        )
        return full, starved

    full, starved = benchmark(run)
    record(
        benchmark,
        full_budget_stages=full.stages,
        starved_budget_stages=starved.stages,
        full_stayed_bivalent=full.stayed_bivalent,
        starved_stayed_bivalent=starved.stayed_bivalent,
    )
    assert full.stayed_bivalent
    assert not starved.stayed_bivalent


def test_ablation_validity_scope(benchmark):
    """Counting Byzantine processes' inputs for validity (the wrong model
    choice) would flag correct crash-tolerant runs as invalid: FloodSet
    legitimately decides a value that only the crashed process held."""
    from repro.consensus import CrashAdversary, FloodSet, run_synchronous

    def run():
        adversary = CrashAdversary({0: (1, [1, 2])})
        result = run_synchronous(
            FloodSet(), [0, 1, 1], adversary=adversary, t=1
        )
        honest_only_inputs = {result.inputs[p] for p in result.honest_pids}
        wrong_model_verdict = (
            len(honest_only_inputs) == 1
            and any(
                d != next(iter(honest_only_inputs))
                for d in result.honest_decisions().values()
            )
        )
        return result.validity_holds(), wrong_model_verdict

    correct, wrong_flags = benchmark(run)
    record(benchmark, correct_model_valid=correct,
           ablated_model_flags_violation=wrong_flags)
    assert correct            # crash inputs count: the run is valid
    assert wrong_flags        # the ablated validity would cry wolf
