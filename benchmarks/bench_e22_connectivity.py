"""E22 — Byzantine agreement needs connectivity > 2t (§2.2.1, Dolev [39]).

Paper claims reproduced: on the 4-cycle (connectivity 2 = 2t for t = 1),
the connectivity splice defeats the flooding-vote protocol — both
D-faulty validity scenarios pass but the B-faulty agreement scenario puts
A and C in different worlds — while the same protocol is correct
fault-free and against a merely silent faulty node.
"""

from conftest import record

from repro.consensus import (
    FloodVote,
    connectivity_certificate,
    connectivity_scenarios,
    run_cycle,
)


def test_e22_connectivity_splice(benchmark):
    cert = benchmark(lambda: connectivity_certificate(FloodVote()))
    record(benchmark, violated=cert.details["scenarios_violated"])
    assert cert.witnesses


def test_e22_scenario_breakdown(benchmark):
    def build():
        return {
            s.requirement: s.holds for s in connectivity_scenarios(FloodVote())
        }

    outcomes = benchmark(build)
    record(benchmark, outcomes=outcomes)
    assert outcomes == {
        "validity-0": True, "validity-1": True, "agreement": False,
    }


def test_e22_silent_fault_is_not_enough(benchmark):
    """The splice adversary is necessary: silence alone doesn't break it."""
    def run():
        result = run_cycle(
            FloodVote(), {"A": 1, "B": 1, "C": 1, "D": 0},
            faulty="D", script={},
        )
        return {result.decisions[n] for n in ("A", "B", "C")}

    honest = benchmark(run)
    record(benchmark, honest_decisions=sorted(honest))
    assert honest == {1}
