"""E2 — Burns–Lynch: read/write mutex needs n registers (§2.1), n = 2 case.

Paper claims reproduced:
* the covering adversary defeats any 2-process algorithm over a single
  read/write register (mutual exclusion violated constructively);
* Peterson's algorithm — three registers for n = 2 — is fully correct,
  showing register-counting is what separates the cases.
"""

from conftest import record

from repro.shared_memory import burns_lynch_attack, naive_spin_lock_system
from repro.shared_memory.mutex import peterson_system


def test_e2_covering_adversary(benchmark):
    cert = benchmark(lambda: burns_lynch_attack(naive_spin_lock_system()))
    record(
        benchmark,
        schedule_length=cert.details["schedule_length"],
        reads_before_first_write=cert.details["p0_reads_before_first_write"],
    )
    cert.revalidate()


def test_e2_peterson_with_three_registers_is_correct(benchmark):
    def verify():
        system = peterson_system()
        return {
            "registers": len(system.initial_memory),
            "mutex": system.check_mutual_exclusion() is None,
            "fair": all(
                system.check_lockout_freedom(p) is None for p in ("p0", "p1")
            ),
        }

    outcome = benchmark(verify)
    record(benchmark, **outcome)
    assert outcome["registers"] == 3 >= 2  # >= n, as the theorem requires
    assert outcome["mutex"] and outcome["fair"]
