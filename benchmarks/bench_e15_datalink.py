"""E15 — data-link impossibilities: crashes and bounded headers (§2.5, [78]).

Paper claims reproduced:
* one memory-erasing crash defeats the alternating-bit protocol
  (duplication) — reliable delivery is impossible under such crashes;
* bounded headers fall to the stolen-packet wraparound replay while
  unbounded headers survive the identical channel behaviour;
* the price of safety: retransmissions grow with loss and header bits
  grow with the message count (the survey's open question 5 terrain).
"""

from conftest import record

from repro.datalink import (
    AlternatingBitReceiver,
    AlternatingBitSender,
    FairLossyScheduler,
    bounded_header_attack,
    crash_attack,
    packet_growth,
    run_datalink,
)


def test_e15_crash_attack(benchmark):
    cert = benchmark(crash_attack)
    record(benchmark, delivered=cert.details["delivered"])
    cert.revalidate()


def test_e15_bounded_header_attack(benchmark):
    cert = benchmark(lambda: bounded_header_attack(2))
    record(benchmark,
           bounded_delivered=cert.details["bounded_delivered"],
           unbounded_delivered=cert.details["unbounded_delivered"])
    assert cert.details["bounded_delivered"] == ["a", "b", "a"]
    assert cert.details["unbounded_delivered"] == ["a", "b"]


def test_e15_packet_growth(benchmark):
    growth = benchmark(lambda: packet_growth(message_counts=(4, 8, 16, 32)))
    record(benchmark, growth={str(k): v for k, v in growth.items()})
    assert growth[32]["header_bits"] > growth[4]["header_bits"]


def test_e15_retransmission_vs_loss(benchmark):
    def sweep():
        rows = {}
        for loss in (0.1, 0.3, 0.5):
            result = run_datalink(
                AlternatingBitSender(), AlternatingBitReceiver(),
                ["m"] * 12, FairLossyScheduler(loss=loss, seed=4),
            )
            assert result.exactly_once_in_order
            rows[loss] = result.data_packets / 12
        return rows

    rows = benchmark(sweep)
    record(benchmark, packets_per_message={str(k): v for k, v in rows.items()})
    assert rows[0.5] > rows[0.1]
