"""E23 — partial synchrony: the FLP escape hatch of DLS [46] (§2.2.4).

Paper claims reproduced: weakening termination to "after the network
stabilizes" makes consensus solvable with t < n/2 crash faults — safety
under arbitrary asynchrony (0 violations in the sweep), decision within a
coordinator rotation after GST, and crash tolerance through rotation.
The exact time bounds required remain the survey's open question 2; the
measured decision latency (phases after GST) is one data point on it.
"""

from conftest import record

from repro.asynchronous import run_dls, safety_sweep


def test_e23_safety_sweep(benchmark):
    stats = benchmark(lambda: safety_sweep(n=4, t=1, seeds=range(40)))
    record(benchmark, **stats)
    assert stats["agreement_violations"] == 0


def test_e23_liveness_after_gst(benchmark):
    def sweep():
        latencies = []
        for seed in range(20):
            result = run_dls(4, 1, [0, 1, 1, 0], gst_phase=3, seed=seed)
            assert result.all_live_decided and result.agreement
            latencies.append(result.phases_run - 3)
        return latencies

    latencies = benchmark(sweep)
    record(benchmark, max_phases_after_gst=max(latencies),
           mean_phases_after_gst=sum(latencies) / len(latencies))
    assert max(latencies) <= 4  # within one coordinator rotation


def test_e23_crash_rotation(benchmark):
    def run():
        result = run_dls(5, 2, [1, 0, 1, 0, 1], gst_phase=2, seed=9,
                         crashed=[0, 1])
        return result.all_live_decided and result.agreement

    assert benchmark(run)
    record(benchmark, crashed=[0, 1])
