"""Certificate store — cold-vs-warm query latency (§3.2).

What the store buys, measured directly: the same questions the E6
dichotomy table and the register-search census answer by live search are
answered again from a warm store, and the counters prove the warm path
never touched an engine (``service.live == 0``, ``graph``-free, all
hits).  The cold benchmark keys each round to a fresh store directory,
so it measures live-search-plus-persist; the warm benchmarks measure
verify-and-decode alone.
"""

from conftest import record

from repro.service import (
    CertificateStore,
    QueryService,
    flp_key,
    register_search_key,
)

DICHOTOMY_KEYS = (
    flp_key("first-message-wins", n=2),
    flp_key("quorum-vote", n=3),
    flp_key("wait-for-all", n=2),
)

EXPECTED_MODES = {
    "first-message-wins": "agreement-violation",
    "quorum-vote": "agreement-violation",
    "wait-for-all": "blocks-under-crash",
}


def _modes(answers):
    return {a.result["protocol"]: a.result["failure_mode"] for a in answers}


def test_store_cold_e6_dichotomy(benchmark, tmp_path):
    """Live search + persist: the price of the first ask."""
    rounds = iter(range(1_000_000))

    def cold():
        store = CertificateStore(str(tmp_path / f"cold-{next(rounds)}"))
        service = QueryService(store)
        answers = service.resolve_many(list(DICHOTOMY_KEYS))
        assert service.live == len(DICHOTOMY_KEYS)
        return answers, store

    answers, store = benchmark(cold)
    assert _modes(answers) == EXPECTED_MODES
    record(benchmark, queries=len(DICHOTOMY_KEYS), **store.stats)


def test_store_warm_e6_dichotomy(benchmark, tmp_path):
    """The acceptance property: the dichotomy replayed with zero live
    search — every answer verified out of the store, hit counters as the
    receipt."""
    root = str(tmp_path / "warm")
    QueryService(CertificateStore(root)).resolve_many(list(DICHOTOMY_KEYS))

    def warm():
        service = QueryService(CertificateStore(root))
        answers = service.resolve_many(list(DICHOTOMY_KEYS))
        assert service.live == 0  # zero live search
        assert all(a.source == "store" for a in answers)
        return answers, service

    answers, service = benchmark(warm)
    assert _modes(answers) == EXPECTED_MODES
    assert service.store.stats["hits"] == len(DICHOTOMY_KEYS)
    assert service.store.stats["corrupt"] == 0
    record(benchmark, queries=len(DICHOTOMY_KEYS), **service.store.stats)


def test_store_warm_register_search(benchmark, tmp_path):
    """The full depth-2 census (1124 model-checked candidates live)
    answered warm: one verified read."""
    root = str(tmp_path / "census")
    key = register_search_key(depth=2)
    cold = QueryService(CertificateStore(root)).resolve(key)
    assert cold.source == "live"

    def warm():
        service = QueryService(CertificateStore(root))
        answer = service.resolve(key)
        assert service.live == 0
        assert answer.source == "store"
        return answer

    answer = benchmark(warm)
    assert answer.result == cold.result
    assert answer.result["candidates"] == 1124
    assert answer.result["solutions"] == []
    record(
        benchmark,
        candidates=answer.result["candidates"],
        agreement_failures=answer.result["agreement_failures"],
        validity_failures=answer.result["validity_failures"],
    )
