"""E5 — approximate agreement convergence rates (§2.2.2, [36]).

Paper claims reproduced:
* the round-by-round trimmed-mean algorithm converges geometrically, with
  per-round ratio about t/(n-2t) — i.e. (t/n)^k-shaped over k rounds;
* convergence is slower for larger t/n;
* the measured ratio respects the paper's chain-argument lower bound
  (t/(nk))^k for k-round algorithms.
"""

from conftest import record

from repro.consensus import convergence_ratio


def test_e5_convergence_in_k(benchmark):
    def sweep():
        return {
            k: convergence_ratio(n=7, t=1, k=k)[1] for k in (1, 2, 3, 4, 5)
        }

    ratios = benchmark(sweep)
    record(benchmark, ratios={str(k): v for k, v in ratios.items()})
    # Geometric decay in k.
    assert all(ratios[k + 1] <= ratios[k] + 1e-12 for k in (1, 2, 3, 4))
    assert ratios[5] < 0.01


def test_e5_ratio_grows_with_t(benchmark):
    def sweep():
        return {
            t: convergence_ratio(n=10, t=t, k=3)[1] for t in (1, 2, 3)
        }

    ratios = benchmark(sweep)
    record(benchmark, ratios={str(t): v for t, v in ratios.items()})
    assert ratios[1] <= ratios[2] <= ratios[3]


def test_e5_lower_bound_respected(benchmark):
    def check():
        rows = {}
        for n, t, k in [(7, 1, 3), (10, 2, 3), (13, 3, 4)]:
            _final, measured, _round_bound = convergence_ratio(n, t, k)
            paper_lower = (t / (n * k)) ** k
            rows[f"n{n}t{t}k{k}"] = (measured, paper_lower)
        return rows

    rows = benchmark(check)
    record(benchmark, rows={key: list(v) for key, v in rows.items()})
    for measured, lower in rows.values():
        assert measured >= lower - 1e-12
