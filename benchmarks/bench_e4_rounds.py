"""E4 — t+1 rounds are necessary and sufficient for consensus (§2.2.2).

Paper claims reproduced:
* every truncation of FloodSet below t+1 rounds is defeated by some crash
  pattern (exhaustive search over patterns and inputs);
* the full t+1-round FloodSet survives the entire pattern space;
* a fooling pair (two runs indistinguishable to a common process with
  different decision sets) exhibits the chain argument's engine.
"""

from conftest import record

from repro.consensus import (
    FloodSet,
    find_fooling_pair,
    find_round_bound_violation,
    round_lower_bound_certificate,
)


def test_e4_round_bound_t1(benchmark):
    cert = benchmark(
        lambda: round_lower_bound_certificate(
            lambda r: FloodSet(rounds_override=r), n=3, t=1
        )
    )
    record(benchmark, runs_checked=cert.details["full_protocol_runs_checked"],
           truncations_defeated=len(cert.witnesses))
    assert len(cert.witnesses) == 1


def test_e4_round_bound_t2(benchmark):
    cert = benchmark(
        lambda: round_lower_bound_certificate(
            lambda r: FloodSet(rounds_override=r), n=4, t=2
        )
    )
    record(benchmark, runs_checked=cert.details["full_protocol_runs_checked"],
           truncations_defeated=len(cert.witnesses))
    assert len(cert.witnesses) == 2


def test_e4_rounds_table(benchmark):
    """The necessary/sufficient table: rounds r vs violation found."""
    def build():
        table = {}
        for r in (1, 2, 3):
            result = find_round_bound_violation(
                FloodSet(rounds_override=r), n=4, t=2, rounds=r
            )
            table[r] = result.violation is not None
        return table

    table = benchmark(build)
    record(benchmark, violations_by_rounds=table)
    assert table == {1: True, 2: True, 3: False}  # t+1 = 3


def test_e4_fooling_pair(benchmark):
    pair = benchmark(
        lambda: find_fooling_pair(FloodSet(rounds_override=1), n=3, t=1, rounds=1)
    )
    record(benchmark, fooled_process=pair.fooled_process, reason=pair.reason)
    assert pair is not None
