"""E12 — anonymous rings: symmetry forbids election; coins restore it
(§2.4.1, Angluin [7], Itai–Rodeh [66]).

Paper claims reproduced: every deterministic anonymous candidate either
elects nobody or everybody under the symmetric schedule, at every ring
size; the randomized algorithm elects exactly one leader with empirical
probability 1 and O(n) expected messages per phase.
"""

from conftest import record

from repro.rings import (
    MaxTokenProtocol,
    SilentProtocol,
    itai_rodeh_election,
    symmetry_certificate,
)


def test_e12_symmetry_table(benchmark):
    def sweep():
        rows = {}
        for n in (2, 3, 5, 8, 13):
            rows[f"max-token@{n}"] = symmetry_certificate(
                MaxTokenProtocol(), n
            ).details["leaders_declared"]
            rows[f"silent@{n}"] = symmetry_certificate(
                SilentProtocol(), n
            ).details["leaders_declared"]
        return rows

    rows = benchmark(sweep)
    record(benchmark, leaders_declared=rows)
    for key, leaders in rows.items():
        n = int(key.split("@")[1])
        assert leaders in (0, n)  # never exactly one


def test_e12_itai_rodeh_succeeds(benchmark):
    def sweep():
        successes = 0
        total_messages = 0
        trials = 25
        for seed in range(trials):
            result = itai_rodeh_election(6, seed=seed)
            if result.election_complete:
                successes += 1
            total_messages += result.messages
        return successes, trials, total_messages / trials

    successes, trials, mean_messages = benchmark(sweep)
    record(benchmark, successes=successes, trials=trials,
           mean_messages=mean_messages)
    assert successes == trials
