"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the survey-derived experiment rows
(E1..E16 in DESIGN.md) and records the reproduced numbers in
``benchmark.extra_info`` so a report run preserves them alongside timings.
"""

import json


def record(benchmark, **info):
    """Attach reproduced experiment data to the benchmark record."""
    for key, value in info.items():
        try:
            json.dumps(value)
            benchmark.extra_info[key] = value
        except TypeError:
            benchmark.extra_info[key] = repr(value)
