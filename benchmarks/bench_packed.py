"""Packed state engine — microbenchmarks for the dense-id hot paths.

What the packed engine buys and what it costs, measured directly:

* intern throughput: frozen-state -> dense-id mapping rate, first
  interning (hash the deep structure once) vs re-interning (one dict
  probe);
* CSR expansion rate: successor sweeps recorded as packed rows per
  second, against the dict-of-tuples layout they replaced;
* bytes/state: the packed adjacency footprint per reachable state;
* packed-vs-frozen BFS: the same reachability query over ids (bitmap
  probes) and over frozen states (deep hashing per probe).
"""

from conftest import record

from repro.core import (
    IdFlags,
    PackedGraph,
    Signature,
    StateInterner,
    TableAutomaton,
    freeze,
    state_graph,
)


def _grid_states(n):
    """Frozen nested states with realistic hashing cost (dict+tuple)."""
    return [
        freeze({"row": i // 64, "col": i % 64, "trail": (i, i + 1, i + 2)})
        for i in range(n)
    ]


def _grid_automaton(side):
    """A side x side grid: right/down moves, one initial corner."""
    sig = Signature(internals=frozenset({"right", "down"}))
    transitions = {}
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                transitions[((r, c), "right")] = [(r, c + 1)]
            if r + 1 < side:
                transitions[((r, c), "down")] = [(r + 1, c)]
    return TableAutomaton(
        sig, initial=[(0, 0)], transitions=transitions, name="grid"
    )


def test_packed_intern_throughput(benchmark):
    states = _grid_states(4_000)

    def intern_all():
        interner = StateInterner()
        for state in states:
            interner.intern(state)
        for state in states:  # re-intern: the steady-state probe cost
            interner.intern(state)
        return interner

    interner = benchmark(intern_all)
    assert len(interner) == len(states)
    record(
        benchmark,
        states=len(states),
        interned_per_call=2 * len(states),
        hit_rate=interner.stats["hit_rate"],
    )


def test_packed_csr_expansion_rate(benchmark):
    states = _grid_states(2_000)

    def build_rows():
        graph = PackedGraph()
        ids = [graph.interner.intern(s) for s in states]
        for i, sid in enumerate(ids):
            succs = ids[i + 1:i + 4]
            graph.add_row(sid, ["step"] * len(succs), succs)
        return graph

    graph = benchmark(build_rows)
    assert graph.rows == len(states)
    record(
        benchmark,
        rows=graph.rows,
        edges=graph.edge_count,
        bytes_per_state=round(graph.stats["bytes_per_state"], 2),
        packed_bytes=graph.nbytes(),
    )


def test_packed_vs_frozen_visited_set(benchmark):
    """The probe that dominates exploration: `succ in seen`."""
    states = _grid_states(3_000)
    interner = StateInterner()
    ids = [interner.intern(s) for s in states]

    def probe_both():
        frozen_seen = set()
        for state in states:
            if state not in frozen_seen:
                frozen_seen.add(state)
        packed_seen = IdFlags()
        for sid in ids:
            packed_seen.add(sid)
        return len(frozen_seen), packed_seen.count

    nfrozen, npacked = benchmark(probe_both)
    assert nfrozen == npacked == len(states)
    record(benchmark, states=len(states))


def test_packed_reachability_sweep(benchmark):
    """End-to-end: a full frontier expansion over the packed backing."""
    def sweep():
        automaton = _grid_automaton(40)
        graph = state_graph(automaton)
        frontier = graph.frontier(False)
        frontier.expand_all(max_states=100_000)
        return graph

    graph = benchmark(sweep)
    stats = graph.stats
    assert stats["states_expanded"] == 1_600
    record(
        benchmark,
        states=stats["states_expanded"],
        packed_bytes=stats["packed_bytes"],
        bytes_per_state=round(
            stats["packed_bytes"] / stats["states_interned"], 2
        ),
    )
