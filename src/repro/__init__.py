"""repro: executable models and mechanized impossibility proofs.

A reproduction of Nancy Lynch's PODC 1989 keynote survey *"A Hundred
Impossibility Proofs for Distributed Computing"* as a working library:
the survey's formal models become simulators, its algorithms become
verified implementations, and its proof techniques become mechanized
checkers that emit machine-checked certificates on bounded instances.

Subpackages
-----------

core
    I/O automata, executions, composition, fairness, exploration.
shared_memory
    Asynchronous shared memory: mutual exclusion, k-exclusion, the
    Cremers–Hibbard and Burns–Lynch lower bounds.
consensus
    Synchronous message passing: Byzantine agreement, round and process
    lower bounds, approximate agreement, commit.
asynchronous
    Asynchronous message passing: FLP, Two Generals, sessions,
    synchronizers, randomized consensus.
registers
    Wait-free shared objects: register constructions, snapshots,
    linearizability, the consensus hierarchy.
rings
    Computing in rings and networks: leader election algorithms and
    message lower bounds, anonymous symmetry.
clocks
    Logical clocks and fault-free clock synchronization bounds.
datalink
    Communication protocols over lossy channels.
knowledge
    Knowledge and common knowledge over runs.
impossibility
    The generic proof-technique engines and certificates.
"""

__version__ = "1.0.0"

from . import (  # noqa: E402  (re-exported subpackages)
    asynchronous,
    clocks,
    communication,
    consensus,
    core,
    datalink,
    impossibility,
    knowledge,
    registers,
    rings,
    shared_memory,
)

__all__ = [
    "core",
    "impossibility",
    "shared_memory",
    "consensus",
    "asynchronous",
    "registers",
    "rings",
    "clocks",
    "datalink",
    "knowledge",
    "communication",
    "__version__",
]
