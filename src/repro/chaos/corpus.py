"""Schedule corpus + coverage map: the feedback loop of mega-campaigns.

Coverage-guided fuzzing needs two pieces of persistent state: a
*coverage map* saying which behaviours have been seen, and a *corpus* of
the inputs that first exhibited each one.  Both reuse machinery the
repository already trusts:

* **Coverage signal** is the trace fingerprint
  (:meth:`repro.core.runtime.Trace.fingerprint` — sha256 of the
  canonical trace JSONL).  Two schedules that drive a target through
  byte-identical traces are behaviourally equivalent for every monitor
  we own, so the fingerprint set *is* the campaign's behavioural
  coverage, with no instrumentation of the substrates.

* **Corpus persistence** is the content-addressed
  :class:`~repro.service.store.CertificateStore`: each novel-coverage
  schedule becomes a store entry keyed by ``(target, trace_fingerprint)``
  via the canonical :class:`~repro.service.keys.QueryKey` fingerprints,
  written atomically and re-verified on load (a corrupt corpus entry is
  skipped, never replayed wrong).  Content addressing makes corpus
  merges trivial — two campaigns writing the same directory converge on
  one entry per behaviour — and makes the corpus a *regression suite*:
  :func:`replay_corpus` re-runs every entry and checks the traces (and
  the planted violations) reproduce exactly, which is what the CI
  mega-campaign gate asserts.

Entries deliberately store the *schedule*, not the trace: schedules are
tiny (a handful of atoms) where traces are not, so a million-case
campaign's corpus stays kilobytes, and replay re-derives everything else
from the determinism invariant.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.budget import BudgetExceeded
from ..service.keys import QueryKey, decode_canonical, encode_canonical
from ..service.store import CertificateStore
from .targets import ChaosTarget, Schedule, target_registry

CORPUS_KIND = "chaos-corpus"
CORPUS_SCHEMA = "repro-chaos-corpus-entry/v1"

#: verdict string shared with :mod:`repro.chaos.campaign` (no import cycle)
STALL_VERDICT = "BUDGET_EXCEEDED"


def stall_fingerprint(atoms: Schedule) -> str:
    """The synthetic coverage fingerprint of a stalled (budget-exceeded)
    case: a stall has no completed trace to hash, so its behavioural
    identity is the canonical digest of the schedule that provoked it.

    The ``stall:`` prefix keeps the namespace disjoint from real trace
    fingerprints, and the canonical-JSON digest makes the value stable
    across processes and machines — which is what lets expect-stall
    corpus entries replay as first-class regression cases.
    """
    canonical = json.dumps(
        encode_canonical(tuple(atoms)),
        sort_keys=True,
        separators=(",", ":"),
    )
    return "stall:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CorpusEntry:
    """One novel-coverage schedule: the input, its seed, what it showed."""

    target: str
    trace_fingerprint: str
    atoms: Schedule
    seed: int
    verdict: str

    def key(self) -> QueryKey:
        return QueryKey.make(
            CORPUS_KIND,
            target=self.target,
            trace_fingerprint=self.trace_fingerprint,
        )

    def payload(self) -> Dict[str, Any]:
        return {
            "schema": CORPUS_SCHEMA,
            "target": self.target,
            "trace_fingerprint": self.trace_fingerprint,
            "atoms": encode_canonical(tuple(self.atoms)),
            "seed": self.seed,
            "verdict": self.verdict,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CorpusEntry":
        if payload.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"unknown corpus entry schema {payload.get('schema')!r}"
            )
        return cls(
            target=payload["target"],
            trace_fingerprint=payload["trace_fingerprint"],
            atoms=tuple(decode_canonical(payload["atoms"])),
            seed=int(payload["seed"]),
            verdict=payload["verdict"],
        )


class CoverageMap:
    """Which trace fingerprints each target has already exhibited.

    Constant-size relative to behaviours, not cases: a million cases
    that all retread known traces add nothing here.  ``observe`` is the
    novelty test — True exactly when the fingerprint is new for that
    target — and doubles as the record, so the fold calls it once per
    case and branches on the answer.
    """

    def __init__(self):
        self._seen: Dict[str, Set[str]] = {}

    def observe(self, target: str, trace_fingerprint: str) -> bool:
        seen = self._seen.setdefault(target, set())
        if trace_fingerprint in seen:
            return False
        seen.add(trace_fingerprint)
        return True

    def counts(self) -> Dict[str, int]:
        """target -> distinct behaviours seen (sorted by target name)."""
        return {name: len(fps) for name, fps in sorted(self._seen.items())}

    def total(self) -> int:
        return sum(len(fps) for fps in self._seen.values())


class ScheduleCorpus:
    """A directory of novel-coverage schedules, store-backed and mergeable.

    Thin veneer over a :class:`CertificateStore` rooted at ``root``:
    :meth:`add` persists an entry iff its ``(target, trace_fingerprint)``
    key is not already present, :meth:`entries` loads and re-verifies
    everything on disk in canonical ``(target, fingerprint)`` order, and
    :meth:`seed_coverage` pre-loads a :class:`CoverageMap` so a campaign
    resumed against an existing corpus only chases *new* behaviours.
    """

    def __init__(self, root: str):
        self.store = CertificateStore(root)
        self.root = self.store.root

    def add(self, entry: CorpusEntry) -> bool:
        """Persist ``entry`` if novel on disk; True iff a write happened."""
        key = entry.key()
        if self.store.contains(key):
            return False
        self.store.put(key, entry.payload())
        return True

    def entries(self) -> List[CorpusEntry]:
        """Every verified entry, sorted by (target, trace fingerprint).

        Unverifiable files and foreign-kind store entries are skipped
        (the store counts them); the sort makes replay order — and hence
        replay reports — independent of directory listing order.
        """
        loaded: List[CorpusEntry] = []
        for kind, fingerprint in self.store.entries():
            if kind != "object":
                continue
            found = self.store.load_object(fingerprint)
            if found is None:
                continue
            key, payload = found
            if key.kind != CORPUS_KIND:
                continue
            try:
                loaded.append(CorpusEntry.from_payload(dict(payload)))
            except (KeyError, TypeError, ValueError):
                continue
        loaded.sort(key=lambda e: (e.target, e.trace_fingerprint))
        return loaded

    def fingerprints(self) -> Dict[str, Set[str]]:
        """target -> trace fingerprints on disk."""
        out: Dict[str, Set[str]] = {}
        for entry in self.entries():
            out.setdefault(entry.target, set()).add(entry.trace_fingerprint)
        return out

    def seed_coverage(self, coverage: CoverageMap) -> int:
        """Mark everything on disk as already-seen; return entry count."""
        count = 0
        for entry in self.entries():
            coverage.observe(entry.target, entry.trace_fingerprint)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self.entries())


def replay_corpus(
    corpus: ScheduleCorpus,
    targets: Optional[Iterable[ChaosTarget]] = None,
) -> Dict[str, Any]:
    """Re-run every corpus entry; report reproducibility and refound bugs.

    The corpus-as-regression-suite check: each schedule must drive its
    target through the *same* trace it was saved for (the determinism
    invariant across machines and runs), and each violating entry must
    violate again.  Expect-stall entries (verdict ``BUDGET_EXCEEDED``,
    synthetic ``stall:`` fingerprint) must *stall* again — the replayed
    run has to exit via :class:`~repro.core.budget.BudgetExceeded`, and
    completing instead is a fingerprint mismatch.  The report carries,
    per target, how many entries replayed, how many reproduced, and
    which targets re-exhibited a violation or a stall — the CI gate
    asserts every planted-bug target appears in ``violations_refound``
    and every expect-stall target in ``stalls_refound``.
    """
    registry = target_registry(targets)
    per_target: Dict[str, Dict[str, int]] = {}
    refound: Set[str] = set()
    stalled: Set[str] = set()
    mismatches: List[Tuple[str, str, str]] = []
    unknown: List[str] = []
    for entry in corpus.entries():
        target = registry.get(entry.target)
        if target is None:
            unknown.append(entry.target)
            continue
        stats = per_target.setdefault(
            entry.target,
            {"entries": 0, "reproduced": 0, "violations": 0, "stalls": 0},
        )
        stats["entries"] += 1
        try:
            trace = target.run(entry.atoms, entry.seed)
        except BudgetExceeded:
            if (
                entry.verdict == STALL_VERDICT
                and entry.trace_fingerprint == stall_fingerprint(entry.atoms)
            ):
                stats["reproduced"] += 1
                stats["stalls"] += 1
                stalled.add(entry.target)
            else:
                mismatches.append(
                    (entry.target, entry.trace_fingerprint, "stall")
                )
            continue
        fingerprint = trace.fingerprint()
        if fingerprint == entry.trace_fingerprint:
            stats["reproduced"] += 1
        else:
            # Covers both trace divergence and a stall entry that
            # replayed to completion (its budget receipt didn't
            # reproduce): either way the recorded behaviour is gone.
            mismatches.append(
                (entry.target, entry.trace_fingerprint, fingerprint)
            )
        if target.violations(trace, entry.atoms):
            stats["violations"] += 1
            refound.add(entry.target)
    return {
        "entries": sum(s["entries"] for s in per_target.values()),
        "per_target": per_target,
        "violations_refound": sorted(refound),
        "stalls_refound": sorted(stalled),
        "fingerprint_mismatches": mismatches,
        "unknown_targets": sorted(set(unknown)),
    }
