"""Trace monitors: the correctness conditions chaos campaigns check.

Each monitor is a reusable predicate over a completed
:class:`~repro.core.runtime.Trace` — evaluated post-hoc, never inline, so
the same monitor reads runs of any substrate that speaks the unified
schema.  The conditions are the survey's: agreement and validity for
consensus (§2.2), termination, mutual exclusion (§2.3), exactly-once
in-order delivery for the data link (§2.5), and unique leaders for rings
(§2.4).

Decisions are read from DECIDE events when the substrate emits them and
from the trace outcome's ``decisions`` entry otherwise, so the consensus
monitors work unchanged on the synchronous rounds substrate (which emits
both) and the FLP asynchronous network (outcome only).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from ..circumvention.partitions import PartitionAdversary
from ..core.runtime import DECIDE, DECLARE, OUTPUT, Trace


@dataclass(frozen=True)
class Violation:
    """One monitored property failing on one trace."""

    monitor: str
    description: str
    step: Optional[int] = None

    def __str__(self) -> str:
        at = f" (at event {self.step})" if self.step is not None else ""
        return f"{self.monitor}: {self.description}{at}"


class TraceMonitor(ABC):
    """A safety/liveness predicate over a completed trace."""

    name: str = "monitor"

    @abstractmethod
    def check(self, trace: Trace) -> Optional[Violation]:
        """The first violation this trace exhibits, or None."""


def check_all(trace: Trace, monitors: Iterable[TraceMonitor]) -> List[Violation]:
    """Every violation the monitors find, in monitor order."""
    found = []
    for monitor in monitors:
        violation = monitor.check(trace)
        if violation is not None:
            found.append(violation)
    return found


def _decisions(trace: Trace) -> Dict[Hashable, Hashable]:
    """actor -> first decided value, from DECIDE events and the outcome."""
    decided: Dict[Hashable, Hashable] = {}
    for event in trace.events_of(DECIDE):
        decided.setdefault(event.actor, event.payload)
    for actor, value in trace.outcome_dict().get("decisions", ()) or ():
        if value is not None:
            decided.setdefault(actor, value)
    return decided


class AgreementMonitor(TraceMonitor):
    """No two honest processes decide differently."""

    name = "agreement"

    def __init__(self, honest: Iterable[Hashable]):
        self.honest = frozenset(honest)

    def check(self, trace: Trace) -> Optional[Violation]:
        decided = {
            actor: value
            for actor, value in _decisions(trace).items()
            if actor in self.honest
        }
        values = set(decided.values())
        if len(values) > 1:
            detail = ", ".join(
                f"{actor}->{value}" for actor, value in sorted(
                    decided.items(), key=repr
                )
            )
            return Violation(self.name, f"honest decisions disagree: {detail}")
        return None


class ValidityMonitor(TraceMonitor):
    """If every trusted input is ``v``, honest decisions must equal ``v``."""

    name = "validity"

    def __init__(
        self,
        inputs: Mapping[Hashable, Hashable],
        honest: Iterable[Hashable],
        trusted: Optional[Iterable[Hashable]] = None,
    ):
        self.inputs = dict(inputs)
        self.honest = frozenset(honest)
        self.trusted = frozenset(trusted) if trusted is not None else self.honest

    def check(self, trace: Trace) -> Optional[Violation]:
        relevant = {self.inputs[actor] for actor in self.trusted}
        if len(relevant) != 1:
            return None
        (value,) = relevant
        for actor, decision in sorted(_decisions(trace).items(), key=repr):
            if actor in self.honest and decision != value:
                return Violation(
                    self.name,
                    f"all trusted inputs are {value!r} but {actor} decided "
                    f"{decision!r}",
                )
        return None


class TerminationMonitor(TraceMonitor):
    """Every expected process decides by the end of the run."""

    name = "termination"

    def __init__(self, expected: Iterable[Hashable]):
        self.expected = frozenset(expected)

    def check(self, trace: Trace) -> Optional[Violation]:
        missing = self.expected - set(_decisions(trace))
        if missing:
            return Violation(
                self.name,
                f"processes never decided: {sorted(missing, key=repr)}",
            )
        return None


class MutualExclusionMonitor(TraceMonitor):
    """At most one process in its critical region at any point.

    Reads the shared-memory mutex convention: an event whose payload is
    ``("crit", name)`` announces entry, ``("rem", name)`` announces exit.
    """

    name = "mutual-exclusion"

    def check(self, trace: Trace) -> Optional[Violation]:
        inside: set = set()
        for event in trace.events:
            payload = event.payload
            if not (isinstance(payload, tuple) and len(payload) == 2):
                continue
            tag, who = payload
            if tag == "crit":
                inside.add(who)
                if len(inside) > 1:
                    return Violation(
                        self.name,
                        f"{sorted(inside, key=repr)} simultaneously in the "
                        "critical region",
                        step=event.step,
                    )
            elif tag == "rem":
                inside.discard(who)
        return None


class BoundedStalenessMonitor(TraceMonitor):
    """Under bounded staleness, agreement must hold — the possible side.

    The Gafni–Losa boundary condition for mobile (transient) faults: a
    process whose messages were dropped in *every* round never got its
    information out, so its view is unboundedly stale and disagreement
    is the impossibility result at work.  But when every process had at
    least one clean round (staleness bounded), information flooded and
    the run sits on the *possible* side of the boundary — honest
    processes disagreeing there is not the planted impossibility, it is
    an engine bug.  This monitor fires exactly in that second case, so a
    mobile-fault corpus exercises both sides of the boundary with a
    built-in no-false-positives check on the possible one.
    """

    name = "bounded-staleness"

    def __init__(
        self,
        muted_rounds: Mapping[Hashable, Iterable[int]],
        rounds: int,
        honest: Iterable[Hashable],
    ):
        self.muted_rounds = {
            pid: frozenset(rnds) for pid, rnds in muted_rounds.items()
        }
        self.rounds = rounds
        self.honest = frozenset(honest)

    def fully_muted(self) -> List[Hashable]:
        """Processes silenced in every round (unbounded staleness)."""
        every = frozenset(range(1, self.rounds + 1))
        return sorted(
            (pid for pid, rnds in self.muted_rounds.items() if rnds >= every),
            key=repr,
        )

    def check(self, trace: Trace) -> Optional[Violation]:
        stale = self.fully_muted()
        if stale:
            # Unbounded staleness: the impossible side; any disagreement
            # belongs to the agreement monitor, not this one.
            return None
        decided = {
            actor: value
            for actor, value in _decisions(trace).items()
            if actor in self.honest
        }
        if len(set(decided.values())) > 1:
            detail = ", ".join(
                f"{actor}->{value}"
                for actor, value in sorted(decided.items(), key=repr)
            )
            return Violation(
                self.name,
                "every process had a clean round (staleness bounded) yet "
                f"decisions disagree: {detail}",
            )
        return None


class FifoDeliveryMonitor(TraceMonitor):
    """Exactly-once, in-order delivery of the sent message sequence.

    The data-link correctness condition of §2.5: what the receiver
    delivered must be a prefix of what was sent (no duplicates, no
    reordering, no invention), and once the sender believes it is done,
    the prefix must be the whole sequence (no loss).
    """

    name = "fifo-delivery"

    def __init__(self, sent: Sequence[Hashable]):
        self.sent = tuple(sent)

    def check(self, trace: Trace) -> Optional[Violation]:
        outcome = trace.outcome_dict()
        delivered = tuple(outcome.get("delivered", ()))
        if delivered != self.sent[: len(delivered)]:
            return Violation(
                self.name,
                f"delivered {delivered!r} is not a prefix of sent "
                f"{self.sent!r} (duplicate, reordering or invention)",
            )
        if outcome.get("sender_done") and len(delivered) < len(self.sent):
            return Violation(
                self.name,
                f"sender believes all {len(self.sent)} messages are "
                f"acknowledged but only {len(delivered)} were delivered "
                "(loss)",
            )
        return None


class LeaseSafetyMonitor(TraceMonitor):
    """No two leases from different holders ever overlap in time.

    The quorum-lease safety condition: every ``("lease", holder, start,
    expiry)`` declaration names a half-open validity interval
    ``[start, expiry)``; two intervals from *different* holders must be
    disjoint under every partition schedule, because intersecting
    quorums carry a live promise that bars the second grant.  Renewals
    by the same holder legitimately overlap and are ignored.  The
    planted no-quorum-grant bug trips this on a single partition atom.
    """

    name = "lease-safety"

    def check(self, trace: Trace) -> Optional[Violation]:
        grants: List[tuple] = []
        for event in trace.events_of(DECLARE):
            payload = event.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 4
                and payload[0] == "lease"
            ):
                grants.append((event.step,) + payload[1:])
        for i, (_, h1, s1, e1) in enumerate(grants):
            for step, h2, s2, e2 in grants[i + 1:]:
                if h1 != h2 and s1 < e2 and s2 < e1:
                    return Violation(
                        self.name,
                        f"concurrent leases: holder {h1} owns [{s1},{e1}) "
                        f"while holder {h2} owns [{s2},{e2})",
                        step=step,
                    )
        return None


class LeaderStabilityMonitor(TraceMonitor):
    """The Omega contract: eventually one stable live leader everywhere.

    Once the partition schedule goes quiet, an eventually-accurate
    detector must stop changing its mind: no ``("leader", pid)``
    declaration may land in the final ``window`` steps of the horizon,
    and when the run ends every live process must agree on one live
    leader.  The planted never-stabilizing detector (a timeout below the
    heartbeat interval with adaptation disabled) flaps forever and fires
    this on the empty schedule.
    """

    name = "leader-stability"

    def __init__(self, live: Iterable[Hashable], horizon: int, window: int = 8):
        self.live = frozenset(live)
        self.horizon = horizon
        self.window = window

    def check(self, trace: Trace) -> Optional[Violation]:
        cutoff = self.horizon - self.window
        final: Dict[Hashable, Hashable] = {}
        for event in trace.events_of(DECLARE):
            payload = event.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "leader"
            ):
                continue
            if event.actor not in self.live:
                continue
            final[event.actor] = payload[1]
            if event.time is not None and event.time >= cutoff:
                return Violation(
                    self.name,
                    f"leader still changing inside the stability window: "
                    f"process {event.actor} switched to {payload[1]} at "
                    f"t={event.time} (cutoff {cutoff})",
                    step=event.step,
                )
        missing = self.live - set(final)
        if missing:
            return Violation(
                self.name,
                f"processes never elected a leader: {sorted(missing, key=repr)}",
            )
        leaders = set(final.values())
        if len(leaders) > 1:
            detail = ", ".join(
                f"{actor}->{leader}"
                for actor, leader in sorted(final.items(), key=repr)
            )
            return Violation(
                self.name, f"live processes disagree on the leader: {detail}"
            )
        if leaders and not leaders <= self.live:
            (leader,) = leaders
            return Violation(
                self.name, f"everyone elected crashed process {leader}"
            )
        return None


class DegradedModeMonitor(TraceMonitor):
    """Degraded modes degrade: no quorum-less write, no over-stale read.

    The CAP receipt for the lease protocol, checked against the *same*
    :class:`~repro.circumvention.partitions.PartitionAdversary` the
    simulator ran under: a ``("write-ack", value)`` output is only legal
    while its actor can reach a strict majority of the cluster (else the
    node was obligated to be read-only), and a ``("read", version,
    staleness)`` output must stay within the declared staleness bound
    (else the node was obligated to reject the read as stale).
    """

    name = "degraded-mode"

    def __init__(self, partition: PartitionAdversary, staleness_bound: int):
        self.partition = partition
        self.staleness_bound = staleness_bound

    def check(self, trace: Trace) -> Optional[Violation]:
        for event in trace.events_of(OUTPUT):
            payload = event.payload
            if not (isinstance(payload, tuple) and payload):
                continue
            if payload[0] == "write-ack" and event.time is not None:
                if not self.partition.majority_connected(
                    event.time, event.actor
                ):
                    return Violation(
                        self.name,
                        f"node {event.actor} acked write v{payload[1]} at "
                        f"t={event.time} without a majority quorum",
                        step=event.step,
                    )
            elif payload[0] == "read" and len(payload) == 3:
                if payload[2] > self.staleness_bound:
                    return Violation(
                        self.name,
                        f"node {event.actor} served a read {payload[2]} "
                        f"steps stale (bound {self.staleness_bound})",
                        step=event.step,
                    )
        return None


class UniqueLeaderMonitor(TraceMonitor):
    """Exactly one leader is declared (optionally, a specific one)."""

    name = "unique-leader"

    def __init__(self, expected: Optional[Hashable] = None):
        self.expected = expected

    def check(self, trace: Trace) -> Optional[Violation]:
        leaders = [
            event.actor
            for event in trace.events_of(DECLARE)
            if event.payload == "leader"
        ]
        if not leaders:
            leaders = list(trace.outcome_dict().get("leaders", ()))
        if len(leaders) != 1:
            return Violation(
                self.name,
                f"expected exactly one leader, saw {leaders!r}",
            )
        if self.expected is not None and leaders[0] != self.expected:
            return Violation(
                self.name,
                f"leader {leaders[0]!r} is not the expected {self.expected!r}",
            )
        return None
