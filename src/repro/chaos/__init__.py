"""Chaos campaign engine: adversary fuzzing over every substrate.

The survey proves impossibility by *constructing* bad executions; this
package searches for them mechanically.  A :class:`~repro.chaos.targets.
ChaosTarget` packages a protocol with a seeded adversary generator and
the safety/liveness monitors its executions must satisfy; the campaign
runner (:func:`~repro.chaos.campaign.run_campaign`) fuzzes each target
under per-run budgets, classifies every run (PASS / VIOLATION /
BUDGET_EXCEEDED / CRASH), delta-debugs violating adversary schedules to
1-minimal counterexamples, and re-verifies each shrunk schedule through
the unified :func:`repro.core.runtime.replay` before reporting the
``(seed, fingerprint)`` pair that reproduces it.
"""

from .campaign import (
    BUDGET_EXCEEDED,
    CRASH,
    PASS,
    VIOLATION,
    CampaignFold,
    CampaignReport,
    CaseResult,
    Counterexample,
    reproduce,
    run_campaign,
    write_artifacts,
    write_counterexample,
)
from .circumvention_targets import (
    AdversarialSuspicionTarget,
    BenOrTarget,
    BiasedCoinBenOrTarget,
    BuggyLeaseTarget,
    GSTConsensusTarget,
    HeartbeatDetectorTarget,
    OmegaConsensusTarget,
    QuorumLeaseTarget,
    UnstableDetectorTarget,
    circumvention_targets,
)
from .corpus import (
    CorpusEntry,
    CoverageMap,
    ScheduleCorpus,
    replay_corpus,
    stall_fingerprint,
)
from .monitors import (
    AgreementMonitor,
    BoundedStalenessMonitor,
    DegradedModeMonitor,
    FifoDeliveryMonitor,
    LeaderStabilityMonitor,
    LeaseSafetyMonitor,
    MutualExclusionMonitor,
    TerminationMonitor,
    TraceMonitor,
    UniqueLeaderMonitor,
    ValidityMonitor,
    Violation,
    check_all,
)
from .shrink import shrink_schedule
from .targets import (
    AlternatingBitTarget,
    ChaosTarget,
    EIGByzantineTarget,
    EagerMajorityTarget,
    FloodSetCrashTarget,
    LCRRingTarget,
    MobileFloodSetTarget,
    RacyLockTarget,
    default_targets,
    target_registry,
)

__all__ = [
    "AdversarialSuspicionTarget",
    "AgreementMonitor",
    "AlternatingBitTarget",
    "BUDGET_EXCEEDED",
    "BenOrTarget",
    "BiasedCoinBenOrTarget",
    "BoundedStalenessMonitor",
    "BuggyLeaseTarget",
    "CRASH",
    "CampaignFold",
    "CampaignReport",
    "CaseResult",
    "ChaosTarget",
    "CorpusEntry",
    "Counterexample",
    "CoverageMap",
    "DegradedModeMonitor",
    "EIGByzantineTarget",
    "EagerMajorityTarget",
    "FifoDeliveryMonitor",
    "FloodSetCrashTarget",
    "GSTConsensusTarget",
    "HeartbeatDetectorTarget",
    "LCRRingTarget",
    "LeaderStabilityMonitor",
    "LeaseSafetyMonitor",
    "MobileFloodSetTarget",
    "MutualExclusionMonitor",
    "OmegaConsensusTarget",
    "PASS",
    "QuorumLeaseTarget",
    "RacyLockTarget",
    "ScheduleCorpus",
    "TerminationMonitor",
    "TraceMonitor",
    "UniqueLeaderMonitor",
    "UnstableDetectorTarget",
    "VIOLATION",
    "ValidityMonitor",
    "Violation",
    "check_all",
    "circumvention_targets",
    "default_targets",
    "replay_corpus",
    "reproduce",
    "run_campaign",
    "shrink_schedule",
    "stall_fingerprint",
    "target_registry",
    "write_artifacts",
    "write_counterexample",
]
