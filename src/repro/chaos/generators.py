"""Seeded adversary generators: random atoms, and atoms back to adversaries.

The fuzzing side of the chaos engine.  Every adversary a campaign throws
at a substrate is generated as a flat tuple of *atoms* — plain hashable
data — and only then compiled into the substrate's concrete adversary
object.  The split is what makes counterexamples shrinkable
(:mod:`repro.chaos.shrink` deletes atoms) and serializable (atoms are
tuples of scalars, so they ride in the JSONL artifact next to the trace).

Atom vocabularies:

* ``("crash", pid, round, receivers)`` — a crash-with-partial-send for
  the synchronous model's :class:`~repro.consensus.synchronous.
  CrashAdversary`;
* ``("lie", round, dest, label, value)`` — a Byzantine claim "EIG node
  ``label`` holds ``value``", told to ``dest`` in ``round``, layered over
  the honest message;
* datalink channel actions, verbatim from the
  :class:`~repro.datalink.simulate.ChannelAdversary` vocabulary
  (``("transmit",)``, ``("deliver", side, i)``, ``("drop", side, i)``,
  ``("dup", side, i)``, ``("crash", endpoint)``);
* bare ints — a script for :class:`~repro.core.scheduler.
  ScriptedIndexScheduler`, indexing the repr-sorted enabled set of any
  scheduling-shaped substrate.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterator, Sequence, Tuple

from ..circumvention.consensus import RELENTLESS_ATOM, SUSPECT_ATOM
from ..circumvention.gst import (
    DELAY_ATOM,
    GST_ATOM,
    GSTAdversary,
    simplify_gst_atom,
)
from ..circumvention.partitions import (
    PartitionAdversary,
    simplify_partition_atom,
)
from ..circumvention.randomized import CRASH_ATOM as BENOR_CRASH_ATOM
from ..circumvention.randomized import BenOrAdversary
from ..consensus.synchronous import (
    ByzantineAdversary,
    CrashAdversary,
    ScriptedOmission,
)

Atom = Tuple
Schedule = Tuple[Atom, ...]


# ---------------------------------------------------------------------------
# Crash schedules (synchronous rounds)
# ---------------------------------------------------------------------------


def random_crash_atoms(
    rng: random.Random, n: int, rounds: int, max_crashes: int
) -> Schedule:
    """Up to ``max_crashes`` crash atoms with distinct pids.

    The sampler is biased toward the shape the round-by-round chain
    argument (§2.2.2) predicts is lethal: usually one crash per round
    (distinct, increasing rounds), with receiver sets kept small — the
    interesting crashes are the ones that reach almost nobody.
    """
    if max_crashes <= rounds and rng.random() < 0.75:
        count = max_crashes  # a full chain: one crash per round
    else:
        count = rng.randint(1, max_crashes)
    pids = rng.sample(range(n), count)
    if count <= rounds:
        crash_rounds = sorted(rng.sample(range(1, rounds + 1), count))
    else:
        crash_rounds = sorted(rng.randint(1, rounds) for _ in range(count))
    chained = count >= 2 and rng.random() < 0.6
    crashed = set(pids)
    atoms = []
    for i, (pid, rnd) in enumerate(zip(pids, crash_rounds)):
        others = [p for p in range(n) if p != pid]
        if chained and i + 1 < count:
            # Hand the poison down the chain: the dying process's last
            # message reaches exactly the next process scheduled to die.
            reach = [pids[i + 1]]
        elif chained:
            # The chain's end decides the split: leak to exactly one
            # survivor, so some live process learns what the rest missed.
            live = [p for p in others if p not in crashed]
            reach = rng.sample(live, 1) if live else []
        else:
            reach = rng.sample(others, rng.choice((0, 1, 1, 2)))
        atoms.append(("crash", pid, rnd, tuple(sorted(reach))))
    return tuple(sorted(atoms))


def crash_adversary(atoms: Schedule) -> CrashAdversary:
    """Compile crash atoms into a :class:`CrashAdversary`.

    Duplicate pids (possible after shrinking mangles a schedule) resolve
    to the last atom, matching dict-comprehension semantics.
    """
    return CrashAdversary(
        {pid: (rnd, receivers) for (_tag, pid, rnd, receivers) in atoms}
    )


def grow_receivers(atom: Atom, n: int) -> Iterator[Atom]:
    """Simplification for a crash atom: reach one more recipient.

    A crash whose final messages reach more processes is *milder* — closer
    to honest behaviour — so the shrinker prefers it.
    """
    _tag, pid, rnd, receivers = atom
    present = set(receivers)
    for p in range(n):
        if p != pid and p not in present:
            yield ("crash", pid, rnd, tuple(sorted(present | {p})))


# ---------------------------------------------------------------------------
# Mobile / transient crash schedules (Gafni–Losa rounds)
# ---------------------------------------------------------------------------


def random_mobile_crash_atoms(
    rng: random.Random, n: int, rounds: int, max_per_round: int = 1
) -> Schedule:
    """A mobile-fault schedule: the crashed set is re-sampled every round.

    Gafni–Losa (*Time is not a Healer*) reinterpret the t+1 bound for
    transient faults: a process silenced this round is healthy again the
    next, so the *same* total fault budget spread mobile-ly defeats
    protocols that survive it statically.  Each atom ``("mute", round,
    pid)`` silences one process's outgoing messages for one round only.

    The sampler is biased toward the lethal shape: with probability 0.5
    one victim is muted in *every* round (the relentless chain that keeps
    a value hidden for the whole run); otherwise each round independently
    mutes up to ``max_per_round`` random processes — mostly-healed
    schedules that exercise the possible side of the boundary.
    """
    atoms = set()
    if rng.random() < 0.5:
        victim = rng.randrange(n)
        for rnd in range(1, rounds + 1):
            atoms.add(("mute", rnd, victim))
    else:
        for rnd in range(1, rounds + 1):
            for _ in range(rng.randint(0, max_per_round)):
                atoms.add(("mute", rnd, rng.randrange(n)))
    return tuple(sorted(atoms))


def mobile_omission_adversary(atoms: Schedule, n: int) -> ScriptedOmission:
    """Compile mute atoms into a :class:`ScriptedOmission` adversary.

    A muted process drops every outgoing message of that round and runs
    honestly otherwise — a crash that round, healed the next.
    """
    return ScriptedOmission(
        {
            (rnd, pid, dest)
            for (_tag, rnd, pid) in atoms
            for dest in range(n)
            if dest != pid
        }
    )


def muted_rounds(atoms: Schedule) -> dict:
    """pid -> set of rounds in which that pid is muted."""
    silenced: dict = {}
    for (_tag, rnd, pid) in atoms:
        silenced.setdefault(pid, set()).add(rnd)
    return silenced


# ---------------------------------------------------------------------------
# Partition schedules (circumvention layer: detectors, leases)
# ---------------------------------------------------------------------------


def random_partition_atoms(
    rng: random.Random,
    n: int,
    horizon: int,
    max_down: int = 1,
    p_sustained: float = 0.6,
) -> Schedule:
    """A seeded partition schedule over the first ``horizon`` steps.

    Biased toward the shapes that matter for quorum protocols: usually
    one *sustained* split (the same side-mask over a contiguous window,
    half the time starting at step 0, when elections happen), plus a
    scatter of single-step splits and asymmetric cuts, plus at most
    ``max_down`` permanent crashes.  Every atom acts before ``horizon``,
    so a caller that simulates past it is guaranteed a quiet suffix —
    the stabilization window eventual-accuracy monitors key on.
    """
    atoms = set()
    if rng.random() < p_sustained:
        mask = rng.randint(1, (1 << n) - 2)  # nonempty proper subset
        start = 0 if rng.random() < 0.5 else rng.randrange(horizon)
        length = rng.randint(1, horizon - start)
        for t in range(start, start + length):
            atoms.add(("split", t, mask))
    for _ in range(rng.randint(0, 4)):
        t = rng.randrange(horizon)
        if rng.random() < 0.5:
            a, b = rng.sample(range(n), 2)
            atoms.add(("cut", t, a, b))
        else:
            atoms.add(("split", t, rng.randint(1, (1 << n) - 2)))
    if max_down > 0 and rng.random() < 0.25:
        atoms.add(("down", rng.randrange(horizon), rng.randrange(n)))
    return tuple(sorted(atoms))


def partition_adversary(atoms: Schedule, n: int) -> PartitionAdversary:
    """Compile partition atoms into a :class:`PartitionAdversary`."""
    return PartitionAdversary(atoms, n)


# re-exported for ChaosTarget.simplify_atom hooks
simplify_partition_atom = simplify_partition_atom


# ---------------------------------------------------------------------------
# Suspicion schedules (rotating-coordinator consensus)
# ---------------------------------------------------------------------------


def random_suspicion_atoms(
    rng: random.Random, n: int, accurate_after: int
) -> Schedule:
    """An *eventually accurate* suspicion schedule.

    Scripted ``("suspect", round, pid)`` atoms confined to rounds below
    ``accurate_after`` — after that every detector output is correct, so
    rotating-coordinator consensus must decide.  This is the possible
    side of the FLP circumvention: wrong early, right eventually.
    """
    atoms = set()
    for rnd in range(accurate_after):
        for pid in range(n):
            if rng.random() < 0.4:
                atoms.add((SUSPECT_ATOM, rnd, pid))
    return tuple(sorted(atoms))


def random_relentless_atoms(
    rng: random.Random, n: int, p_full: float = 0.7
) -> Schedule:
    """An adversarial suspicion schedule: a relentless coalition.

    With probability ``p_full`` *every* process suspects every
    coordinator forever — the schedule under which no round ever
    collects a quorum and the run must stall (budget-exceeded, never
    unsafe).  Otherwise a strict sub-coalition, which rotation defeats:
    the first round whose coordinator sits outside the coalition decides.
    """
    if rng.random() < p_full:
        coalition = range(n)
    else:
        coalition = rng.sample(range(n), rng.randint(1, n - 1))
    return tuple(sorted((RELENTLESS_ATOM, pid) for pid in coalition))


# ---------------------------------------------------------------------------
# Ben-Or schedules (randomized consensus)
# ---------------------------------------------------------------------------


def random_benor_atoms(
    rng: random.Random,
    n: int,
    t: int,
    max_script: int = 24,
    crash_window: int = 60,
    p_crash: float = 0.4,
) -> Schedule:
    """A seeded Ben-Or adversary: a delivery script plus optional crashes.

    Bare ints index the deliverable-message list for the first
    ``max_script`` deliveries (the adversary's strongest lever — which
    report lands where decides who sees a majority); once the script
    runs dry the engine's seeded scheduler takes over, so every schedule
    is finite yet every run can still terminate.  With probability
    ``p_crash`` up to ``t`` distinct processes crash at scripted event
    counts — the full strength of Ben-Or's fault contract.
    """
    atoms: list = [
        rng.randrange(n * n) for _ in range(rng.randint(0, max_script))
    ]
    if t > 0 and rng.random() < p_crash:
        for pid in rng.sample(range(n), rng.randint(1, t)):
            atoms.append((BENOR_CRASH_ATOM, rng.randrange(crash_window), pid))
    return tuple(atoms)


def benor_adversary(atoms: Schedule, t: int) -> BenOrAdversary:
    """Compile Ben-Or atoms into a :class:`BenOrAdversary` (the compiled
    crash plan is what target monitors use to learn who died)."""
    return BenOrAdversary(atoms, t)


# ---------------------------------------------------------------------------
# Partial-synchrony schedules (GST consensus)
# ---------------------------------------------------------------------------


def random_gst_atoms(
    rng: random.Random,
    n: int,
    max_gst: int = 40,
    p_blackout: float = 0.5,
    loss: float = 0.5,
) -> Schedule:
    """A seeded partial-synchrony schedule: delays until GST, then calm.

    Stabilization lands at a uniform ``("gst", g)``; before it, with
    probability ``p_blackout`` every link is dark every round (the
    canonical worst case — a late-enough GST under a capped budget is
    the provable stall), otherwise each directed link's message is
    independently delayed with probability ``loss`` (the lossy regime
    where lucky pre-GST decisions exercise the safety argument).
    """
    gst = rng.randint(1, max_gst)
    atoms: list = [(GST_ATOM, gst)]
    blackout = rng.random() < p_blackout
    for r in range(gst):
        for src in range(n):
            for dst in range(n):
                if src != dst and (blackout or rng.random() < loss):
                    atoms.append((DELAY_ATOM, r, (src, dst), 1))
    return tuple(atoms)


def gst_adversary(
    atoms: Schedule, n: int, t: int = 0
) -> GSTAdversary:
    """Compile gst atoms into a :class:`GSTAdversary`."""
    return GSTAdversary(atoms, n, t)


# re-exported for ChaosTarget.simplify_atom hooks
simplify_gst_atom = simplify_gst_atom


# ---------------------------------------------------------------------------
# Corpus mutation (coverage-guided re-expansion)
# ---------------------------------------------------------------------------


def mutate_schedule(
    rng: random.Random, atoms: Schedule, generate
) -> Schedule:
    """One seeded mutation of a corpus schedule.

    The coverage-guided loop's re-expansion step: a schedule that reached
    a novel trace fingerprint is perturbed — atoms deleted, duplicated,
    swapped, truncated, or spliced with a fresh draw from the target's
    own generator (``generate(rng)``) — in the hope of reaching a
    neighbouring behaviour.  Every operator preserves the target's atom
    vocabulary, so mutants compile into adversaries exactly like fresh
    schedules, and the whole mutation is a deterministic function of
    ``(rng state, atoms)``.
    """
    atoms = tuple(atoms)
    if not atoms:
        return tuple(generate(rng))
    op = rng.choice(("delete", "duplicate", "swap", "truncate", "splice"))
    if op == "delete":
        i = rng.randrange(len(atoms))
        return atoms[:i] + atoms[i + 1:]
    if op == "duplicate":
        i = rng.randrange(len(atoms))
        return atoms[:i] + (atoms[i],) + atoms[i:]
    if op == "swap":
        if len(atoms) < 2:
            return tuple(generate(rng))
        i, j = rng.sample(range(len(atoms)), 2)
        swapped = list(atoms)
        swapped[i], swapped[j] = swapped[j], swapped[i]
        return tuple(swapped)
    if op == "truncate":
        return atoms[: rng.randint(1, len(atoms))]
    # splice: keep a prefix, continue with a fresh generator draw
    fresh = tuple(generate(rng))
    cut = rng.randint(0, len(atoms))
    return atoms[:cut] + fresh[min(cut, len(fresh)):]


# ---------------------------------------------------------------------------
# Byzantine lies (EIG)
# ---------------------------------------------------------------------------


def random_lie_atoms(
    rng: random.Random,
    faulty: int,
    n: int,
    rounds: int,
    max_lies: int,
    values: Sequence[Hashable] = (0, 1),
) -> Schedule:
    """Up to ``max_lies`` per-label Byzantine claims.

    A round-``r`` EIG message carries level-``r-1`` labels excluding the
    sender; each lie overrides one label's value for one recipient — the
    per-edge equivocation the n > 3t bound is about.
    """
    honest = [p for p in range(n) if p != faulty]
    atoms = set()
    for _ in range(rng.randint(1, max_lies)):
        rnd = rng.randint(1, rounds)
        dest = rng.choice(honest)
        if rnd == 1:
            label: Tuple[int, ...] = ()
        else:
            label = tuple(
                rng.sample([p for p in range(n) if p != faulty], rnd - 1)
            )
        atoms.add(("lie", rnd, dest, label, rng.choice(list(values))))
    return tuple(sorted(atoms))


def lie_adversary(atoms: Schedule, faulty: int) -> ByzantineAdversary:
    """Compile lie atoms into a :class:`ByzantineAdversary`.

    The faulty process sends its honest message with the scripted labels
    overridden — minimal deviation, so deleting a lie atom really does
    mean "one claim fewer".
    """
    script = {}
    for (_tag, rnd, dest, label, value) in atoms:
        script.setdefault((rnd, dest), {})[label] = value

    def behaviour(rnd, src, dest, honest_message):
        lies = script.get((rnd, dest))
        if not lies:
            return honest_message
        try:
            entries = dict(honest_message)
        except (TypeError, ValueError):
            entries = {}
        for label, value in lies.items():
            if len(label) == rnd - 1 and src not in label:
                entries[label] = value
        return tuple(sorted(entries.items()))

    return ByzantineAdversary([faulty], behaviour)


# ---------------------------------------------------------------------------
# Channel programs (datalink)
# ---------------------------------------------------------------------------

_SIDES = ("fwd", "bwd")
_ENDPOINTS = ("sender", "receiver")


def random_channel_atoms(
    rng: random.Random,
    min_length: int = 6,
    max_length: int = 16,
    drain_cycles: int = 12,
) -> Schedule:
    """A random channel program plus a cooperative drain suffix.

    The random prefix mixes transmissions, (possibly reordered)
    deliveries, drops, duplicates and endpoint crashes; the drain suffix
    then runs the channel honestly long enough for a correct protocol to
    finish.  The suffix makes liveness-flavoured failures observable —
    "the sender believes it is done but a message was lost" only shows
    once the sender has been allowed to finish — and the shrinker deletes
    whatever part of the drain the counterexample does not need.
    """
    atoms = []
    for _ in range(rng.randint(min_length, max_length)):
        roll = rng.random()
        if roll < 0.30:
            atoms.append(("transmit",))
        elif roll < 0.55:
            atoms.append(("deliver", "fwd", rng.randint(0, 2)))
        elif roll < 0.75:
            atoms.append(("deliver", "bwd", rng.randint(0, 2)))
        elif roll < 0.80:
            atoms.append(("drop", rng.choice(_SIDES), rng.randint(0, 2)))
        elif roll < 0.85:
            atoms.append(("dup", rng.choice(_SIDES), rng.randint(0, 2)))
        else:
            atoms.append(("crash", rng.choice(_ENDPOINTS)))
    for _ in range(drain_cycles):
        atoms.extend(
            [("transmit",), ("deliver", "fwd", 0), ("deliver", "bwd", 0)]
        )
    return tuple(atoms)


def simplify_channel_atom(atom: Atom) -> Iterator[Atom]:
    """Simplification: pull buffer indices to 0 (FIFO is the tame case)."""
    if atom[0] in ("deliver", "drop", "dup") and atom[2] > 0:
        yield (atom[0], atom[1], 0)


# ---------------------------------------------------------------------------
# Interleaving scripts (shared memory, rings, asynchronous network)
# ---------------------------------------------------------------------------


def random_index_atoms(
    rng: random.Random, min_length: int, max_length: int, width: int
) -> Schedule:
    """A random :class:`~repro.core.scheduler.ScriptedIndexScheduler`
    script: ints in ``[0, width)``; the scheduler wraps them mod the live
    option count and falls back to 0 when the script runs dry."""
    return tuple(
        rng.randrange(width) for _ in range(rng.randint(min_length, max_length))
    )


def simplify_index_atom(atom: int) -> Iterator[int]:
    """Simplification: smaller indices are simpler; 0 is the fair default."""
    if isinstance(atom, int) and atom > 0:
        yield 0
        if atom > 1:
            yield atom - 1
