"""Chaos targets for the circumvention layer: detectors, leases, Omega.

Three honest protocols and their planted-bug / adversarial twins, so
campaigns exercise both sides of every circumvention:

* **quorum leases** — honest grants are quorum-backed and partition-safe
  (``lease-quorum``, a healthy control under arbitrary split / cut /
  crash schedules); the planted bug grants on *any* ack
  (``lease-no-quorum-bug``) and one partition atom at election time
  yields two concurrent leaseholders — the 1-minimal counterexample
  ddmin converges to;
* **failure detectors** — the adaptive heartbeat detector stabilizes on
  one live leader once the partition schedule goes quiet
  (``detector-heartbeat``, healthy); the planted bug disables adaptation
  with a timeout below the heartbeat interval
  (``detector-unstable-bug``) and the leader flaps forever, on the
  *empty* schedule — the detector itself is the counterexample;
* **rotating-coordinator consensus** — under eventually-accurate
  suspicion schedules every seed decides (``omega-rotating-consensus``,
  healthy: the FLP circumvention's possible side); under a relentless
  full-coalition schedule no round ever collects a quorum and the run
  exits via a structured budget overdraft, never via a safety violation
  (``rotating-consensus-adversarial``, ``expect_stall`` — the
  impossible side, made operational).

Simulator seeds are pinned (trace fingerprints incorporate the seed, so
a fixed sim seed makes behavioural coverage a function of the schedule
alone — the LCR-control idiom); campaign seeds still drive generation.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..circumvention.consensus import TandemMeter, run_rotating_consensus
from ..circumvention.detectors import run_heartbeat_detector
from ..circumvention.gst import run_gst_consensus
from ..circumvention.leases import run_quorum_lease
from ..circumvention.randomized import run_ben_or_traced
from ..core.budget import Budget
from ..core.runtime import Trace
from . import generators
from .monitors import (
    AgreementMonitor,
    DegradedModeMonitor,
    LeaderStabilityMonitor,
    LeaseSafetyMonitor,
    TerminationMonitor,
    TraceMonitor,
    ValidityMonitor,
)
from .targets import Atom, ChaosTarget, Schedule


# ---------------------------------------------------------------------------
# Quorum leases under partition adversaries
# ---------------------------------------------------------------------------


class QuorumLeaseTarget(ChaosTarget):
    """Honest quorum leases fuzzed with partition schedules — healthy.

    Promise persistence plus quorum intersection make concurrent leases
    impossible under *every* schedule the partition adversary can throw,
    and the degraded-mode monitor holds the protocol to its own CAP
    contract (read-only without a quorum, bounded-staleness reads).  Any
    violation here is an engine bug, not the protocol.
    """

    name = "lease-quorum"
    substrate = "quorum-lease"
    expect_violation = False

    N = 4
    HORIZON = 48
    STALENESS = 8
    BUGGY = False

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_partition_atoms(
            rng, n=self.N, horizon=self.HORIZON
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_quorum_lease(
            atoms,
            seed=0,
            n=self.N,
            horizon=self.HORIZON,
            staleness_bound=self.STALENESS,
            buggy_no_quorum=self.BUGGY,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        return [
            LeaseSafetyMonitor(),
            DegradedModeMonitor(
                generators.partition_adversary(atoms, self.N), self.STALENESS
            ),
        ]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.simplify_partition_atom(atom)


class BuggyLeaseTarget(QuorumLeaseTarget):
    """Leases granted on any single ack — the planted quorum bug.

    A split (or an asymmetric cut into the would-be grantee) during an
    election step leaves two requesters each collecting an ack on their
    own side, and both "win": two concurrent leaseholders, double
    writes.  ddmin shrinks the fuzzer's finding to the one atom that
    split the election.
    """

    name = "lease-no-quorum-bug"
    expect_violation = True
    BUGGY = True


# ---------------------------------------------------------------------------
# Heartbeat failure detectors
# ---------------------------------------------------------------------------


class HeartbeatDetectorTarget(ChaosTarget):
    """The adaptive heartbeat detector under partitions — healthy.

    Partition atoms are confined below ``STABLE_AFTER``, so the network
    is quiet for the rest of the horizon; adaptive timeouts then
    guarantee suspicion of live peers dies out, crashed peers stay
    suspected (completeness), and every live process settles on the
    minimum live pid as leader well before the stability window.
    """

    name = "detector-heartbeat"
    substrate = "failure-detector"
    expect_violation = False

    N = 4
    HORIZON = 40
    STABLE_AFTER = 16
    WINDOW = 8
    ADAPTIVE = True
    INITIAL_TIMEOUT = 4

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_partition_atoms(
            rng, n=self.N, horizon=self.STABLE_AFTER, max_down=1
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_heartbeat_detector(
            atoms,
            seed=0,
            n=self.N,
            horizon=self.HORIZON,
            adaptive=self.ADAPTIVE,
            initial_timeout=self.INITIAL_TIMEOUT,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        crashed = {atom[2] for atom in atoms if atom[0] == "down"}
        live = [p for p in range(self.N) if p not in crashed]
        return [
            LeaderStabilityMonitor(live, self.HORIZON, window=self.WINDOW)
        ]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.simplify_partition_atom(atom)


class UnstableDetectorTarget(HeartbeatDetectorTarget):
    """A detector that never stabilizes — the planted timeout bug.

    Adaptation off and a timeout below the heartbeat interval: every
    arrival re-trusts a peer the very next step re-suspects, so every
    non-minimum process's leader flaps for the whole run.  The monitor
    fires on every seed — including the empty schedule, which is exactly
    what the shrinker reduces each finding to.
    """

    name = "detector-unstable-bug"
    expect_violation = True
    ADAPTIVE = False
    INITIAL_TIMEOUT = 0


# ---------------------------------------------------------------------------
# Rotating-coordinator consensus: both sides of the FLP circumvention
# ---------------------------------------------------------------------------


class OmegaConsensusTarget(ChaosTarget):
    """Rotating consensus under eventually-accurate suspicion — healthy.

    Suspicion atoms are confined below ``ACCURATE_AFTER`` rounds; the
    first clean round's coordinator collects a full quorum and decides,
    so termination (with agreement and validity) holds on every seed —
    the possible side of the circumvention the detector buys.
    """

    name = "omega-rotating-consensus"
    substrate = "rotating-consensus"
    expect_violation = False

    N = 3
    INPUTS = (0, 1, 1)
    ACCURATE_AFTER = 6
    MAX_ROUNDS = 64

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_suspicion_atoms(
            rng, n=self.N, accurate_after=self.ACCURATE_AFTER
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_rotating_consensus(
            atoms,
            seed=0,
            inputs=self.INPUTS,
            max_rounds=self.MAX_ROUNDS,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        honest = range(self.N)
        inputs = dict(enumerate(self.INPUTS))
        return [
            AgreementMonitor(honest),
            ValidityMonitor(inputs, honest, trusted=honest),
            TerminationMonitor(honest),
        ]


class AdversarialSuspicionTarget(OmegaConsensusTarget):
    """Rotating consensus under relentless suspicion — expected to stall.

    A full relentless coalition nacks every coordinator forever, so no
    round collects a quorum: the run burns its own step budget and exits
    via a structured ``BudgetExceeded`` — never via an agreement or
    validity violation, which is the safety half of the circumvention
    claim.  Sub-coalition schedules decide as soon as rotation reaches a
    coordinator outside the coalition, so the same target also exercises
    the recovery path.
    """

    name = "rotating-consensus-adversarial"
    expect_violation = False
    expect_stall = True

    #: Enough for 40 of the 64 possible rounds: a relentless run trips
    #: this cap (the receipt), a deciding run never gets close.
    STALL_BUDGET = Budget(max_steps=120)

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_relentless_atoms(rng, n=self.N)

    def run(self, atoms, seed, meter=None) -> Trace:
        own = self.STALL_BUDGET.meter(self.name)
        return run_rotating_consensus(
            atoms,
            seed=0,
            inputs=self.INPUTS,
            max_rounds=self.MAX_ROUNDS,
            meter=TandemMeter(meter, own),
        ).trace


# ---------------------------------------------------------------------------
# Ben-Or randomized consensus: FLP circumvented with coins
# ---------------------------------------------------------------------------


class BenOrTarget(ChaosTarget):
    """Honest Ben-Or under delivery scripts and crashes — healthy.

    Safety is coin-independent: agreement and validity hold under every
    delivery script and every ``<= t`` crash plan, which is what the
    monitors assert.  Termination is only probability-1, so it is *not*
    a per-schedule monitor here — the expected-round sweep
    (:func:`repro.circumvention.randomized.expected_rounds`) owns the
    statistical termination gate.
    """

    name = "benor-consensus"
    substrate = "benor-consensus"
    expect_violation = False

    N = 4
    T = 1
    INPUTS = (0, 1, 0, 1)
    BIASED = False
    MAX_EVENTS = 4000

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_benor_atoms(rng, n=self.N, t=self.T)

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_ben_or_traced(
            atoms,
            seed=0,
            n=self.N,
            t=self.T,
            inputs=self.INPUTS,
            biased_coin=self.BIASED,
            max_events=self.MAX_EVENTS,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        crashed = generators.benor_adversary(atoms, self.T).crash_at
        honest = [p for p in range(self.N) if p not in crashed]
        inputs = dict(enumerate(self.INPUTS))
        checks: List[TraceMonitor] = [
            AgreementMonitor(honest),
            ValidityMonitor(inputs, honest, trusted=honest),
        ]
        if self.BIASED:
            checks.append(TerminationMonitor(honest))
        return checks


class BiasedCoinBenOrTarget(BenOrTarget):
    """Ben-Or with an anti-correlated "coin" — the planted bug.

    A literally biased coin cannot break Ben-Or's safety (the safety
    argument never mentions the coin), so the planted bug is the sharper
    failure randomization actually guards against: each process's coin
    is its own parity, ``pid % 2``.  On perfectly split inputs the
    report round then re-creates the split every phase — no strict
    majority, every proposal is ``?``, the "coin" restores the split —
    and the run never terminates, under *every* schedule including the
    empty one, which is exactly where ddmin shrinks each finding.  The
    termination monitor fires on every seed; agreement and validity
    still never do.
    """

    name = "benor-biased-coin-bug"
    expect_violation = True
    BIASED = True
    #: never terminates — cap the events so each case stays cheap
    MAX_EVENTS = 400


# ---------------------------------------------------------------------------
# DLS consensus under partial synchrony: GST atoms, provable stalls
# ---------------------------------------------------------------------------


class GSTConsensusTarget(ChaosTarget):
    """DLS rotating-coordinator consensus under GST schedules.

    Safety holds under *every* delay schedule (quorum intersection plus
    locks), which agreement/validity monitors assert on each completed
    run.  Liveness is exactly the synchrony assumption: a schedule whose
    ``("gst", g)`` lands beyond what the stall budget can reach, behind
    a pre-GST blackout, exhausts its own step budget and exits via a
    structured ``BudgetExceeded`` — the DLS impossibility half, as a
    first-class corpus behaviour (``expect_stall``).  Early-GST and
    lossy schedules decide and exercise the recovery half.
    """

    name = "gst-consensus"
    substrate = "gst-consensus"
    expect_violation = False
    expect_stall = True

    N = 4
    T = 1
    INPUTS = (0, 1, 1, 0)
    MAX_ROUNDS = 64

    #: 20 rounds of 4 steps: a blackout whose GST lies past round 20
    #: trips this cap (the receipt); an early-GST run never gets close.
    STALL_BUDGET = Budget(max_steps=80)

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_gst_atoms(rng, n=self.N)

    def run(self, atoms, seed, meter=None) -> Trace:
        own = self.STALL_BUDGET.meter(self.name)
        return run_gst_consensus(
            atoms,
            seed=0,
            inputs=self.INPUTS,
            t=self.T,
            max_rounds=self.MAX_ROUNDS,
            meter=TandemMeter(meter, own),
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        crashed = generators.gst_adversary(atoms, self.N, self.T).crashed_at
        honest = [p for p in range(self.N) if p not in crashed]
        inputs = dict(enumerate(self.INPUTS))
        return [
            AgreementMonitor(honest),
            ValidityMonitor(inputs, honest, trusted=honest),
        ]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.simplify_gst_atom(atom)


def circumvention_targets() -> List[ChaosTarget]:
    """The circumvention roster: honest/planted pairs plus two stalls."""
    return [
        QuorumLeaseTarget(),
        BuggyLeaseTarget(),
        HeartbeatDetectorTarget(),
        UnstableDetectorTarget(),
        OmegaConsensusTarget(),
        AdversarialSuspicionTarget(),
        BenOrTarget(),
        BiasedCoinBenOrTarget(),
        GSTConsensusTarget(),
    ]
