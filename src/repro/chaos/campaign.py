"""The chaos campaign runner: fuzz, classify, shrink, replay, report.

A campaign is a *fold over a stream of case outcomes* — one pipeline at
any scale and any worker count:

* a **planner** generates case coordinates lazily in serial order
  (target by target, index ascending), charging the campaign budget as
  it goes; every case's seed is ``derive_seed(master_seed, target.name,
  index)``, so any single case replays from ``(master_seed, target,
  index)`` alone;
* cases execute through :meth:`~repro.parallel.pool.WorkerPool.
  map_stream` — a bounded in-flight window that yields ``(case,
  outcome)`` pairs in submission order, so at most a few chunks of
  cases exist at once whether ``workers`` is 1 or 16;
* the parent folds each outcome into a :class:`CampaignFold`: verdict
  tallies, behavioural coverage (trace fingerprints), novel-coverage
  schedules into an optional :class:`~repro.chaos.corpus.ScheduleCorpus`,
  and shrunk counterexample *exemplars* deduplicated by shrunk-trace
  fingerprint — never the full result list unless asked
  (``keep_results=True``, the default for test-sized campaigns).

Memory is therefore bounded by *behaviours found*, not cases run:
``python -m repro.chaos --cases 1000000 --corpus DIR`` holds tallies, a
fingerprint set and a handful of exemplars.  Determinism is by
construction: the fold consumes outcomes in the exact serial order at
every worker count, so reports, summaries and artifacts are
byte-identical from ``workers=1`` to ``workers=N`` and from batch to
streaming mode.

Violating schedules are delta-debugged
(:func:`~repro.chaos.shrink.shrink_schedule`) to 1-minimal
counterexamples, re-executed, and re-verified byte-identical through
:func:`repro.core.runtime.replay`.  An optional campaign-wide budget
turns the sweep into a resumable anytime computation: overdraft returns
a partial report with ``complete=False`` and per-target ``resume_at``
indices, accepted back via ``resume=`` to continue exactly where it
stopped.  After the base sweep, an optional **mutation stage**
re-expands every corpus schedule through seeded mutation operators
(:func:`~repro.chaos.generators.mutate_schedule`), chasing behaviours
near the ones already found.

Counterexamples serialize to single-file JSONL artifacts (metadata line
plus the shrunk run's trace, streamed through
:class:`~repro.core.artifacts.AtomicLineWriter`) and :func:`reproduce`
re-derives and re-verifies one from its file alone; ``case_log=`` adds
an incremental per-case JSONL artifact written the same atomic way.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.artifacts import AtomicLineWriter
from ..core.budget import Budget, BudgetExceeded
from ..core.runtime import (
    ReplayError,
    Trace,
    _decode_value,
    _encode_value,
    derive_seed,
    replay,
)
from ..parallel.pool import WorkerPool, resolve_workers
from .corpus import (
    CorpusEntry,
    CoverageMap,
    ScheduleCorpus,
    stall_fingerprint,
)
from .generators import mutate_schedule
from .monitors import Violation
from .shrink import shrink_schedule
from .targets import ChaosTarget, default_targets, target_registry

PASS = "PASS"
VIOLATION = "VIOLATION"
BUDGET_EXCEEDED = "BUDGET_EXCEEDED"
CRASH = "CRASH"

ARTIFACT_SCHEMA = "repro-chaos-counterexample/v1"
REPORT_SCHEMA = "repro-chaos-report/v2"
CASE_LOG_SCHEMA = "repro-chaos-case-log/v1"

DEFAULT_PER_RUN_BUDGET = Budget(max_steps=20_000)

#: Cases per worker submission in streaming mode — with the default
#: window of ``2 * workers`` chunks, at most ``32 * workers`` cases are
#: in flight regardless of campaign size.
STREAM_CHUNK = 16


@dataclass(frozen=True)
class CaseResult:
    """The structured verdict of one fuzzed run.

    ``fingerprint`` is the executed trace's fingerprint — the
    behavioural-coverage signal — empty when no trace was produced
    (CRASH, BUDGET_EXCEEDED).
    """

    target: str
    index: int
    seed: int
    verdict: str
    violations: Tuple[Violation, ...] = ()
    error: str = ""
    fingerprint: str = ""


@dataclass
class Counterexample:
    """A shrunk, replay-verified failure with its reproduction coordinates.

    One counterexample is an *exemplar*: ``occurrences`` counts how many
    violating cases collapsed onto it (same shrunk-trace fingerprint),
    so a planted bug found 40 times reports as one exemplar x40, not 40
    near-identical entries.
    """

    target: str
    index: int
    seed: int
    atoms: Tuple
    shrunk: Tuple
    violation: Violation
    trace: Trace = field(repr=False)
    fingerprint: str = ""
    shrink_checks: int = 0
    replay_verified: bool = False
    occurrences: int = 1


@dataclass
class CampaignReport:
    """Everything one campaign produced; feed back as ``resume=`` to extend.

    ``results`` is the full per-case list in batch mode and ``None`` in
    streaming mode (``keep_results=False``); everything else — tallies,
    coverage, exemplars, summary — is identical either way, because the
    fold maintains it incrementally in both.  ``throughput`` is
    wall-clock derived and excluded from comparisons and store payloads.
    """

    master_seed: int
    runs: int
    results: Optional[List[CaseResult]] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    complete: bool = True
    resume_at: Dict[str, int] = field(default_factory=dict)
    tallies: Dict[str, Dict[str, int]] = field(default_factory=dict)
    coverage: Dict[str, int] = field(default_factory=dict)
    cases: int = 0
    corpus_added: int = 0
    throughput: Dict[str, float] = field(default_factory=dict, compare=False)

    def verdict_counts(self) -> Dict[str, Dict[str, int]]:
        if self.tallies:
            return {name: dict(per) for name, per in self.tallies.items()}
        counts: Dict[str, Dict[str, int]] = {}
        for result in self.results or ():
            per_target = counts.setdefault(result.target, {})
            per_target[result.verdict] = per_target.get(result.verdict, 0) + 1
        return counts

    def counterexamples_for(self, target: str) -> List[Counterexample]:
        return [cx for cx in self.counterexamples if cx.target == target]

    def dedup_stats(self) -> Dict[str, Dict[str, int]]:
        """Violation dedup by shrunk-counterexample fingerprint, per target.

        Many violating cases are the *same bug* wearing different random
        schedules: after delta-debugging they collapse onto a handful of
        1-minimal traces.  Deduplication therefore keys on the shrunk
        trace's fingerprint — the bug's canonical form — not on the raw
        outcome signature, which over-counts cosmetic variation in the
        unshrunk runs.  ``violations`` is the number of violating cases
        folded onto each target's exemplars, ``exemplars`` how many
        distinct shrunk fingerprints survived.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for cx in self.counterexamples:
            per = stats.setdefault(
                cx.target, {"violations": 0, "exemplars": 0}
            )
            per["violations"] += cx.occurrences
            per["exemplars"] += 1
        return stats

    def failures(
        self, targets: Optional[Iterable[ChaosTarget]] = None
    ) -> List[str]:
        """Why this campaign fails CI (empty list = healthy).

        A planted-bug target that produced no violation means the fuzzer
        lost its prey; a healthy target with a violation or crash means
        the engine (or a simulator) produced a false positive.
        """
        registry = target_registry(targets)
        counts = self.verdict_counts()
        problems = []
        for name, target in registry.items():
            per_target = counts.get(name, {})
            if getattr(target, "expect_stall", False):
                if not per_target.get(BUDGET_EXCEEDED):
                    problems.append(
                        f"{name}: adversarial-stall target never exhausted "
                        f"its budget (verdicts: {per_target or 'none'})"
                    )
                for bad in (VIOLATION, CRASH):
                    if per_target.get(bad):
                        problems.append(
                            f"{name}: stall target produced "
                            f"{per_target[bad]} {bad} verdict(s) — it must "
                            "sacrifice liveness, never safety"
                        )
            elif target.expect_violation:
                if not per_target.get(VIOLATION):
                    problems.append(
                        f"{name}: planted bug never tripped a monitor "
                        f"(verdicts: {per_target or 'none'})"
                    )
            else:
                for bad in (VIOLATION, CRASH):
                    if per_target.get(bad):
                        problems.append(
                            f"{name}: healthy target produced "
                            f"{per_target[bad]} {bad} verdict(s)"
                        )
        return problems

    def summary(
        self, targets: Optional[Iterable[ChaosTarget]] = None
    ) -> str:
        registry = target_registry(targets)
        counts = self.verdict_counts()
        lines = [
            f"chaos campaign: master_seed={self.master_seed} "
            f"runs/target={self.runs} complete={self.complete}"
        ]
        for name in sorted(set(counts) | set(registry)):
            per_target = counts.get(name, {})
            tally = " ".join(
                f"{verdict}={per_target[verdict]}"
                for verdict in (PASS, VIOLATION, BUDGET_EXCEEDED, CRASH)
                if per_target.get(verdict)
            ) or "no runs"
            if name in registry and getattr(
                registry[name], "expect_stall", False
            ):
                expectation = "expects stall"
            elif name in registry and registry[name].expect_violation:
                expectation = "expects violation"
            else:
                expectation = "healthy"
            lines.append(f"  {name} ({expectation}): {tally}")
        if self.coverage:
            lines.append(
                f"  coverage: {sum(self.coverage.values())} distinct traces "
                f"over {self.cases} cases"
            )
        dedup = self.dedup_stats()
        if dedup:
            violations = sum(d["violations"] for d in dedup.values())
            exemplars = sum(d["exemplars"] for d in dedup.values())
            lines.append(
                f"  violation dedup: {violations} violating runs -> "
                f"{exemplars} shrunk exemplars"
            )
        for cx in self.counterexamples:
            lines.append(
                f"  counterexample {cx.target}: seed={cx.seed} "
                f"|schedule| {len(cx.atoms)} -> {len(cx.shrunk)} "
                f"[{cx.violation.monitor}] fingerprint={cx.fingerprint[:16]} "
                f"replay={'ok' if cx.replay_verified else 'DIVERGED'} "
                f"x{cx.occurrences}"
            )
        if not self.complete:
            lines.append(
                "  budget exhausted; resume from "
                + ", ".join(
                    f"{name}@{index}"
                    for name, index in sorted(self.resume_at.items())
                    if index < self.runs
                )
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Case execution (worker side)
# ---------------------------------------------------------------------------

#: One planned case: everything a worker needs to execute it from
#: scratch.  ``atoms`` is None for base cases (the worker re-derives the
#: schedule from the seed) and explicit for mutation-stage cases.
PlanItem = Tuple[ChaosTarget, int, int, Optional[Tuple], Optional[Budget]]


def _case_atoms(item: PlanItem) -> Tuple:
    """The schedule a plan item runs — re-derived or carried."""
    target, _index, seed, atoms, _budget = item
    if atoms is not None:
        return atoms
    return tuple(target.generate(random.Random(seed)))


def _execute_case(item: PlanItem) -> CaseResult:
    """Run one planned case; classification only, no shrinking.

    Pure function of the plan item — safe to run in any process, in any
    order.  Shrinking stays in the parent fold so counterexample
    artifacts are byte-identical at every worker count.
    """
    target, index, seed, _atoms, per_run_budget = item
    atoms = _case_atoms(item)
    meter = (
        per_run_budget.meter(f"{target.name}#{index}")
        if per_run_budget is not None
        else None
    )
    try:
        trace = target.run(atoms, seed, meter=meter)
    except BudgetExceeded as exc:
        # An expect-stall target's budget receipt is a first-class
        # behaviour: give it the synthetic schedule-digest fingerprint so
        # the fold can persist it to the corpus and replay can demand the
        # stall reproduce.  Unexpected overdrafts stay fingerprint-less.
        fingerprint = (
            stall_fingerprint(atoms)
            if getattr(target, "expect_stall", False)
            else ""
        )
        return CaseResult(
            target.name, index, seed, BUDGET_EXCEEDED,
            error=str(exc), fingerprint=fingerprint,
        )
    except Exception as exc:
        # Fault isolation: one broken run is a verdict, not a campaign abort.
        return CaseResult(target.name, index, seed, CRASH, error=repr(exc))
    violations = tuple(target.violations(trace, atoms))
    verdict = VIOLATION if violations else PASS
    return CaseResult(
        target.name,
        index,
        seed,
        verdict,
        violations=violations,
        fingerprint=trace.fingerprint(),
    )


def _shrink_case(
    target: ChaosTarget,
    atoms: Tuple,
    seed: int,
    index: int,
    per_run_budget: Optional[Budget],
    shrink_checks: int,
) -> Counterexample:
    """Minimize one violating schedule and re-verify the result."""

    def fails(candidate: Tuple) -> bool:
        meter = (
            per_run_budget.meter(f"{target.name}-shrink")
            if per_run_budget is not None
            else None
        )
        try:
            trace = target.run(tuple(candidate), seed, meter=meter)
        except Exception:
            # A crash or budget overdraft is a *different* failure mode;
            # the shrinker must stay on the monitored violation.
            return False
        return bool(target.violations(trace, tuple(candidate)))

    shrunk, checks = shrink_schedule(
        atoms, fails, target.simplify_atom, max_checks=shrink_checks
    )
    trace = target.run(shrunk, seed)
    violation = target.violations(trace, shrunk)[0]
    try:
        replay(trace)
        verified = True
    except ReplayError:
        verified = False
    return Counterexample(
        target=target.name,
        index=index,
        seed=seed,
        atoms=tuple(atoms),
        shrunk=tuple(shrunk),
        violation=violation,
        trace=trace,
        fingerprint=trace.fingerprint(),
        shrink_checks=checks,
        replay_verified=verified,
    )


# ---------------------------------------------------------------------------
# The fold (parent side)
# ---------------------------------------------------------------------------


class CampaignFold:
    """The constant-memory accumulator a streaming campaign folds into.

    Consumes ``(plan item, CaseResult)`` pairs in serial order and
    maintains:

    * per-target verdict **tallies** (what the report and summary read);
    * a behavioural **coverage** map of trace fingerprints, sized by
      distinct behaviours, not cases;
    * optional **corpus** persistence of every novel-coverage schedule;
    * shrunk counterexample **exemplars**, deduplicated two ways: a raw
      outcome-signature cache short-circuits re-shrinking cases whose
      ``(verdict, violations, error)`` was already minimized, and the
      shrunk-trace fingerprint merges distinct raw outcomes that
      minimize to the same bug (``occurrences`` counts both);
    * optionally the full **results** list (batch mode) and an
      incremental per-case JSONL **log**.

    Everything here is a pure function of the fold order, which the
    planner fixes to the serial iteration order at any worker count.
    """

    def __init__(
        self,
        shrink: bool,
        shrink_checks: int,
        per_run_budget: Optional[Budget],
        keep_results: bool = True,
        corpus: Optional[ScheduleCorpus] = None,
        case_log: Optional[AtomicLineWriter] = None,
        resume: Optional[CampaignReport] = None,
    ):
        self.shrink = shrink
        self.shrink_checks = shrink_checks
        self.per_run_budget = per_run_budget
        self.corpus = corpus
        self.case_log = case_log
        self.results: Optional[List[CaseResult]] = None
        if keep_results:
            self.results = (
                list(resume.results)
                if resume is not None and resume.results is not None
                else []
            )
        self.tallies: Dict[str, Dict[str, int]] = {}
        self.counterexamples: List[Counterexample] = []
        self.coverage = CoverageMap()
        self.cases = 0
        self.corpus_added = 0
        self._exemplars: Dict[Tuple[str, str], Counterexample] = {}
        self._sig_cache: Dict[Tuple, Counterexample] = {}
        self._meter = Budget().meter("chaos-campaign-throughput")
        if resume is not None:
            self.tallies = {
                name: dict(per) for name, per in resume.tallies.items()
            }
            self.counterexamples = list(resume.counterexamples)
            self.cases = resume.cases
            for cx in self.counterexamples:
                self._exemplars[(cx.target, cx.fingerprint)] = cx
        if corpus is not None:
            # A campaign resumed against an existing corpus chases only
            # behaviours the corpus has not seen.
            corpus.seed_coverage(self.coverage)

    def fold(self, item: PlanItem, result: CaseResult) -> None:
        target = item[0]
        self.cases += 1
        self._meter.charge_steps()
        per_target = self.tallies.setdefault(result.target, {})
        per_target[result.verdict] = per_target.get(result.verdict, 0) + 1
        if self.results is not None:
            self.results.append(result)
        if self.case_log is not None:
            self.case_log.write_json_line(_case_log_line(result))
        novel = bool(result.fingerprint) and self.coverage.observe(
            result.target, result.fingerprint
        )
        if novel and self.corpus is not None:
            if self.corpus.add(
                CorpusEntry(
                    target=result.target,
                    trace_fingerprint=result.fingerprint,
                    atoms=_case_atoms(item),
                    seed=result.seed,
                    verdict=result.verdict,
                )
            ):
                self.corpus_added += 1
        if result.verdict == VIOLATION and self.shrink:
            self._fold_violation(target, item, result)

    def _fold_violation(
        self, target: ChaosTarget, item: PlanItem, result: CaseResult
    ) -> None:
        signature = (
            result.target, result.verdict, result.violations, result.error,
        )
        known = self._sig_cache.get(signature)
        if known is not None:
            known.occurrences += 1
            return
        cx = _shrink_case(
            target,
            _case_atoms(item),
            result.seed,
            result.index,
            self.per_run_budget,
            self.shrink_checks,
        )
        exemplar = self._exemplars.get((cx.target, cx.fingerprint))
        if exemplar is not None:
            # A different raw outcome that minimizes to a known bug.
            exemplar.occurrences += 1
            self._sig_cache[signature] = exemplar
            return
        self._exemplars[(cx.target, cx.fingerprint)] = cx
        self._sig_cache[signature] = cx
        self.counterexamples.append(cx)

    def throughput(self) -> Dict[str, float]:
        spent = self._meter.throughput()
        return {
            "cases_per_s": spent["steps_per_s"],
            "seconds": spent["seconds"],
        }


def _case_log_line(result: CaseResult) -> Dict:
    return {
        "target": result.target,
        "index": result.index,
        "seed": result.seed,
        "verdict": result.verdict,
        "fingerprint": result.fingerprint,
        "error": result.error,
        "violations": [_violation_to_payload(v) for v in result.violations],
    }


# ---------------------------------------------------------------------------
# Planning (parent side)
# ---------------------------------------------------------------------------


def _plan_cases(
    roster: List[ChaosTarget],
    runs: int,
    master_seed: int,
    start_at: Dict[str, int],
    per_run_budget: Optional[Budget],
    campaign_meter,
    state: Dict,
) -> Iterator[PlanItem]:
    """Yield base cases lazily in serial order, charging the budget.

    ``state`` receives ``resume_at`` per finished target and
    ``interrupted`` on overdraft — exactly the bookkeeping the batch
    runner did eagerly, now performed as the stream is pulled.
    """
    for target in roster:
        index = start_at.get(target.name, 0)
        while index < runs:
            if campaign_meter is not None:
                try:
                    campaign_meter.charge_steps()
                except BudgetExceeded:
                    state["interrupted"] = True
                    state["resume_at"][target.name] = index
                    return
            yield (
                target,
                index,
                derive_seed(master_seed, target.name, index),
                None,
                per_run_budget,
            )
            index += 1
        state["resume_at"][target.name] = index


def _plan_mutations(
    roster: List[ChaosTarget],
    corpus: ScheduleCorpus,
    runs: int,
    mutations: int,
    master_seed: int,
    per_run_budget: Optional[Budget],
    campaign_meter,
) -> Iterator[PlanItem]:
    """Yield mutation cases: each corpus schedule, mutated ``mutations``
    times through :func:`~repro.chaos.generators.mutate_schedule`.

    Runs strictly after the base sweep, so the corpus content — and
    hence this plan — is a deterministic function of the base fold at
    any worker count.  Mutation indices continue past ``runs`` per
    target, keeping ``derive_seed`` coordinates disjoint from base
    cases.  The campaign budget also bounds this stage; overdraft ends
    it early (the corpus keeps what the base sweep added).
    """
    registry = {target.name: target for target in roster}
    cursors = {name: runs for name in registry}
    for entry in corpus.entries():
        target = registry.get(entry.target)
        if target is None:
            continue
        for _ in range(mutations):
            index = cursors[entry.target]
            cursors[entry.target] = index + 1
            if campaign_meter is not None:
                try:
                    campaign_meter.charge_steps()
                except BudgetExceeded:
                    return
            seed = derive_seed(master_seed, entry.target, index)
            atoms = tuple(
                mutate_schedule(random.Random(seed), entry.atoms,
                                target.generate)
            )
            yield (target, index, seed, atoms, per_run_budget)


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------


def run_campaign(
    targets: Optional[Iterable[ChaosTarget]] = None,
    runs: int = 40,
    master_seed: int = 0,
    per_run_budget: Optional[Budget] = DEFAULT_PER_RUN_BUDGET,
    shrink: bool = True,
    shrink_checks: int = 256,
    budget: Optional[Budget] = None,
    resume: Optional[CampaignReport] = None,
    workers=1,
    keep_results: bool = True,
    corpus: Optional[Union[str, ScheduleCorpus]] = None,
    mutations: int = 0,
    case_log: Optional[str] = None,
) -> CampaignReport:
    """Fuzz every target ``runs`` times; shrink and verify what breaks.

    One streaming pipeline serves every configuration: the planner
    generates cases in serial order, ``map_stream`` executes them with a
    bounded in-flight window, and the parent folds outcomes in that same
    order — so reports, summaries and artifacts are byte-identical at
    any ``workers`` count and whether or not results are kept.

    ``keep_results=False`` is streaming mode: the report's ``results``
    is None and memory is bounded by behaviours found, not by ``runs``.
    ``corpus`` (a directory path or :class:`ScheduleCorpus`) persists
    every novel-coverage schedule; ``mutations=k`` then re-expands each
    corpus schedule k times through seeded mutation operators after the
    base sweep.  ``case_log`` streams one JSON line per case to the
    given path through an atomic incremental writer.

    ``budget`` (one step charged per case) bounds the whole campaign; on
    overdraft the report comes back with ``complete=False`` and
    ``resume_at`` marking the first unexecuted case per target — pass
    the report back as ``resume`` to continue.  ``per_run_budget``
    bounds each individual run; overdrafts there are BUDGET_EXCEEDED
    verdicts, not campaign aborts.
    """
    roster = list(targets) if targets is not None else default_targets()
    nworkers = resolve_workers(workers)
    corpus_obj: Optional[ScheduleCorpus]
    corpus_obj = ScheduleCorpus(corpus) if isinstance(corpus, str) else corpus
    campaign_meter = (
        budget.meter("chaos-campaign") if budget is not None else None
    )
    start_at = {
        target.name: (
            resume.resume_at.get(target.name, 0) if resume is not None else 0
        )
        for target in roster
    }
    state: Dict = {"interrupted": False, "resume_at": {}}
    log_writer = AtomicLineWriter(case_log) if case_log is not None else None
    try:
        if log_writer is not None:
            log_writer.write_json_line(
                {
                    "schema": CASE_LOG_SCHEMA,
                    "master_seed": master_seed,
                    "runs": runs,
                }
            )
        fold = CampaignFold(
            shrink=shrink,
            shrink_checks=shrink_checks,
            per_run_budget=per_run_budget,
            keep_results=keep_results,
            corpus=corpus_obj,
            case_log=log_writer,
            resume=resume,
        )
        chunk = STREAM_CHUNK if nworkers > 1 else 1
        with WorkerPool(nworkers) as pool:
            plan = _plan_cases(
                roster, runs, master_seed, start_at, per_run_budget,
                campaign_meter, state,
            )
            for item, result in pool.map_stream(
                _execute_case, plan, chunk=chunk
            ):
                fold.fold(item, result)
            if (
                corpus_obj is not None
                and mutations > 0
                and not state["interrupted"]
            ):
                mutation_plan = _plan_mutations(
                    roster, corpus_obj, runs, mutations, master_seed,
                    per_run_budget, campaign_meter,
                )
                for item, result in pool.map_stream(
                    _execute_case, mutation_plan, chunk=chunk
                ):
                    fold.fold(item, result)
        if state["interrupted"]:
            for target in roster:
                state["resume_at"].setdefault(
                    target.name, start_at[target.name]
                )
        if log_writer is not None:
            log_writer.commit()
            log_writer = None
    except BaseException:
        if log_writer is not None:
            log_writer.discard()
        raise
    return CampaignReport(
        master_seed=master_seed,
        runs=runs,
        results=fold.results,
        counterexamples=fold.counterexamples,
        complete=not state["interrupted"],
        resume_at=dict(state["resume_at"]),
        tallies=fold.tallies,
        coverage=fold.coverage.counts(),
        cases=fold.cases,
        corpus_added=fold.corpus_added,
        throughput=fold.throughput(),
    )


# ---------------------------------------------------------------------------
# Store payloads
# ---------------------------------------------------------------------------


def _violation_to_payload(violation: Violation) -> Dict:
    return {
        "monitor": violation.monitor,
        "description": violation.description,
        "step": violation.step,
    }


def _violation_from_payload(payload: Dict) -> Violation:
    return Violation(
        monitor=payload["monitor"],
        description=payload["description"],
        step=payload["step"],
    )


def report_to_payload(report: CampaignReport) -> Dict:
    """A JSON-native form of a whole campaign, for the certificate store.

    Everything needed to reconstruct the report exactly is embedded:
    case verdicts field by field (or ``None`` in streaming mode), the
    incremental tallies and coverage, and counterexamples with their
    original and shrunk schedules through the tagged value encoding,
    each shrunk trace as its own (fingerprint-carrying) JSONL document —
    so a report pulled back out of the store writes byte-identical
    counterexample artifacts to the campaign that produced it.
    ``throughput`` is deliberately absent: it is wall-clock noise, and
    store entries must be byte-stable across runs.
    """
    return {
        "schema": REPORT_SCHEMA,
        "master_seed": report.master_seed,
        "runs": report.runs,
        "complete": report.complete,
        "resume_at": dict(report.resume_at),
        "tallies": {
            name: dict(per) for name, per in sorted(report.tallies.items())
        },
        "coverage": dict(sorted(report.coverage.items())),
        "cases": report.cases,
        "corpus_added": report.corpus_added,
        "results": None if report.results is None else [
            {
                "target": r.target,
                "index": r.index,
                "seed": r.seed,
                "verdict": r.verdict,
                "violations": [
                    _violation_to_payload(v) for v in r.violations
                ],
                "error": r.error,
                "fingerprint": r.fingerprint,
            }
            for r in report.results
        ],
        "counterexamples": [
            {
                "target": cx.target,
                "index": cx.index,
                "seed": cx.seed,
                "atoms": _encode_value(tuple(cx.atoms)),
                "shrunk": _encode_value(tuple(cx.shrunk)),
                "violation": _violation_to_payload(cx.violation),
                "fingerprint": cx.fingerprint,
                "shrink_checks": cx.shrink_checks,
                "replay_verified": cx.replay_verified,
                "occurrences": cx.occurrences,
                "trace": cx.trace.to_jsonl(),
            }
            for cx in report.counterexamples
        ],
    }


def report_from_payload(payload: Dict) -> CampaignReport:
    """Invert :func:`report_to_payload`.

    Each embedded trace reloads through :meth:`Trace.from_jsonl`, which
    re-verifies its fingerprint — a tampered trace raises rather than
    producing a counterexample that never happened.
    """
    if payload.get("schema") != REPORT_SCHEMA:
        raise ReplayError(
            f"unknown campaign report schema {payload.get('schema')!r} "
            f"(expected {REPORT_SCHEMA!r})"
        )
    results = None if payload["results"] is None else [
        CaseResult(
            target=r["target"],
            index=r["index"],
            seed=r["seed"],
            verdict=r["verdict"],
            violations=tuple(
                _violation_from_payload(v) for v in r["violations"]
            ),
            error=r["error"],
            fingerprint=r.get("fingerprint", ""),
        )
        for r in payload["results"]
    ]
    counterexamples = []
    for c in payload["counterexamples"]:
        trace = Trace.from_jsonl(c["trace"])
        if trace.fingerprint() != c["fingerprint"]:
            raise ReplayError(
                f"counterexample for {c['target']!r} carries fingerprint "
                f"{c['fingerprint']}, its trace reloads as "
                f"{trace.fingerprint()}"
            )
        counterexamples.append(
            Counterexample(
                target=c["target"],
                index=c["index"],
                seed=c["seed"],
                atoms=tuple(_decode_value(c["atoms"])),
                shrunk=tuple(_decode_value(c["shrunk"])),
                violation=_violation_from_payload(c["violation"]),
                trace=trace,
                fingerprint=c["fingerprint"],
                shrink_checks=c["shrink_checks"],
                replay_verified=c["replay_verified"],
                occurrences=c.get("occurrences", 1),
            )
        )
    return CampaignReport(
        master_seed=payload["master_seed"],
        runs=payload["runs"],
        results=results,
        counterexamples=counterexamples,
        complete=payload["complete"],
        resume_at=dict(payload["resume_at"]),
        tallies={
            name: dict(per) for name, per in payload.get("tallies", {}).items()
        },
        coverage=dict(payload.get("coverage", {})),
        cases=payload.get("cases", 0),
        corpus_added=payload.get("corpus_added", 0),
    )


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------


def write_counterexample(cx: Counterexample, directory: str) -> str:
    """Save one counterexample as a self-contained JSONL artifact.

    Line 1 is campaign metadata (target, seed, original and shrunk
    schedules, the violated property, the trace fingerprint); the rest is
    the shrunk run's trace via :meth:`~repro.core.runtime.Trace.to_jsonl`.
    Written through :class:`~repro.core.artifacts.AtomicLineWriter`, so a
    campaign killed mid-write never leaves a truncated artifact that
    later "reproduces" as a corrupt counterexample.
    """
    os.makedirs(directory, exist_ok=True)
    meta = {
        "schema": ARTIFACT_SCHEMA,
        "target": cx.target,
        "index": cx.index,
        "seed": cx.seed,
        "atoms": _encode_value(tuple(cx.atoms)),
        "shrunk": _encode_value(tuple(cx.shrunk)),
        "violation": {
            "monitor": cx.violation.monitor,
            "description": cx.violation.description,
        },
        "fingerprint": cx.fingerprint,
        "replay_verified": cx.replay_verified,
    }
    path = os.path.join(directory, f"{cx.target}-{cx.seed}.jsonl")
    with AtomicLineWriter(path) as writer:
        writer.write_line(json.dumps(meta, sort_keys=True))
        writer.write(cx.trace.to_jsonl())
    return path


def write_artifacts(report: CampaignReport, directory: str) -> List[str]:
    """Save every counterexample in the report; return the paths."""
    return [
        write_counterexample(cx, directory) for cx in report.counterexamples
    ]


def reproduce(
    path: str, targets: Optional[Iterable[ChaosTarget]] = None
) -> Trace:
    """Re-derive a saved counterexample from its artifact and verify it.

    Three checks: the stored trace's fingerprint is internally consistent
    (via :meth:`Trace.from_jsonl`), a fresh run of the shrunk schedule
    reproduces that exact fingerprint, and the fresh run still violates
    the target's monitors.  Returns the fresh trace.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ReplayError(f"empty counterexample artifact {path!r}")
    meta = json.loads(lines[0])
    if meta.get("schema") != ARTIFACT_SCHEMA:
        raise ReplayError(
            f"unknown artifact schema {meta.get('schema')!r} "
            f"(expected {ARTIFACT_SCHEMA!r})"
        )
    registry = target_registry(targets)
    if meta["target"] not in registry:
        raise ReplayError(f"unknown chaos target {meta['target']!r}")
    target = registry[meta["target"]]
    shrunk = tuple(_decode_value(meta["shrunk"]))
    saved = Trace.from_jsonl("\n".join(lines[1:]) + "\n")
    if saved.fingerprint() != meta["fingerprint"]:
        raise ReplayError(
            "artifact metadata fingerprint does not match the stored trace"
        )
    fresh = target.run(shrunk, meta["seed"])
    if fresh.fingerprint() != meta["fingerprint"]:
        raise ReplayError(
            f"re-run of shrunk schedule produced fingerprint "
            f"{fresh.fingerprint()}, artifact recorded {meta['fingerprint']} "
            "— the counterexample no longer reproduces byte-identically"
        )
    if not target.violations(fresh, shrunk):
        raise ReplayError(
            "re-run of shrunk schedule no longer violates any monitor — "
            "the planted bug may have been fixed"
        )
    return fresh
