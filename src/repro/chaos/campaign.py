"""The chaos campaign runner: fuzz, classify, shrink, replay, report.

A campaign runs seeded batches of adversary schedules against each
:class:`~repro.chaos.targets.ChaosTarget`:

* every case's seed is ``derive_seed(master_seed, target.name, index)``,
  so any single case replays from the ``(master_seed, target, index)``
  coordinates alone;
* every run executes under a per-run :class:`~repro.core.budget.Budget`
  and is classified PASS / VIOLATION / BUDGET_EXCEEDED / CRASH — a crash
  in one case never takes down the campaign;
* violating schedules are delta-debugged
  (:func:`~repro.chaos.shrink.shrink_schedule`) to 1-minimal
  counterexamples, re-executed, and re-verified byte-identical through
  :func:`repro.core.runtime.replay`;
* an optional campaign-wide budget turns the whole sweep into a
  resumable anytime computation: overdraft returns a partial report with
  ``complete=False`` and per-target ``resume_at`` indices, accepted back
  via ``resume=`` to continue exactly where it stopped.

Counterexamples serialize to single-file JSONL artifacts (metadata line
plus the shrunk run's trace) and :func:`reproduce` re-derives and
re-verifies one from its file alone.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.artifacts import atomic_write_text
from ..core.budget import Budget, BudgetExceeded
from ..parallel.pool import WorkerPool, resolve_workers
from ..core.runtime import (
    ReplayError,
    Trace,
    _decode_value,
    _encode_value,
    derive_seed,
    replay,
)
from .monitors import Violation
from .shrink import shrink_schedule
from .targets import ChaosTarget, default_targets, target_registry

PASS = "PASS"
VIOLATION = "VIOLATION"
BUDGET_EXCEEDED = "BUDGET_EXCEEDED"
CRASH = "CRASH"

ARTIFACT_SCHEMA = "repro-chaos-counterexample/v1"
REPORT_SCHEMA = "repro-chaos-report/v1"

DEFAULT_PER_RUN_BUDGET = Budget(max_steps=20_000)


@dataclass(frozen=True)
class CaseResult:
    """The structured verdict of one fuzzed run."""

    target: str
    index: int
    seed: int
    verdict: str
    violations: Tuple[Violation, ...] = ()
    error: str = ""


@dataclass
class Counterexample:
    """A shrunk, replay-verified failure with its reproduction coordinates."""

    target: str
    index: int
    seed: int
    atoms: Tuple
    shrunk: Tuple
    violation: Violation
    trace: Trace = field(repr=False)
    fingerprint: str = ""
    shrink_checks: int = 0
    replay_verified: bool = False


@dataclass
class CampaignReport:
    """Everything one campaign produced; feed back as ``resume=`` to extend."""

    master_seed: int
    runs: int
    results: List[CaseResult] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    complete: bool = True
    resume_at: Dict[str, int] = field(default_factory=dict)

    def verdict_counts(self) -> Dict[str, Dict[str, int]]:
        counts: Dict[str, Dict[str, int]] = {}
        for result in self.results:
            per_target = counts.setdefault(result.target, {})
            per_target[result.verdict] = per_target.get(result.verdict, 0) + 1
        return counts

    def counterexamples_for(self, target: str) -> List[Counterexample]:
        return [cx for cx in self.counterexamples if cx.target == target]

    def dedup_stats(self) -> Dict[str, Dict[str, int]]:
        """Outcome dedup over dense interned ids, per target.

        Fuzzed runs collapse onto few distinct outcome states — the same
        verdict with the same violations recurs across many seeds.  Each
        case's ``(verdict, violations, error)`` signature is interned to
        a dense id (:class:`~repro.core.packed.StateInterner`), so the
        dedup probes hash each deep signature once and set membership
        runs over small integers.  High duplicate rates mean extra runs
        are re-finding known outcomes, not new ones — the signal to
        rotate seeds or widen the adversary.
        """
        from ..core.packed import StateInterner

        interner = StateInterner()
        distinct: Dict[str, set] = {}
        totals: Dict[str, int] = {}
        for result in self.results:
            sid = interner.intern(
                (result.target, result.verdict, result.violations,
                 result.error)
            )
            distinct.setdefault(result.target, set()).add(sid)
            totals[result.target] = totals.get(result.target, 0) + 1
        return {
            name: {
                "runs": totals[name],
                "distinct_outcomes": len(distinct[name]),
                "duplicates": totals[name] - len(distinct[name]),
            }
            for name in totals
        }

    def failures(
        self, targets: Optional[Iterable[ChaosTarget]] = None
    ) -> List[str]:
        """Why this campaign fails CI (empty list = healthy).

        A planted-bug target that produced no violation means the fuzzer
        lost its prey; a healthy target with a violation or crash means
        the engine (or a simulator) produced a false positive.
        """
        registry = target_registry(targets)
        counts = self.verdict_counts()
        problems = []
        for name, target in registry.items():
            per_target = counts.get(name, {})
            if target.expect_violation:
                if not per_target.get(VIOLATION):
                    problems.append(
                        f"{name}: planted bug never tripped a monitor "
                        f"(verdicts: {per_target or 'none'})"
                    )
            else:
                for bad in (VIOLATION, CRASH):
                    if per_target.get(bad):
                        problems.append(
                            f"{name}: healthy target produced "
                            f"{per_target[bad]} {bad} verdict(s)"
                        )
        return problems

    def summary(
        self, targets: Optional[Iterable[ChaosTarget]] = None
    ) -> str:
        registry = target_registry(targets)
        counts = self.verdict_counts()
        lines = [
            f"chaos campaign: master_seed={self.master_seed} "
            f"runs/target={self.runs} complete={self.complete}"
        ]
        for name in sorted(set(counts) | set(registry)):
            per_target = counts.get(name, {})
            tally = " ".join(
                f"{verdict}={per_target[verdict]}"
                for verdict in (PASS, VIOLATION, BUDGET_EXCEEDED, CRASH)
                if per_target.get(verdict)
            ) or "no runs"
            expectation = (
                "expects violation"
                if name in registry and registry[name].expect_violation
                else "healthy"
            )
            lines.append(f"  {name} ({expectation}): {tally}")
        dedup = self.dedup_stats()
        if dedup:
            runs = sum(d["runs"] for d in dedup.values())
            distinct = sum(d["distinct_outcomes"] for d in dedup.values())
            lines.append(
                f"  outcome dedup: {runs} runs -> {distinct} distinct "
                f"outcomes ({runs - distinct} duplicates)"
            )
        for cx in self.counterexamples:
            lines.append(
                f"  counterexample {cx.target}: seed={cx.seed} "
                f"|schedule| {len(cx.atoms)} -> {len(cx.shrunk)} "
                f"[{cx.violation.monitor}] fingerprint={cx.fingerprint[:16]} "
                f"replay={'ok' if cx.replay_verified else 'DIVERGED'}"
            )
        if not self.complete:
            lines.append(
                "  budget exhausted; resume from "
                + ", ".join(
                    f"{name}@{index}"
                    for name, index in sorted(self.resume_at.items())
                    if index < self.runs
                )
            )
        return "\n".join(lines)


def _shrink_case(
    target: ChaosTarget,
    atoms: Tuple,
    seed: int,
    index: int,
    per_run_budget: Optional[Budget],
    shrink_checks: int,
) -> Counterexample:
    """Minimize one violating schedule and re-verify the result."""

    def fails(candidate: Tuple) -> bool:
        meter = (
            per_run_budget.meter(f"{target.name}-shrink")
            if per_run_budget is not None
            else None
        )
        try:
            trace = target.run(tuple(candidate), seed, meter=meter)
        except Exception:
            # A crash or budget overdraft is a *different* failure mode;
            # the shrinker must stay on the monitored violation.
            return False
        return bool(target.violations(trace, tuple(candidate)))

    shrunk, checks = shrink_schedule(
        atoms, fails, target.simplify_atom, max_checks=shrink_checks
    )
    trace = target.run(shrunk, seed)
    violation = target.violations(trace, shrunk)[0]
    try:
        replay(trace)
        verified = True
    except ReplayError:
        verified = False
    return Counterexample(
        target=target.name,
        index=index,
        seed=seed,
        atoms=tuple(atoms),
        shrunk=tuple(shrunk),
        violation=violation,
        trace=trace,
        fingerprint=trace.fingerprint(),
        shrink_checks=checks,
        replay_verified=verified,
    )


def _run_case(
    target: ChaosTarget,
    index: int,
    master_seed: int,
    per_run_budget: Optional[Budget],
    shrink: bool,
    shrink_checks: int,
) -> Tuple[CaseResult, Optional[Counterexample]]:
    seed = derive_seed(master_seed, target.name, index)
    atoms = tuple(target.generate(random.Random(seed)))
    meter = (
        per_run_budget.meter(f"{target.name}#{index}")
        if per_run_budget is not None
        else None
    )
    try:
        trace = target.run(atoms, seed, meter=meter)
    except BudgetExceeded as exc:
        return (
            CaseResult(target.name, index, seed, BUDGET_EXCEEDED, error=str(exc)),
            None,
        )
    except Exception as exc:
        # Fault isolation: one broken run is a verdict, not a campaign abort.
        return CaseResult(target.name, index, seed, CRASH, error=repr(exc)), None
    violations = tuple(target.violations(trace, atoms))
    if not violations:
        return CaseResult(target.name, index, seed, PASS), None
    result = CaseResult(
        target.name, index, seed, VIOLATION, violations=violations
    )
    counterexample = None
    if shrink:
        counterexample = _shrink_case(
            target, atoms, seed, index, per_run_budget, shrink_checks
        )
    return result, counterexample


def _run_case_shard(payload: Tuple) -> CaseResult:
    """The worker-side body of one sharded case (no shrinking).

    A shard is pure coordinates: the worker re-derives its seed via
    ``derive_seed(master_seed, target.name, index)`` exactly as a serial
    run would.  Shrinking stays in the parent so counterexample
    artifacts are byte-identical to serial runs.
    """
    target, index, master_seed, per_run_budget = payload
    result, _none = _run_case(
        target, index, master_seed, per_run_budget, shrink=False,
        shrink_checks=0,
    )
    return result


def _run_campaign_sharded(
    roster: List[ChaosTarget],
    runs: int,
    master_seed: int,
    per_run_budget: Optional[Budget],
    shrink: bool,
    shrink_checks: int,
    budget: Optional[Budget],
    resume: Optional[CampaignReport],
    workers: int,
) -> CampaignReport:
    """The ``workers > 1`` campaign path: shard cases, merge, then shrink.

    Determinism argument, case by case:

    * the executed case set is decided up front by charging the campaign
      meter in the serial iteration order (target by target, index
      ascending), so ``complete``/``resume_at`` match a serial run for
      step-capped budgets (wall-clock budgets are inherently timing
      dependent, serial or not);
    * workers return :class:`CaseResult` values which are merged by a
      stable sort on the serial iteration order — ``pool.map`` already
      preserves it, the sort documents (and enforces) order
      independence;
    * shrinking runs in the parent, in merge order, re-deriving each
      violating schedule from ``random.Random(seed)`` — the same atoms
      the worker fuzzed, so counterexamples, fingerprints and artifacts
      are byte-identical to ``workers=1``.
    """
    results = list(resume.results) if resume is not None else []
    counterexamples = list(resume.counterexamples) if resume is not None else []
    campaign_meter = budget.meter("chaos-campaign") if budget is not None else None
    resume_at: Dict[str, int] = {}
    interrupted = False

    # Phase 1 (parent): pick the executed cases in serial charge order.
    plan: List[Tuple[int, ChaosTarget, int]] = []
    for position, target in enumerate(roster):
        index = resume.resume_at.get(target.name, 0) if resume is not None else 0
        while index < runs:
            if campaign_meter is not None:
                try:
                    campaign_meter.charge_steps()
                except BudgetExceeded:
                    interrupted = True
                    break
            plan.append((position, target, index))
            index += 1
        resume_at[target.name] = index
        if interrupted:
            break
    if interrupted:
        for target in roster:
            resume_at.setdefault(
                target.name,
                resume.resume_at.get(target.name, 0) if resume is not None else 0,
            )

    # Phase 2 (workers): run every planned case, order preserved.
    with WorkerPool(workers) as pool:
        merged = pool.map(
            _run_case_shard,
            [
                (target, index, master_seed, per_run_budget)
                for (_position, target, index) in plan
            ],
        )
    order = sorted(range(len(plan)), key=lambda i: (plan[i][0], plan[i][2]))

    # Phase 3 (parent): fold results and shrink violations in serial order.
    for i in order:
        _position, target, index = plan[i]
        result = merged[i]
        results.append(result)
        if result.verdict == VIOLATION and shrink:
            atoms = tuple(target.generate(random.Random(result.seed)))
            counterexamples.append(
                _shrink_case(
                    target, atoms, result.seed, index, per_run_budget,
                    shrink_checks,
                )
            )

    return CampaignReport(
        master_seed=master_seed,
        runs=runs,
        results=results,
        counterexamples=counterexamples,
        complete=not interrupted,
        resume_at=resume_at,
    )


def run_campaign(
    targets: Optional[Iterable[ChaosTarget]] = None,
    runs: int = 40,
    master_seed: int = 0,
    per_run_budget: Optional[Budget] = DEFAULT_PER_RUN_BUDGET,
    shrink: bool = True,
    shrink_checks: int = 256,
    budget: Optional[Budget] = None,
    resume: Optional[CampaignReport] = None,
    workers=1,
) -> CampaignReport:
    """Fuzz every target ``runs`` times; shrink and verify what breaks.

    ``budget`` (one step charged per case) bounds the whole campaign; on
    overdraft the report comes back with ``complete=False`` and
    ``resume_at`` marking the first unexecuted case per target — pass the
    report back as ``resume`` to continue.  ``per_run_budget`` bounds
    each individual run; overdrafts there are BUDGET_EXCEEDED verdicts,
    not campaign aborts.

    ``workers=N`` shards case execution across N worker processes
    (:mod:`repro.parallel`); every field of the report — classifications,
    counterexamples, fingerprints, resume indices — is bit-identical to
    a ``workers=1`` run (wall-clock budgets excepted: they are timing
    dependent in any mode).  Targets must be picklable, which every
    roster target is.
    """
    roster = list(targets) if targets is not None else default_targets()
    nworkers = resolve_workers(workers)
    if nworkers > 1:
        return _run_campaign_sharded(
            roster, runs, master_seed, per_run_budget, shrink, shrink_checks,
            budget, resume, nworkers,
        )
    results = list(resume.results) if resume is not None else []
    counterexamples = list(resume.counterexamples) if resume is not None else []
    campaign_meter = budget.meter("chaos-campaign") if budget is not None else None
    resume_at: Dict[str, int] = {}
    interrupted = False

    for target in roster:
        index = resume.resume_at.get(target.name, 0) if resume is not None else 0
        while index < runs:
            if campaign_meter is not None:
                try:
                    campaign_meter.charge_steps()
                except BudgetExceeded:
                    interrupted = True
                    break
            result, counterexample = _run_case(
                target, index, master_seed, per_run_budget, shrink, shrink_checks
            )
            results.append(result)
            if counterexample is not None:
                counterexamples.append(counterexample)
            index += 1
        resume_at[target.name] = index
        if interrupted:
            break

    if interrupted:
        for target in roster:
            resume_at.setdefault(
                target.name,
                resume.resume_at.get(target.name, 0) if resume is not None else 0,
            )

    return CampaignReport(
        master_seed=master_seed,
        runs=runs,
        results=results,
        counterexamples=counterexamples,
        complete=not interrupted,
        resume_at=resume_at,
    )


# ---------------------------------------------------------------------------
# Store payloads
# ---------------------------------------------------------------------------


def _violation_to_payload(violation: Violation) -> Dict:
    return {
        "monitor": violation.monitor,
        "description": violation.description,
        "step": violation.step,
    }


def _violation_from_payload(payload: Dict) -> Violation:
    return Violation(
        monitor=payload["monitor"],
        description=payload["description"],
        step=payload["step"],
    )


def report_to_payload(report: CampaignReport) -> Dict:
    """A JSON-native form of a whole campaign, for the certificate store.

    Everything needed to reconstruct the report exactly is embedded:
    case verdicts field by field, counterexamples with their original and
    shrunk schedules through the tagged value encoding, and each shrunk
    trace as its own (fingerprint-carrying) JSONL document — so a report
    pulled back out of the store writes byte-identical counterexample
    artifacts to the campaign that produced it.
    """
    return {
        "schema": REPORT_SCHEMA,
        "master_seed": report.master_seed,
        "runs": report.runs,
        "complete": report.complete,
        "resume_at": dict(report.resume_at),
        "results": [
            {
                "target": r.target,
                "index": r.index,
                "seed": r.seed,
                "verdict": r.verdict,
                "violations": [
                    _violation_to_payload(v) for v in r.violations
                ],
                "error": r.error,
            }
            for r in report.results
        ],
        "counterexamples": [
            {
                "target": cx.target,
                "index": cx.index,
                "seed": cx.seed,
                "atoms": _encode_value(tuple(cx.atoms)),
                "shrunk": _encode_value(tuple(cx.shrunk)),
                "violation": _violation_to_payload(cx.violation),
                "fingerprint": cx.fingerprint,
                "shrink_checks": cx.shrink_checks,
                "replay_verified": cx.replay_verified,
                "trace": cx.trace.to_jsonl(),
            }
            for cx in report.counterexamples
        ],
    }


def report_from_payload(payload: Dict) -> CampaignReport:
    """Invert :func:`report_to_payload`.

    Each embedded trace reloads through :meth:`Trace.from_jsonl`, which
    re-verifies its fingerprint — a tampered trace raises rather than
    producing a counterexample that never happened.
    """
    if payload.get("schema") != REPORT_SCHEMA:
        raise ReplayError(
            f"unknown campaign report schema {payload.get('schema')!r} "
            f"(expected {REPORT_SCHEMA!r})"
        )
    results = [
        CaseResult(
            target=r["target"],
            index=r["index"],
            seed=r["seed"],
            verdict=r["verdict"],
            violations=tuple(
                _violation_from_payload(v) for v in r["violations"]
            ),
            error=r["error"],
        )
        for r in payload["results"]
    ]
    counterexamples = []
    for c in payload["counterexamples"]:
        trace = Trace.from_jsonl(c["trace"])
        if trace.fingerprint() != c["fingerprint"]:
            raise ReplayError(
                f"counterexample for {c['target']!r} carries fingerprint "
                f"{c['fingerprint']}, its trace reloads as "
                f"{trace.fingerprint()}"
            )
        counterexamples.append(
            Counterexample(
                target=c["target"],
                index=c["index"],
                seed=c["seed"],
                atoms=tuple(_decode_value(c["atoms"])),
                shrunk=tuple(_decode_value(c["shrunk"])),
                violation=_violation_from_payload(c["violation"]),
                trace=trace,
                fingerprint=c["fingerprint"],
                shrink_checks=c["shrink_checks"],
                replay_verified=c["replay_verified"],
            )
        )
    return CampaignReport(
        master_seed=payload["master_seed"],
        runs=payload["runs"],
        results=results,
        counterexamples=counterexamples,
        complete=payload["complete"],
        resume_at=dict(payload["resume_at"]),
    )


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------


def write_counterexample(cx: Counterexample, directory: str) -> str:
    """Save one counterexample as a self-contained JSONL artifact.

    Line 1 is campaign metadata (target, seed, original and shrunk
    schedules, the violated property, the trace fingerprint); the rest is
    the shrunk run's trace via :meth:`~repro.core.runtime.Trace.to_jsonl`.
    """
    os.makedirs(directory, exist_ok=True)
    meta = {
        "schema": ARTIFACT_SCHEMA,
        "target": cx.target,
        "index": cx.index,
        "seed": cx.seed,
        "atoms": _encode_value(tuple(cx.atoms)),
        "shrunk": _encode_value(tuple(cx.shrunk)),
        "violation": {
            "monitor": cx.violation.monitor,
            "description": cx.violation.description,
        },
        "fingerprint": cx.fingerprint,
        "replay_verified": cx.replay_verified,
    }
    path = os.path.join(directory, f"{cx.target}-{cx.seed}.jsonl")
    # Atomic: a campaign killed mid-write must never leave a truncated
    # artifact that later "reproduces" as a corrupt counterexample.
    atomic_write_text(
        path, json.dumps(meta, sort_keys=True) + "\n" + cx.trace.to_jsonl()
    )
    return path


def write_artifacts(report: CampaignReport, directory: str) -> List[str]:
    """Save every counterexample in the report; return the paths."""
    return [
        write_counterexample(cx, directory) for cx in report.counterexamples
    ]


def reproduce(
    path: str, targets: Optional[Iterable[ChaosTarget]] = None
) -> Trace:
    """Re-derive a saved counterexample from its artifact and verify it.

    Three checks: the stored trace's fingerprint is internally consistent
    (via :meth:`Trace.from_jsonl`), a fresh run of the shrunk schedule
    reproduces that exact fingerprint, and the fresh run still violates
    the target's monitors.  Returns the fresh trace.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ReplayError(f"empty counterexample artifact {path!r}")
    meta = json.loads(lines[0])
    if meta.get("schema") != ARTIFACT_SCHEMA:
        raise ReplayError(
            f"unknown artifact schema {meta.get('schema')!r} "
            f"(expected {ARTIFACT_SCHEMA!r})"
        )
    registry = target_registry(targets)
    if meta["target"] not in registry:
        raise ReplayError(f"unknown chaos target {meta['target']!r}")
    target = registry[meta["target"]]
    shrunk = tuple(_decode_value(meta["shrunk"]))
    saved = Trace.from_jsonl("\n".join(lines[1:]) + "\n")
    if saved.fingerprint() != meta["fingerprint"]:
        raise ReplayError(
            "artifact metadata fingerprint does not match the stored trace"
        )
    fresh = target.run(shrunk, meta["seed"])
    if fresh.fingerprint() != meta["fingerprint"]:
        raise ReplayError(
            f"re-run of shrunk schedule produced fingerprint "
            f"{fresh.fingerprint()}, artifact recorded {meta['fingerprint']} "
            "— the counterexample no longer reproduces byte-identically"
        )
    if not target.violations(fresh, shrunk):
        raise ReplayError(
            "re-run of shrunk schedule no longer violates any monitor — "
            "the planted bug may have been fixed"
        )
    return fresh
