"""Chaos targets: substrate + protocol + adversary generator + monitors.

A :class:`ChaosTarget` is everything a campaign needs to fuzz one
protocol on one substrate: a seeded :meth:`~ChaosTarget.generate` that
draws an adversary schedule (a tuple of atoms, see
:mod:`repro.chaos.generators`), a :meth:`~ChaosTarget.run` that compiles
the atoms into the substrate's adversary and executes one budgeted run,
and :meth:`~ChaosTarget.monitors` giving the correctness conditions the
resulting trace must satisfy.

The default roster pairs planted-bug protocols with the impossibility
theorems that predict their failure — FloodSet cut one round short of
t+1 (§2.2.2), EIG at n = 3t (§2.2.1), the alternating-bit protocol under
crashes (§2.5), a non-atomic test-then-set lock (§2.3), and an eager
quorum protocol under asynchronous scheduling (§2.2.4) — plus a healthy
LCR ring as the no-false-positives control.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..asynchronous.network import START, AsyncConsensusSystem, AsyncProtocol
from ..consensus.eig import EIGByzantine
from ..consensus.floodset import FloodSet
from ..consensus.synchronous import run_synchronous
from ..core.budget import BudgetMeter
from ..core.runtime import Trace
from ..core.scheduler import ScriptedIndexScheduler
from ..datalink.protocols import AlternatingBitReceiver, AlternatingBitSender
from ..datalink.simulate import ScriptedAdversary, run_datalink
from ..rings.lcr import LCRProcess
from ..rings.simulator import run_async_ring
from ..shared_memory.process import SharedMemoryProcess
from ..shared_memory.system import SharedMemorySystem, run_system
from ..shared_memory.variables import read, write
from . import generators
from .monitors import (
    AgreementMonitor,
    BoundedStalenessMonitor,
    FifoDeliveryMonitor,
    MutualExclusionMonitor,
    TerminationMonitor,
    TraceMonitor,
    UniqueLeaderMonitor,
    ValidityMonitor,
    Violation,
    check_all,
)

Atom = object
Schedule = Tuple[Atom, ...]


class ChaosTarget(ABC):
    """One fuzzable (substrate, protocol, property) triple."""

    name: str = "target"
    substrate: str = ""
    #: True for planted-bug targets (the campaign must find a violation);
    #: False for healthy controls (any violation or crash is a failure).
    expect_violation: bool = True
    #: True for adversarial-stall targets: some runs must exit via a
    #: structured budget overdraft (BUDGET_EXCEEDED) and none may
    #: violate — the liveness-sacrificed-never-safety contract.
    expect_stall: bool = False

    @abstractmethod
    def generate(self, rng: random.Random) -> Schedule:
        """Draw one adversary schedule (a tuple of atoms) from ``rng``."""

    @abstractmethod
    def run(
        self,
        atoms: Schedule,
        seed: int,
        meter: Optional[BudgetMeter] = None,
    ) -> Trace:
        """Compile ``atoms`` into an adversary and execute one run."""

    @abstractmethod
    def monitors(self, atoms: Schedule) -> List[TraceMonitor]:
        """The properties a run under ``atoms`` must satisfy."""

    def simplify_atom(self, atom: Atom) -> Iterator[Atom]:
        """Strictly simpler variants of one atom, for the shrinker."""
        return iter(())

    def violations(self, trace: Trace, atoms: Schedule) -> List[Violation]:
        return check_all(trace, self.monitors(atoms))


# ---------------------------------------------------------------------------
# Synchronous rounds: FloodSet one round short of t+1
# ---------------------------------------------------------------------------


class FloodSetCrashTarget(ChaosTarget):
    """FloodSet truncated to t rounds, fuzzed with crash schedules.

    The t+1-round lower bound says t rounds cannot tolerate t crashes:
    a chain of one crash per round can always smuggle a value to some
    survivors and not others.  The fuzzer must rediscover such a chain —
    the minimal counterexample is two chained crash atoms.
    """

    name = "floodset-truncated-crash"
    substrate = "synchronous"
    expect_violation = True

    N = 4
    T = 2
    ROUNDS = 2  # one short of the t+1 = 3 the protocol needs
    INPUTS = (0, 1, 1, 1)

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_crash_atoms(
            rng, n=self.N, rounds=self.ROUNDS, max_crashes=self.T
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_synchronous(
            FloodSet(rounds_override=self.ROUNDS),
            self.INPUTS,
            generators.crash_adversary(atoms),
            t=self.T,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        crashed = {pid for (_tag, pid, _rnd, _recv) in atoms}
        honest = set(range(self.N)) - crashed
        inputs = dict(enumerate(self.INPUTS))
        return [
            AgreementMonitor(honest),
            ValidityMonitor(inputs, honest, trusted=range(self.N)),
            TerminationMonitor(honest),
        ]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.grow_receivers(atom, self.N)


# ---------------------------------------------------------------------------
# Synchronous rounds: FloodSet under mobile (transient) omissions
# ---------------------------------------------------------------------------


class MobileFloodSetTarget(ChaosTarget):
    """FloodSet at the full t+1 rounds, fuzzed with *mobile* omissions.

    Gafni–Losa's "Time Is Not a Healer": t+1 rounds tolerate t crashes
    because a crash is permanent — a process that got its value out once
    stays heard.  Under mobile faults the adversary re-picks its victim
    every round, so muting the same process in *every* round keeps its
    input invisible forever: here, relentlessly silencing the unique-0
    holder makes everyone else decide 1 while it decides 0.  No static
    crash schedule can do this at t+1 rounds, so the planted bug is the
    fault *model*, not the protocol.  The 1-minimal counterexample is
    one mute atom per round (three atoms), and the bounded-staleness
    monitor checks the flip side: schedules that leave every process one
    clean round must still agree.
    """

    name = "floodset-mobile-omission"
    substrate = "synchronous"
    expect_violation = True

    N = 4
    T = 2
    ROUNDS = 3  # the full t+1 the static-crash bound promises is enough
    INPUTS = (0, 1, 1, 1)

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_mobile_crash_atoms(
            rng, n=self.N, rounds=self.ROUNDS, max_per_round=1
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_synchronous(
            FloodSet(),
            self.INPUTS,
            generators.mobile_omission_adversary(atoms, self.N),
            t=self.T,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        # Mobile faults silence messages, never processes: everyone is
        # honest, receives every round and must decide.
        honest = range(self.N)
        inputs = dict(enumerate(self.INPUTS))
        return [
            AgreementMonitor(honest),
            ValidityMonitor(inputs, honest, trusted=honest),
            TerminationMonitor(honest),
            BoundedStalenessMonitor(
                generators.muted_rounds(atoms), self.ROUNDS, honest
            ),
        ]


# ---------------------------------------------------------------------------
# Synchronous rounds: EIG at n = 3t
# ---------------------------------------------------------------------------


class EIGByzantineTarget(ChaosTarget):
    """EIG Byzantine agreement at n=3, t=1 — below the n > 3t threshold.

    Pease–Shostak–Lamport say three processes cannot survive one traitor;
    the fuzzer's Byzantine process tells per-recipient lies about the EIG
    tree until the two honest processes resolve different roots.  The
    minimal counterexample is two round-2 lies (one per honest recipient).
    """

    name = "eig-n3t1-byzantine"
    substrate = "synchronous"
    expect_violation = True

    N = 3
    T = 1
    FAULTY = 0
    INPUTS = (1, 1, 0)

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_lie_atoms(
            rng, faulty=self.FAULTY, n=self.N, rounds=self.T + 1, max_lies=4
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_synchronous(
            EIGByzantine(),
            self.INPUTS,
            generators.lie_adversary(atoms, self.FAULTY),
            t=self.T,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        honest = set(range(self.N)) - {self.FAULTY}
        inputs = dict(enumerate(self.INPUTS))
        return [
            AgreementMonitor(honest),
            ValidityMonitor(inputs, honest, trusted=honest),
            TerminationMonitor(honest),
        ]


# ---------------------------------------------------------------------------
# Datalink: the alternating-bit protocol under crashes
# ---------------------------------------------------------------------------


class AlternatingBitTarget(ChaosTarget):
    """ABP over a hostile channel with endpoint crashes.

    ABP is correct over fair lossy FIFO channels — but a crash that
    resets an endpoint's volatile bit re-opens the window the bit was
    closing, so exactly-once delivery fails (the Lynch–Mansour–Fekete
    impossibility for crash-prone endpoints).  Channel programs also mix
    reordered deliveries and duplicates, which ABP must survive alone.
    """

    name = "alternating-bit-crash"
    substrate = "datalink"
    expect_violation = True

    MESSAGES = ("m0", "m1", "m2")

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_channel_atoms(rng)

    def run(self, atoms, seed, meter=None) -> Trace:
        return run_datalink(
            AlternatingBitSender(),
            AlternatingBitReceiver(),
            self.MESSAGES,
            ScriptedAdversary(atoms),
            max_steps=500,
            sender_factory=AlternatingBitSender,
            receiver_factory=AlternatingBitReceiver,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        return [FifoDeliveryMonitor(self.MESSAGES)]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.simplify_channel_atom(atom)


# ---------------------------------------------------------------------------
# Shared memory: a non-atomic test-then-set lock
# ---------------------------------------------------------------------------


class RacyLockProcess(SharedMemoryProcess):
    """A lock that reads the flag, then writes it — not atomically.

    The planted race: between one process's read of 0 and its write of 1,
    the other can read 0 too, and both enter the critical region.  This
    is precisely the gap the atomic test-and-set repertoire closes and
    separate reads/writes cannot (§2.3); entry and exit are announced via
    ``("crit", name)`` / ``("rem", name)`` output actions so the mutual
    exclusion monitor can read them off the trace.
    """

    def __init__(self, name: str, var: str = "lock"):
        super().__init__(name)
        self.var = var

    def initial_local(self):
        return "start"

    def pending_access(self, local):
        if local == "start":
            return read(self.var)
        if local == "set":
            return write(self.var, 1)
        if local == "incrit":
            return read(self.var)  # linger one step inside the region
        if local == "unset":
            return write(self.var, 0)
        return None

    def after_access(self, local, response):
        if local == "start":
            return "set" if response == 0 else "start"
        if local == "set":
            return "announce"
        if local == "incrit":
            return "unset"
        if local == "unset":
            return "exit"
        return local

    def output_action(self, local):
        if local == "announce":
            return ("crit", self.name)
        if local == "exit":
            return ("rem", self.name)
        return None

    def after_output(self, local):
        if local == "announce":
            return "incrit"
        if local == "exit":
            return "done"
        raise ValueError(f"{self.name} has no pending output in {local!r}")

    def output_actions(self):
        return frozenset({("crit", self.name), ("rem", self.name)})


class RacyLockTarget(ChaosTarget):
    """Two racy-lock processes under fuzzed interleavings."""

    name = "racy-lock"
    substrate = "shared-memory"
    expect_violation = True

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_index_atoms(
            rng, min_length=3, max_length=10, width=2
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        system = SharedMemorySystem(
            [RacyLockProcess("p0"), RacyLockProcess("p1")],
            {"lock": 0},
            name="racy-lock",
        )
        return run_system(
            system,
            ScriptedIndexScheduler(atoms),
            max_steps=40,
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        return [MutualExclusionMonitor()]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.simplify_index_atom(atom)


# ---------------------------------------------------------------------------
# Asynchronous network: a quorum protocol that decides too eagerly
# ---------------------------------------------------------------------------


class EagerMajorityProtocol(AsyncProtocol):
    """Decide the minimum of the first majority of values heard.

    The planted asynchrony bug: which majority a process hears *first* is
    the scheduler's choice, so two processes can decide from different
    quorums and disagree — the one-shot form of the FLP observation that
    decisions taken on partial information are scheduling-dependent.
    """

    name = "eager-majority"

    def __init__(self, n: int):
        self.n = n
        self.quorum = n // 2 + 1

    def initial_state(self, pid, n, input_value):
        return (input_value, (), None)

    def transition(self, pid, state, message):
        input_value, seen, decided = state
        sends: Tuple = ()
        if message == START:
            seen = tuple(sorted(set(seen) | {(pid, input_value)}))
            sends = tuple(
                (dest, ("val", pid, input_value))
                for dest in range(self.n)
                if dest != pid
            )
        elif isinstance(message, tuple) and message and message[0] == "val":
            seen = tuple(sorted(set(seen) | {(message[1], message[2])}))
        if decided is None and len(seen) >= self.quorum:
            decided = min(value for _pid, value in seen)
        return (input_value, seen, decided), sends

    def decision(self, state):
        return state[2]


class EagerMajorityTarget(ChaosTarget):
    """Eager-majority consensus under fuzzed delivery orders."""

    name = "eager-majority-async"
    substrate = "async-network"
    expect_violation = True

    N = 3
    INPUTS = (0, 1, 1)

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_index_atoms(
            rng, min_length=4, max_length=12, width=self.N
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        system = AsyncConsensusSystem(EagerMajorityProtocol(self.N), self.N)
        return system.run_fair_traced(
            self.INPUTS,
            max_steps=60,
            adversary=ScriptedIndexScheduler(atoms),
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        return [AgreementMonitor(range(self.N))]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.simplify_index_atom(atom)


# ---------------------------------------------------------------------------
# Rings: healthy LCR leader election (the control)
# ---------------------------------------------------------------------------


class LCRRingTarget(ChaosTarget):
    """LCR leader election under fuzzed delivery orders — a healthy target.

    LCR is correct under *any* asynchronous schedule, so every verdict
    must be PASS: a violation or crash here is a bug in the engine (or
    the simulator), not the protocol.  This is the campaign's
    no-false-positives control.
    """

    name = "lcr-ring"
    substrate = "async-ring"
    expect_violation = False

    IDENTS = (3, 1, 4, 2, 5)

    def generate(self, rng: random.Random) -> Schedule:
        return generators.random_index_atoms(
            rng, min_length=4, max_length=12, width=2 * len(self.IDENTS)
        )

    def run(self, atoms, seed, meter=None) -> Trace:
        idents = self.IDENTS
        return run_async_ring(
            seed=0,
            max_steps=10_000,
            adversary=ScriptedIndexScheduler(atoms),
            process_factory=lambda: [LCRProcess(i) for i in idents],
            meter=meter,
        ).trace

    def monitors(self, atoms) -> List[TraceMonitor]:
        return [UniqueLeaderMonitor(expected=self.IDENTS.index(max(self.IDENTS)))]

    def simplify_atom(self, atom) -> Iterator[Atom]:
        return generators.simplify_index_atom(atom)


# ---------------------------------------------------------------------------
# Roster
# ---------------------------------------------------------------------------


def default_targets() -> List[ChaosTarget]:
    """The standard campaign roster: planted bugs, healthy controls and
    one adversarial-stall target, covering eight distinct substrates."""
    from .circumvention_targets import circumvention_targets

    return [
        FloodSetCrashTarget(),
        MobileFloodSetTarget(),
        EIGByzantineTarget(),
        AlternatingBitTarget(),
        RacyLockTarget(),
        EagerMajorityTarget(),
        LCRRingTarget(),
        *circumvention_targets(),
    ]


def target_registry(
    targets: Optional[Iterable[ChaosTarget]] = None,
) -> Dict[str, ChaosTarget]:
    """name -> target, for CLI selection and artifact reproduction."""
    roster = list(targets) if targets is not None else default_targets()
    return {target.name: target for target in roster}
