"""Delta debugging for adversary schedules.

Every generated adversary in the chaos engine is a flat tuple of *atoms*
(crash specs, omission triples, channel actions, scheduling indices) that
rebuilds into a concrete adversary, so minimizing a counterexample is
pure data manipulation: delete atoms while the failure persists.

:func:`shrink_schedule` is Zeller's ddmin specialised to that shape —
chunked complement deletion down to 1-minimality (no single atom can be
removed without losing the failure), followed by an optional per-atom
simplification pass (e.g. shrinking a scheduling index toward 0, growing
a crash's receiver set toward honesty).  The predicate is memoized and
check-budgeted, and the whole procedure is deterministic: the same
schedule and predicate always shrink to the same result, which is what
lets a ``(seed, fingerprint)`` pair in a CI artifact re-derive the exact
counterexample.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

Atom = object
Schedule = Tuple[Atom, ...]


def shrink_schedule(
    atoms: Iterable[Atom],
    fails: Callable[[Schedule], bool],
    simplify_atom: Optional[Callable[[Atom], Iterable[Atom]]] = None,
    max_checks: int = 512,
) -> Tuple[Schedule, int]:
    """Minimize ``atoms`` while ``fails`` keeps returning True.

    Returns ``(shrunk_schedule, checks_used)``.  The caller must have
    established that the full schedule fails; predicate calls beyond
    ``max_checks`` are conservatively treated as "does not fail", so the
    budget can only leave the result larger, never wrong — the returned
    schedule always satisfies ``fails``.
    """
    current: Schedule = tuple(atoms)
    cache: Dict[Schedule, bool] = {current: True}
    checks = 0

    def check(candidate: Schedule) -> bool:
        nonlocal checks
        if candidate in cache:
            return cache[candidate]
        if checks >= max_checks:
            return False
        checks += 1
        result = bool(fails(candidate))
        cache[candidate] = result
        return result

    if current and check(()):
        return (), checks

    # -- ddmin: complement deletion to 1-minimality -----------------------
    granularity = 2
    while len(current) >= 2:
        length = len(current)
        chunk = max(1, length // granularity)
        starts = list(range(0, length, chunk))
        reduced = False
        for start in starts:
            candidate = current[:start] + current[start + chunk:]
            if candidate != current and check(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= length:
                break
            granularity = min(length, granularity * 2)

    if len(current) == 1 and check(()):
        current = ()

    # -- per-atom simplification ------------------------------------------
    if simplify_atom is not None:
        changed = True
        while changed and checks < max_checks:
            changed = False
            for i, atom in enumerate(current):
                for simpler in simplify_atom(atom):
                    candidate = current[:i] + (simpler,) + current[i + 1:]
                    if candidate != current and check(candidate):
                        current = candidate
                        changed = True
                        break
                if changed:
                    break

    return current, checks
