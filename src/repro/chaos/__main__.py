"""Command-line entry point: ``python -m repro.chaos``.

Runs a seeded chaos campaign (or reproduces a saved counterexample
artifact) and exits nonzero when the campaign fails — a planted-bug
target whose bug was never found, or a healthy target that produced a
violation or crash.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.budget import Budget
from .campaign import reproduce, run_campaign, write_artifacts
from .targets import target_registry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded adversary-fuzzing campaigns with counterexample "
        "shrinking over every simulation substrate.",
    )
    parser.add_argument(
        "--runs", type=int, default=40, help="fuzzed runs per target"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign master seed"
    )
    parser.add_argument(
        "--targets",
        nargs="*",
        default=None,
        metavar="NAME",
        help="restrict to these target names (default: full roster)",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write shrunk-counterexample JSONL artifacts into DIR",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="certificate store directory: answer this campaign from the "
        "store when a verified entry exists, run and cache it otherwise",
    )
    parser.add_argument(
        "--workers",
        default=1,
        metavar="N",
        help="shard case execution across N worker processes "
        "(or 'auto' for one per CPU); results are bit-identical to "
        "--workers 1 (default)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="campaign wall-clock budget; overdraft yields a resumable "
        "partial report",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging of violating schedules",
    )
    parser.add_argument(
        "--reproduce",
        default=None,
        metavar="PATH",
        help="re-derive and verify a saved counterexample artifact, "
        "then exit",
    )
    args = parser.parse_args(argv)

    if args.reproduce is not None:
        trace = reproduce(args.reproduce)
        print(
            f"reproduced {args.reproduce}: substrate={trace.substrate} "
            f"protocol={trace.protocol} events={trace.steps} "
            f"fingerprint={trace.fingerprint()[:16]} — byte-identical, "
            "still violating"
        )
        return 0

    registry = target_registry()
    if args.targets:
        unknown = [name for name in args.targets if name not in registry]
        if unknown:
            parser.error(
                f"unknown targets {unknown}; known: {sorted(registry)}"
            )
        roster = [registry[name] for name in args.targets]
    else:
        roster = list(registry.values())

    budget = (
        Budget(max_seconds=args.max_seconds)
        if args.max_seconds is not None
        else None
    )
    workers = args.workers if args.workers == "auto" else int(args.workers)
    if args.store is not None:
        from ..service.service import run_campaign_cached
        from ..service.store import CertificateStore

        store = CertificateStore(args.store)
        report, source = run_campaign_cached(
            store,
            targets=roster,
            runs=args.runs,
            master_seed=args.seed,
            shrink=not args.no_shrink,
            budget=budget,
            workers=workers,
        )
        print(f"campaign answered from {source}; {store.stats_line()}")
    else:
        report = run_campaign(
            targets=roster,
            runs=args.runs,
            master_seed=args.seed,
            shrink=not args.no_shrink,
            budget=budget,
            workers=workers,
        )
    print(report.summary(roster))

    if args.artifacts and report.counterexamples:
        for path in write_artifacts(report, args.artifacts):
            print(f"wrote {path}")

    failures = report.failures(roster)
    for problem in failures:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
