"""Command-line entry point: ``python -m repro.chaos``.

Runs a seeded chaos campaign (or reproduces a saved counterexample
artifact, or replays a schedule corpus) and exits nonzero when the
campaign fails — a planted-bug target whose bug was never found, or a
healthy target that produced a violation or crash.

Mega-campaign mode: ``--cases 1000000 --corpus DIR`` streams a
million-case campaign in constant memory, persisting every
novel-coverage schedule; ``--replay-corpus DIR`` later re-runs the whole
corpus as a regression gate.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from ..core.budget import Budget
from .campaign import reproduce, run_campaign, write_artifacts
from .corpus import ScheduleCorpus, replay_corpus
from .targets import target_registry


def _replay(directory: str, roster) -> int:
    """Replay every corpus schedule; the corpus-as-regression-suite gate."""
    corpus = ScheduleCorpus(directory)
    outcome = replay_corpus(corpus, roster)
    print(
        f"corpus replay: {outcome['entries']} entries from {directory}"
    )
    for name, stats in sorted(outcome["per_target"].items()):
        print(
            f"  {name}: {stats['entries']} entries, "
            f"{stats['reproduced']} reproduced byte-identically, "
            f"{stats['violations']} still violating, "
            f"{stats.get('stalls', 0)} still stalling"
        )
    problems = []
    for target_name, recorded, got in outcome["fingerprint_mismatches"]:
        problems.append(
            f"{target_name}: schedule replayed to fingerprint {got[:16]}, "
            f"corpus recorded {recorded[:16]}"
        )
    refound = set(outcome["violations_refound"])
    stalled = set(outcome.get("stalls_refound", ()))
    for target in roster:
        if target.expect_violation and target.name not in refound:
            problems.append(
                f"{target.name}: no corpus schedule re-finds the planted bug"
            )
        if (
            getattr(target, "expect_stall", False)
            and target.name in outcome["per_target"]
            and target.name not in stalled
        ):
            problems.append(
                f"{target.name}: no corpus schedule re-produces the "
                "pre-stabilization stall"
            )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded adversary-fuzzing campaigns with counterexample "
        "shrinking over every simulation substrate.",
    )
    parser.add_argument(
        "--runs", type=int, default=40, help="fuzzed runs per target"
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=None,
        metavar="N",
        help="total case budget across the roster (overrides --runs, "
        "implies --stream): runs/target = ceil(N / #targets)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign master seed"
    )
    parser.add_argument(
        "--targets",
        nargs="*",
        default=None,
        metavar="NAME",
        help="restrict to these target names (default: full roster)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="constant-memory mode: fold cases instead of keeping the "
        "full result list (reports and artifacts stay byte-identical)",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="persist every novel-coverage schedule into this "
        "store-backed corpus directory (and skip behaviours already in it)",
    )
    parser.add_argument(
        "--mutations",
        type=int,
        default=0,
        metavar="K",
        help="after the base sweep, re-expand each corpus schedule K "
        "times through seeded mutation operators (requires --corpus)",
    )
    parser.add_argument(
        "--replay-corpus",
        default=None,
        metavar="DIR",
        help="replay every schedule in this corpus as a regression gate, "
        "then exit (nonzero on fingerprint drift or a lost planted bug)",
    )
    parser.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="stream one JSON line per case to PATH (atomic incremental "
        "JSONL artifact)",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write shrunk-counterexample JSONL artifacts into DIR",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="certificate store directory: answer this campaign from the "
        "store when a verified entry exists, run and cache it otherwise",
    )
    parser.add_argument(
        "--workers",
        default=1,
        metavar="N",
        help="shard case execution across N worker processes "
        "(or 'auto' for one per CPU); results are bit-identical to "
        "--workers 1 (default)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="campaign wall-clock budget; overdraft yields a resumable "
        "partial report",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging of violating schedules",
    )
    parser.add_argument(
        "--reproduce",
        default=None,
        metavar="PATH",
        help="re-derive and verify a saved counterexample artifact, "
        "then exit",
    )
    args = parser.parse_args(argv)

    if args.reproduce is not None:
        trace = reproduce(args.reproduce)
        print(
            f"reproduced {args.reproduce}: substrate={trace.substrate} "
            f"protocol={trace.protocol} events={trace.steps} "
            f"fingerprint={trace.fingerprint()[:16]} — byte-identical, "
            "still violating"
        )
        return 0

    registry = target_registry()
    if args.targets:
        unknown = [name for name in args.targets if name not in registry]
        if unknown:
            parser.error(
                f"unknown targets {unknown}; known: {sorted(registry)}"
            )
        roster = [registry[name] for name in args.targets]
    else:
        roster = list(registry.values())

    if args.replay_corpus is not None:
        return _replay(args.replay_corpus, roster)

    if args.mutations and not args.corpus:
        parser.error("--mutations requires --corpus")
    if args.store is not None and (args.corpus or args.stream or args.cases):
        # The store caches whole reports by (targets, runs, seed, shrink)
        # alone; corpus/streaming side effects are not part of that key.
        parser.error(
            "--store cannot be combined with --corpus/--stream/--cases"
        )

    runs = args.runs
    streaming = args.stream
    if args.cases is not None:
        runs = max(1, math.ceil(args.cases / len(roster)))
        streaming = True

    budget = (
        Budget(max_seconds=args.max_seconds)
        if args.max_seconds is not None
        else None
    )
    workers = args.workers if args.workers == "auto" else int(args.workers)
    if args.store is not None:
        from ..service.service import run_campaign_cached
        from ..service.store import CertificateStore

        store = CertificateStore(args.store)
        report, source = run_campaign_cached(
            store,
            targets=roster,
            runs=runs,
            master_seed=args.seed,
            shrink=not args.no_shrink,
            budget=budget,
            workers=workers,
        )
        print(f"campaign answered from {source}; {store.stats_line()}")
    else:
        corpus = ScheduleCorpus(args.corpus) if args.corpus else None
        report = run_campaign(
            targets=roster,
            runs=runs,
            master_seed=args.seed,
            shrink=not args.no_shrink,
            budget=budget,
            workers=workers,
            keep_results=not streaming,
            corpus=corpus,
            mutations=args.mutations,
            case_log=args.log,
        )
        if corpus is not None:
            print(
                f"corpus {corpus.root}: +{report.corpus_added} novel "
                f"schedules ({len(corpus)} total)"
            )
        if streaming and report.throughput:
            print(
                f"streamed {report.cases} cases at "
                f"{report.throughput['cases_per_s']} cases/s "
                f"({report.throughput['seconds']}s)"
            )
    print(report.summary(roster))

    if args.artifacts and report.counterexamples:
        for path in write_artifacts(report, args.artifacts):
            print(f"wrote {path}")

    failures = report.failures(roster)
    for problem in failures:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
