"""Chain arguments: connect extreme scenarios through single-change steps.

Chain proofs (the t+1-round bound [56], Two Generals [61], approximate
agreement rate bounds [36]) all share a skeleton:

1. build a finite sequence of executions from an "all 0" extreme to an
   "all 1" extreme, each consecutive pair differing in one small way
   (one input flipped, one message removed, one fault added);
2. show each consecutive pair is indistinguishable to some nonfaulty
   process, so decisions cannot change across the link;
3. conclude the extremes decide identically — contradicting validity.

This module provides the combinatorial chain builders; the model-specific
indistinguishability checks live with their models.
"""

from __future__ import annotations

from typing import (
    Callable,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")


def input_vector_chain(
    n: int, low: Hashable = 0, high: Hashable = 1
) -> List[Tuple[Hashable, ...]]:
    """The chain of input vectors from all-``low`` to all-``high``.

    Consecutive vectors differ in exactly one coordinate, flipped in index
    order: (0,0,0), (1,0,0), (1,1,0), (1,1,1).  This is the spine of the
    validity end of every chain argument.
    """
    chain: List[Tuple[Hashable, ...]] = []
    current = [low] * n
    chain.append(tuple(current))
    for i in range(n):
        current[i] = high
        chain.append(tuple(current))
    return chain


def chain_link_indices(chain_length: int) -> Iterator[Tuple[int, int]]:
    """Indices of consecutive pairs along a chain."""
    for i in range(chain_length - 1):
        yield i, i + 1


def verify_chain(
    chain: Sequence[T],
    linked: Callable[[T, T], bool],
) -> Optional[int]:
    """Check every consecutive pair satisfies the link relation.

    Returns the index of the first broken link, or None when the chain is
    intact.
    """
    for i, j in chain_link_indices(len(chain)):
        if not linked(chain[i], chain[j]):
            return i
    return None


def find_changing_link(
    chain: Sequence[T],
    label: Callable[[T], Hashable],
) -> Optional[Tuple[int, Hashable, Hashable]]:
    """Find the first link where a label (e.g. the decision value) changes.

    A chain argument concludes by observing that the label differs at the
    two ends, hence must change across *some* link — and that link is the
    contradiction, since its two sides are indistinguishable to a process
    that must output the label.  Returns ``(index, left_label,
    right_label)`` or None if the label is constant.
    """
    for i, j in chain_link_indices(len(chain)):
        left, right = label(chain[i]), label(chain[j])
        if left != right:
            return i, left, right
    return None


def matrix_flip_chain(
    rows: int, cols: int, low: Hashable = 0, high: Hashable = 1
) -> List[Tuple[Tuple[Hashable, ...], ...]]:
    """Chain of matrices from all-``low`` to all-``high``, one entry per step.

    Entries flip down the columns, matching the r-round lower-bound
    construction in [56] where the matrix records "the value process j
    reported about process i".
    """
    chain: List[Tuple[Tuple[Hashable, ...], ...]] = []
    matrix = [[low] * cols for _ in range(rows)]
    chain.append(tuple(tuple(r) for r in matrix))
    for c in range(cols):
        for r in range(rows):
            matrix[r][c] = high
            chain.append(tuple(tuple(row) for row in matrix))
    return chain
