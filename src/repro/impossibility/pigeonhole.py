"""Pigeonhole arguments over shared-memory values.

The earliest impossibility proofs in the survey (Cremers–Hibbard [35],
Burns et al. [26]) work by pigeonhole: run the algorithm through a family
of situations, observe that the shared variable can take only V values, so
two "incompatible" situations must leave the memory (and some process's
local state) identical — and indistinguishability then forces incorrect
behaviour in one of them.

This module provides the collision machinery those mechanized proofs use.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")
K = TypeVar("K", bound=Hashable)


def collisions(
    items: Iterable[T], key: Callable[[T], K]
) -> Dict[K, List[T]]:
    """Group items by key, keeping only keys hit more than once.

    The classic use: items are *situations* (execution fragments), the key
    is ``(shared memory value, local state of p)`` — any returned group is
    a set of situations that p cannot tell apart.
    """
    groups: Dict[K, List[T]] = defaultdict(list)
    for item in items:
        groups[key(item)].append(item)
    return {k: v for k, v in groups.items() if len(v) > 1}


def first_collision(
    items: Iterable[T], key: Callable[[T], K]
) -> Optional[Tuple[T, T]]:
    """Return the first pair of distinct items sharing a key, if any."""
    seen: Dict[K, T] = {}
    for item in items:
        k = key(item)
        if k in seen:
            return seen[k], item
        seen[k] = item
    return None


def guaranteed_collision_count(item_count: int, hole_count: int) -> int:
    """How many pigeons must share the fullest hole: ceil(items/holes).

    Used to state the quantitative form of the argument: with n processes
    leaving values in a V-valued variable, some value is left by at least
    ceil(n/V) of them.
    """
    if hole_count <= 0:
        raise ValueError("hole_count must be positive")
    return -(-item_count // hole_count)


def incompatible_collision(
    items: Sequence[T],
    key: Callable[[T], K],
    incompatible: Callable[[T, T], bool],
) -> Optional[Tuple[T, T]]:
    """Find two key-colliding items that are *incompatible*.

    ``incompatible(a, b)`` captures "the problem statement requires
    different behaviour in a and b".  A returned pair is exactly the
    contradiction of a pigeonhole impossibility proof: same observable
    situation, different obligations.
    """
    groups = collisions(items, key)
    for group in groups.values():
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if incompatible(a, b):
                    return a, b
    return None
