"""Machine-checked certificates for impossibility and lower-bound results.

The survey insists (§3.2) that "it is not possible to fake an impossibility
proof".  In this library every mechanized result produces a *certificate*:
a structured record of exactly what was checked, over what bounded scope,
with the witness data needed to re-validate the conclusion independently of
the search that produced it.

Two kinds of certificate exist, mirroring the paper's two kinds of result:

* :class:`ImpossibilityCertificate` — "no protocol in the stated class
  achieves the stated properties", backed by either an exhaustive
  enumeration (every candidate has a recorded failure witness) or a
  constructive adversary (a procedure that defeated the specific protocol
  under test).

* :class:`CounterexampleCertificate` — "this concrete execution violates
  the stated property" or "this concrete algorithm achieves the stated
  bound"; the paper calls algorithms of the second kind *counterexample
  algorithms*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.errors import CertificateError


@dataclass
class FailureWitness:
    """Why one candidate protocol fails: a named property plus evidence.

    ``evidence`` is typically an execution, a schedule, or a pair of
    indistinguishable executions; ``replay`` re-validates it.
    """

    candidate: Any
    property_violated: str
    evidence: Any = None
    replay: Optional[Callable[[], bool]] = None

    def revalidate(self) -> None:
        if self.replay is not None and not self.replay():
            raise CertificateError(
                f"witness for candidate {self.candidate!r} failed replay "
                f"(property {self.property_violated!r})"
            )


@dataclass
class ImpossibilityCertificate:
    """Certificate that a task is impossible within a bounded scope.

    Attributes:
        claim: one-sentence statement of the impossibility.
        scope: precise description of the protocol class / bound searched
            (the honesty clause: the paper's theorems are unbounded, the
            mechanized check is not).
        technique: which of the survey's proof-technique families was used
            (pigeonhole, scenario, chain, bivalence, stretching, symmetry).
        candidates_checked: how many candidates were enumerated (0 when the
            certificate comes from a constructive adversary instead).
        witnesses: per-candidate failure witnesses (possibly sampled).
    """

    claim: str
    scope: str
    technique: str
    candidates_checked: int = 0
    witnesses: List[FailureWitness] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    def revalidate(self) -> None:
        """Replay every witness; raise :class:`CertificateError` on failure."""
        for witness in self.witnesses:
            witness.revalidate()

    def summary(self) -> str:
        lines = [
            f"IMPOSSIBLE ({self.technique}): {self.claim}",
            f"  scope: {self.scope}",
        ]
        if self.candidates_checked:
            lines.append(f"  candidates checked: {self.candidates_checked}")
        if self.witnesses:
            lines.append(f"  witnesses recorded: {len(self.witnesses)}")
        for key, value in sorted(self.details.items()):
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


@dataclass
class CounterexampleCertificate:
    """Certificate that a concrete object demonstrates a possibility claim.

    Used both for violations ("this schedule locks process 1 out") and for
    the paper's *counterexample algorithms* ("this algorithm achieves n/2
    values, refuting the n-value conjecture").
    """

    claim: str
    technique: str
    evidence: Any = None
    replay: Optional[Callable[[], bool]] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def revalidate(self) -> None:
        if self.replay is not None and not self.replay():
            raise CertificateError(f"counterexample failed replay: {self.claim}")

    def summary(self) -> str:
        lines = [f"WITNESS ({self.technique}): {self.claim}"]
        for key, value in sorted(self.details.items()):
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


@dataclass
class BoundCertificate:
    """Certificate for a quantitative lower/upper bound measurement.

    Records the measured series so EXPERIMENTS.md entries can be
    regenerated: ``series`` maps a parameter point (e.g. ``n``) to the
    measured cost, and ``bound`` maps the same point to the paper's bound.
    """

    claim: str
    technique: str
    series: Dict[Any, float] = field(default_factory=dict)
    bound: Dict[Any, float] = field(default_factory=dict)
    direction: str = "lower"  # measured cost must be >= bound ("lower") or <= ("upper")
    details: Dict[str, Any] = field(default_factory=dict)

    def holds(self) -> bool:
        """Check every measured point against the bound."""
        for point, value in self.series.items():
            if point not in self.bound:
                continue
            if self.direction == "lower" and value < self.bound[point] - 1e-9:
                return False
            if self.direction == "upper" and value > self.bound[point] + 1e-9:
                return False
        return True

    def revalidate(self) -> None:
        if not self.holds():
            raise CertificateError(f"bound certificate violated: {self.claim}")

    def summary(self) -> str:
        lines = [f"BOUND ({self.direction}, {self.technique}): {self.claim}"]
        for point in sorted(self.series, key=repr):
            measured = self.series[point]
            expected = self.bound.get(point)
            suffix = f" (bound {expected})" if expected is not None else ""
            lines.append(f"  {point}: {measured}{suffix}")
        return "\n".join(lines)
