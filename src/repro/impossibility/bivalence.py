"""Bivalence (valency) arguments, the FLP proof engine.

The survey (§2.2.4) presents the Fischer–Lynch–Paterson proof and its many
descendants (Dolev–Dwork–Stockmeyer, Loui–Abu-Amara, Herlihy,
Bridgeland–Watro, Moran–Wolfstahl) as *bivalence arguments*: label each
reachable configuration with its **valency** — the set of decision values
still reachable from it — and show that a putative fault-tolerant protocol
must (a) have a bivalent initial configuration and (b) admit an admissible
execution that stays bivalent forever, so it never decides.

This module implements that argument generically over a
:class:`DecisionSystem`: any step-deterministic system whose events are
owned by processes and whose configurations expose per-process decisions.
The asynchronous message-passing model (FLP), asynchronous read/write
shared memory (Loui–Abu-Amara) and wait-free object systems (Herlihy) all
instantiate it; see :mod:`repro.asynchronous.flp` and
:mod:`repro.registers.herlihy`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import SearchBudgetExceeded

Configuration = Hashable
Event = Hashable
ProcessId = Hashable


class DecisionSystem(ABC):
    """A step-deterministic decision protocol under adversarial scheduling.

    Configurations are global states; events are atomic steps, each owned
    by one process; applying an event to a configuration yields exactly one
    successor.  Nondeterminism lives entirely in the *order* of events —
    which is the adversary's to choose.  This matches the FLP model (an
    event is "deliver message m to p, who then acts deterministically") and
    the shared-memory model (an event is "p performs its next access").
    """

    @property
    @abstractmethod
    def processes(self) -> Sequence[ProcessId]:
        """The process identifiers."""

    @property
    @abstractmethod
    def values(self) -> Sequence[Hashable]:
        """The possible decision values (usually (0, 1))."""

    @abstractmethod
    def initial_configurations(self) -> Iterable[Configuration]:
        """All initial configurations (one per input assignment)."""

    @abstractmethod
    def events(self, config: Configuration) -> Iterable[Event]:
        """Events applicable in ``config``."""

    @abstractmethod
    def owner(self, event: Event) -> ProcessId:
        """The process that takes the step."""

    @abstractmethod
    def apply(self, config: Configuration, event: Event) -> Configuration:
        """The unique successor configuration."""

    @abstractmethod
    def decisions(self, config: Configuration) -> Mapping[ProcessId, Hashable]:
        """The processes that have irrevocably decided, with their values."""

    def fair_events(self, config: Configuration) -> Mapping[ProcessId, Event]:
        """For each process, the event admissibility owes it next.

        Default: the first applicable event owned by each process (in the
        deterministic iteration order of :meth:`events`).  Asynchronous
        network systems override this to return "deliver the *oldest*
        pending message", which is what makes the stalling adversary's runs
        admissible.
        """
        owed: Dict[ProcessId, Event] = {}
        for event in self.events(config):
            pid = self.owner(event)
            if pid not in owed:
                owed[pid] = event
        return owed

    def decided_values(self, config: Configuration) -> FrozenSet[Hashable]:
        return frozenset(self.decisions(config).values())


@dataclass
class ValencyAnalyzer:
    """Computes valencies with global memoization.

    The valency of C is the set of values v such that some configuration
    reachable from C has a process decided on v.  Configurations are
    classified *v-valent* (singleton valency {v}), *bivalent* (≥2 values)
    or *null-valent* (no decision reachable — a protocol bug).
    """

    system: DecisionSystem
    max_configurations: int = 200_000
    _valency_cache: Dict[Configuration, FrozenSet[Hashable]] = field(
        default_factory=dict
    )

    def valency(self, config: Configuration) -> FrozenSet[Hashable]:
        """The valency of ``config`` (memoized over the whole analyzer)."""
        if config in self._valency_cache:
            return self._valency_cache[config]
        # Iterative DFS computing, for every config in the reachable cone,
        # the union of decided values over its descendants.
        reachable: List[Configuration] = []
        seen: Dict[Configuration, FrozenSet[Hashable]] = {}
        order: List[Configuration] = []
        stack: List[Configuration] = [config]
        succs: Dict[Configuration, List[Configuration]] = {}
        while stack:
            current = stack.pop()
            if current in seen or current in self._valency_cache:
                continue
            seen[current] = self.system.decided_values(current)
            order.append(current)
            if len(seen) + len(self._valency_cache) > self.max_configurations:
                raise SearchBudgetExceeded(
                    f"valency analysis exceeded {self.max_configurations} configurations"
                )
            children = [
                self.system.apply(current, event)
                for event in self.system.events(current)
            ]
            succs[current] = children
            for child in children:
                if child not in seen and child not in self._valency_cache:
                    stack.append(child)
        # Propagate decided values backwards until fixpoint.  The cone may
        # contain cycles, so iterate.
        changed = True
        while changed:
            changed = False
            for current in order:
                acc = seen[current]
                for child in succs[current]:
                    child_vals = self._valency_cache.get(child) or seen.get(
                        child, frozenset()
                    )
                    if not child_vals <= acc:
                        acc = acc | child_vals
                if acc != seen[current]:
                    seen[current] = acc
                    changed = True
        self._valency_cache.update(seen)
        return self._valency_cache[config]

    def is_bivalent(self, config: Configuration) -> bool:
        return len(self.valency(config)) >= 2

    def is_univalent(self, config: Configuration) -> bool:
        return len(self.valency(config)) == 1

    def classify_initial(self) -> List[Tuple[Configuration, FrozenSet[Hashable]]]:
        """Valency of every initial configuration."""
        return [
            (config, self.valency(config))
            for config in self.system.initial_configurations()
        ]

    def bivalent_initial_configuration(self) -> Optional[Configuration]:
        """FLP Lemma 2 mechanized: find a bivalent initial configuration.

        For a correct 1-resilient binary consensus protocol one must exist;
        returning None for a protocol claimed correct is itself evidence of
        a validity or resilience defect (e.g. a constant protocol).
        """
        for config, val in self.classify_initial():
            if len(val) >= 2:
                return config
        return None

    def find_agreement_violation(
        self, max_configurations: Optional[int] = None
    ) -> Optional[Configuration]:
        """Search the full reachable space for two processes deciding differently."""
        budget = max_configurations or self.max_configurations
        seen = set()
        queue: deque = deque(self.system.initial_configurations())
        while queue:
            config = queue.popleft()
            if config in seen:
                continue
            seen.add(config)
            if len(seen) > budget:
                raise SearchBudgetExceeded(
                    f"agreement check exceeded {budget} configurations"
                )
            if len(self.system.decided_values(config)) >= 2:
                return config
            for event in self.system.events(config):
                child = self.system.apply(config, event)
                if child not in seen:
                    queue.append(child)
        return None


@dataclass
class DeciderWitness:
    """A configuration from which one process controls the decision.

    Bridgeland–Watro deciders: from ``config``, process ``process`` can on
    its own drive the system to 0-valence via ``schedule_to[0]`` and to
    1-valence via ``schedule_to[1]``.  The survey's Figure 2.  A protocol
    with a reachable decider cannot be 1-resilient: the other processes
    must be able to finish without p, but cannot know which way p decided.
    """

    config: Configuration
    process: ProcessId
    schedule_to: Dict[Hashable, Tuple[Event, ...]]


@dataclass
class StallResult:
    """Outcome of running the FLP stalling adversary.

    ``schedule`` is the bivalence-preserving event sequence constructed;
    ``stages`` counts completed fairness stages (each stage services the
    oldest obligation of one process).  ``stuck_at`` is set when the
    adversary could not preserve bivalence while honouring an obligation —
    for a *correct* protocol this never happens (that is FLP Lemma 3); when
    it does happen the protocol has a hook the resilience analysis can
    exploit, recorded in ``decider``.
    """

    schedule: Tuple[Event, ...]
    final_config: Configuration
    stages: int
    stuck_at: Optional[Configuration] = None
    decider: Optional[DeciderWitness] = None

    @property
    def stayed_bivalent(self) -> bool:
        return self.stuck_at is None


class StallingAdversary:
    """The FLP adversary: keep the configuration bivalent forever, fairly.

    Given a bivalent configuration, repeatedly pick the process whose
    fairness obligation is oldest and search for a finite schedule, ending
    with that obligation's event, that lands in a bivalent configuration
    (FLP Lemma 3 guarantees one exists for correct protocols).  The
    resulting run is admissible — every process keeps taking steps, every
    owed event is eventually performed — yet no process ever decides.
    """

    def __init__(
        self,
        analyzer: ValencyAnalyzer,
        extension_budget: int = 10_000,
    ):
        self.analyzer = analyzer
        self.system = analyzer.system
        self.extension_budget = extension_budget

    def extend_bivalent(
        self, config: Configuration, obligation_process: ProcessId
    ) -> Optional[Tuple[Tuple[Event, ...], Configuration]]:
        """Find a schedule whose last event is owed to ``obligation_process``
        and which leaves the configuration bivalent.

        BFS over schedules; the *final* event applied is always the current
        fairness obligation of the target process at the point of
        application (i.e. its oldest pending event there), so honouring it
        genuinely discharges the obligation.
        """
        queue: deque = deque([(config, ())])
        seen = {config}
        explored = 0
        while queue:
            current, schedule = queue.popleft()
            explored += 1
            if explored > self.extension_budget:
                return None
            owed = self.system.fair_events(current)
            if obligation_process in owed:
                candidate = self.system.apply(current, owed[obligation_process])
                if self.analyzer.is_bivalent(candidate):
                    return schedule + (owed[obligation_process],), candidate
            for event in self.system.events(current):
                child = self.system.apply(current, event)
                if child not in seen and self.analyzer.is_bivalent(child):
                    seen.add(child)
                    queue.append((child, schedule + (event,)))
        return None

    def run(self, start: Configuration, stages: int) -> StallResult:
        """Drive ``stages`` fairness stages from a bivalent configuration."""
        if not self.analyzer.is_bivalent(start):
            raise ValueError("stalling adversary needs a bivalent start configuration")
        config = start
        schedule: Tuple[Event, ...] = ()
        process_order = list(self.system.processes)
        completed = 0
        for stage in range(stages):
            target = process_order[stage % len(process_order)]
            if target not in self.system.fair_events(config):
                # Nothing owed to this process right now (it is quiescent);
                # the obligation is vacuously discharged.
                completed += 1
                continue
            extension = self.extend_bivalent(config, target)
            if extension is None:
                decider = self._diagnose_decider(config)
                return StallResult(
                    schedule=schedule,
                    final_config=config,
                    stages=completed,
                    stuck_at=config,
                    decider=decider,
                )
            ext_schedule, config = extension
            schedule = schedule + ext_schedule
            completed += 1
        return StallResult(schedule=schedule, final_config=config, stages=completed)

    def _diagnose_decider(self, config: Configuration) -> Optional[DeciderWitness]:
        """When stalling fails, look for the decider the proof predicts."""
        for process in self.system.processes:
            schedules: Dict[Hashable, Tuple[Event, ...]] = {}
            for value in self.system.values:
                found = self._solo_schedule_to_valency(config, process, value)
                if found is not None:
                    schedules[value] = found
            if len(schedules) >= 2:
                return DeciderWitness(config, process, schedules)
        return None

    def _solo_schedule_to_valency(
        self, config: Configuration, process: ProcessId, value: Hashable
    ) -> Optional[Tuple[Event, ...]]:
        """Can ``process``, stepping alone, force valency {value}?"""
        queue: deque = deque([(config, ())])
        seen = {config}
        explored = 0
        while queue:
            current, schedule = queue.popleft()
            explored += 1
            if explored > self.extension_budget:
                return None
            if self.analyzer.valency(current) == frozenset([value]):
                return schedule
            for event in self.system.events(current):
                if self.system.owner(event) != process:
                    continue
                child = self.system.apply(current, event)
                if child not in seen:
                    seen.add(child)
                    queue.append((child, schedule + (event,)))
        return None


def find_herlihy_decider(
    analyzer: ValencyAnalyzer,
    max_configurations: int = 100_000,
) -> Optional[Tuple[Configuration, Dict[Event, FrozenSet[Hashable]]]]:
    """Find a *critical* configuration: bivalent, all successors univalent.

    This is Herlihy's notion of decider (survey §2.3): in a wait-free
    consensus protocol, the adversary can always drive the system to such a
    configuration, and case analysis on which pairs of steps commute then
    gives the consensus-number separations.  Returns the configuration and
    the valency of each successor event.
    """
    system = analyzer.system
    seen = set()
    queue: deque = deque(system.initial_configurations())
    while queue:
        config = queue.popleft()
        if config in seen:
            continue
        seen.add(config)
        if len(seen) > max_configurations:
            raise SearchBudgetExceeded(
                f"decider search exceeded {max_configurations} configurations"
            )
        events = list(system.events(config))
        if events and analyzer.is_bivalent(config):
            successor_valencies = {
                event: analyzer.valency(system.apply(config, event))
                for event in events
            }
            if all(len(v) == 1 for v in successor_valencies.values()):
                return config, successor_valencies
        for event in events:
            child = system.apply(config, event)
            if child not in seen:
                queue.append(child)
    return None
