"""Bivalence (valency) arguments, the FLP proof engine.

The survey (§2.2.4) presents the Fischer–Lynch–Paterson proof and its many
descendants (Dolev–Dwork–Stockmeyer, Loui–Abu-Amara, Herlihy,
Bridgeland–Watro, Moran–Wolfstahl) as *bivalence arguments*: label each
reachable configuration with its **valency** — the set of decision values
still reachable from it — and show that a putative fault-tolerant protocol
must (a) have a bivalent initial configuration and (b) admit an admissible
execution that stays bivalent forever, so it never decides.

This module implements that argument generically over a
:class:`DecisionSystem`: any step-deterministic system whose events are
owned by processes and whose configurations expose per-process decisions.
The asynchronous message-passing model (FLP), asynchronous read/write
shared memory (Loui–Abu-Amara) and wait-free object systems (Herlihy) all
instantiate it; see :mod:`repro.asynchronous.flp` and
:mod:`repro.registers.herlihy`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import SearchBudgetExceeded

Configuration = Hashable
Event = Hashable
ProcessId = Hashable


class DecisionSystem(ABC):
    """A step-deterministic decision protocol under adversarial scheduling.

    Configurations are global states; events are atomic steps, each owned
    by one process; applying an event to a configuration yields exactly one
    successor.  Nondeterminism lives entirely in the *order* of events —
    which is the adversary's to choose.  This matches the FLP model (an
    event is "deliver message m to p, who then acts deterministically") and
    the shared-memory model (an event is "p performs its next access").
    """

    @property
    @abstractmethod
    def processes(self) -> Sequence[ProcessId]:
        """The process identifiers."""

    @property
    @abstractmethod
    def values(self) -> Sequence[Hashable]:
        """The possible decision values (usually (0, 1))."""

    @abstractmethod
    def initial_configurations(self) -> Iterable[Configuration]:
        """All initial configurations (one per input assignment)."""

    @abstractmethod
    def events(self, config: Configuration) -> Iterable[Event]:
        """Events applicable in ``config``."""

    @abstractmethod
    def owner(self, event: Event) -> ProcessId:
        """The process that takes the step."""

    @abstractmethod
    def apply(self, config: Configuration, event: Event) -> Configuration:
        """The unique successor configuration."""

    @abstractmethod
    def decisions(self, config: Configuration) -> Mapping[ProcessId, Hashable]:
        """The processes that have irrevocably decided, with their values."""

    def fair_events(self, config: Configuration) -> Mapping[ProcessId, Event]:
        """For each process, the event admissibility owes it next.

        Default: the first applicable event owned by each process (in the
        deterministic iteration order of :meth:`events`).  Asynchronous
        network systems override this to return "deliver the *oldest*
        pending message", which is what makes the stalling adversary's runs
        admissible.
        """
        owed: Dict[ProcessId, Event] = {}
        for event in self.events(config):
            pid = self.owner(event)
            if pid not in owed:
                owed[pid] = event
        return owed

    def decided_values(self, config: Configuration) -> FrozenSet[Hashable]:
        return frozenset(self.decisions(config).values())


@dataclass
class TransitionCache:
    """Memoized ``events``/``apply`` expansion for a :class:`DecisionSystem`.

    The decision-system analyses (valency labelling, agreement search,
    stalling adversaries, wait-freedom verdicts) all walk the same
    configuration graph; this cache is their shared successor oracle, the
    :class:`DecisionSystem` counterpart of
    :class:`repro.core.stategraph.StateGraph`.  Each configuration's full
    ``(event, successor)`` sweep is computed exactly once.
    """

    system: DecisionSystem
    hits: int = 0
    misses: int = 0
    _edges: Dict[Configuration, Tuple[Tuple[Event, Configuration], ...]] = field(
        default_factory=dict, repr=False
    )

    def transitions(
        self, config: Configuration
    ) -> Tuple[Tuple[Event, Configuration], ...]:
        """All ``(event, successor)`` pairs out of ``config``, memoized."""
        edges = self._edges.get(config)
        if edges is None:
            self.misses += 1
            edges = tuple(
                (event, self.system.apply(config, event))
                for event in self.system.events(config)
            )
            self._edges[config] = edges
        else:
            self.hits += 1
        return edges

    def successors(self, config: Configuration) -> Tuple[Configuration, ...]:
        return tuple(child for _event, child in self.transitions(config))

    def apply(self, config: Configuration, event: Event) -> Configuration:
        """The successor through ``event`` (from cache when expanded)."""
        for candidate, child in self.transitions(config):
            if candidate == event:
                return child
        return self.system.apply(config, event)

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "configurations_expanded": len(self._edges),
        }


@dataclass
class ValencyAnalyzer:
    """Computes valencies with global memoization.

    The valency of C is the set of values v such that some configuration
    reachable from C has a process decided on v.  Configurations are
    classified *v-valent* (singleton valency {v}), *bivalent* (≥2 values)
    or *null-valent* (no decision reachable — a protocol bug).

    Labelling is a single forward expansion of the not-yet-cached cone
    followed by one backward pass over its strongly connected components
    in reverse topological order, so whole-space analyses are
    O(configurations + transitions) — not O(configurations × queries).
    """

    system: DecisionSystem
    max_configurations: int = 200_000
    cache: Optional[TransitionCache] = None
    _valency_cache: Dict[Configuration, FrozenSet[Hashable]] = field(
        default_factory=dict
    )

    def __post_init__(self):
        if self.cache is None:
            self.cache = TransitionCache(self.system)

    def transitions(
        self, config: Configuration
    ) -> Tuple[Tuple[Event, Configuration], ...]:
        """Shared memoized successor expansion (see :class:`TransitionCache`)."""
        return self.cache.transitions(config)

    def valency(self, config: Configuration) -> FrozenSet[Hashable]:
        """The valency of ``config`` (memoized over the whole analyzer)."""
        cached = self._valency_cache.get(config)
        if cached is not None:
            return cached
        self._label_from([config])
        return self._valency_cache[config]

    def _label_from(self, roots: Sequence[Configuration]) -> None:
        """Label every configuration in the cones of ``roots``.

        One forward expansion discovers the not-yet-labelled subgraph
        (already-cached configurations act as boundary: their valencies
        are final).  Tarjan's algorithm then emits its strongly connected
        components sinks-first, so a single reverse-topological sweep —
        union of own decided values and all successor valencies —
        computes the exact fixpoint without iteration.
        """
        labels = self._valency_cache
        roots = [r for r in roots if r not in labels]
        if not roots:
            return
        # Forward expansion of the unlabelled cone.
        nodes: Set[Configuration] = set()
        stack: List[Configuration] = list(roots)
        while stack:
            current = stack.pop()
            if current in nodes or current in labels:
                continue
            nodes.add(current)
            if len(nodes) + len(labels) > self.max_configurations:
                raise SearchBudgetExceeded(
                    f"valency analysis exceeded {self.max_configurations} configurations"
                )
            for child in self.cache.successors(current):
                if child not in nodes and child not in labels:
                    stack.append(child)

        # Iterative Tarjan SCC over the new subgraph.  Components pop off
        # in reverse topological order of the condensation, so every
        # cross-edge target is already labelled when its source's
        # component is processed.
        index: Dict[Configuration, int] = {}
        low: Dict[Configuration, int] = {}
        on_stack: Set[Configuration] = set()
        scc_stack: List[Configuration] = []
        counter = 0
        decided = self.system.decided_values
        for root in roots:
            if root in index:
                continue
            # Explicit call stack of (node, successor iterator) frames.
            work: List[Tuple[Configuration, Iterator[Configuration]]] = []
            index[root] = low[root] = counter
            counter += 1
            scc_stack.append(root)
            on_stack.add(root)
            work.append((root, iter(self.cache.successors(root))))
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in nodes:
                        continue  # boundary: already labelled in cache
                    if child not in index:
                        index[child] = low[child] = counter
                        counter += 1
                        scc_stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self.cache.successors(child))))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    # Pop one SCC and label it: union of member decisions
                    # and of every outgoing valency (cache-final by now).
                    component: List[Configuration] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is node or member == node:
                            break
                    valency: FrozenSet[Hashable] = frozenset()
                    for member in component:
                        valency |= decided(member)
                    in_component = set(component)
                    for member in component:
                        for child in self.cache.successors(member):
                            if child in in_component:
                                continue
                            valency |= labels[child]
                    for member in component:
                        labels[member] = valency

    def label_reachable(self) -> Dict[Configuration, FrozenSet[Hashable]]:
        """Valency of *every* reachable configuration, in one linear pass."""
        self._label_from(list(self.system.initial_configurations()))
        return dict(self._valency_cache)

    def is_bivalent(self, config: Configuration) -> bool:
        return len(self.valency(config)) >= 2

    def is_univalent(self, config: Configuration) -> bool:
        return len(self.valency(config)) == 1

    def classify_initial(self) -> List[Tuple[Configuration, FrozenSet[Hashable]]]:
        """Valency of every initial configuration (one batched labelling)."""
        configs = list(self.system.initial_configurations())
        self._label_from(configs)
        return [(config, self._valency_cache[config]) for config in configs]

    def bivalent_initial_configuration(self) -> Optional[Configuration]:
        """FLP Lemma 2 mechanized: find a bivalent initial configuration.

        For a correct 1-resilient binary consensus protocol one must exist;
        returning None for a protocol claimed correct is itself evidence of
        a validity or resilience defect (e.g. a constant protocol).
        """
        for config, val in self.classify_initial():
            if len(val) >= 2:
                return config
        return None

    def find_agreement_violation(
        self, max_configurations: Optional[int] = None
    ) -> Optional[Configuration]:
        """Search the full reachable space for two processes deciding differently."""
        budget = max_configurations or self.max_configurations
        seen = set()
        queue: deque = deque(self.system.initial_configurations())
        while queue:
            config = queue.popleft()
            if config in seen:
                continue
            seen.add(config)
            if len(seen) > budget:
                raise SearchBudgetExceeded(
                    f"agreement check exceeded {budget} configurations"
                )
            if len(self.system.decided_values(config)) >= 2:
                return config
            for child in self.cache.successors(config):
                if child not in seen:
                    queue.append(child)
        return None

    # The survey's name for the same query: a reachable configuration in
    # which two processes have decided differently.
    find_disagreement = find_agreement_violation


@dataclass
class DeciderWitness:
    """A configuration from which one process controls the decision.

    Bridgeland–Watro deciders: from ``config``, process ``process`` can on
    its own drive the system to 0-valence via ``schedule_to[0]`` and to
    1-valence via ``schedule_to[1]``.  The survey's Figure 2.  A protocol
    with a reachable decider cannot be 1-resilient: the other processes
    must be able to finish without p, but cannot know which way p decided.
    """

    config: Configuration
    process: ProcessId
    schedule_to: Dict[Hashable, Tuple[Event, ...]]


@dataclass
class StallResult:
    """Outcome of running the FLP stalling adversary.

    ``schedule`` is the bivalence-preserving event sequence constructed;
    ``stages`` counts completed fairness stages (each stage services the
    oldest obligation of one process).  ``stuck_at`` is set when the
    adversary could not preserve bivalence while honouring an obligation —
    for a *correct* protocol this never happens (that is FLP Lemma 3); when
    it does happen the protocol has a hook the resilience analysis can
    exploit, recorded in ``decider``.
    """

    schedule: Tuple[Event, ...]
    final_config: Configuration
    stages: int
    stuck_at: Optional[Configuration] = None
    decider: Optional[DeciderWitness] = None

    @property
    def stayed_bivalent(self) -> bool:
        return self.stuck_at is None


class StallingAdversary:
    """The FLP adversary: keep the configuration bivalent forever, fairly.

    Given a bivalent configuration, repeatedly pick the process whose
    fairness obligation is oldest and search for a finite schedule, ending
    with that obligation's event, that lands in a bivalent configuration
    (FLP Lemma 3 guarantees one exists for correct protocols).  The
    resulting run is admissible — every process keeps taking steps, every
    owed event is eventually performed — yet no process ever decides.
    """

    def __init__(
        self,
        analyzer: ValencyAnalyzer,
        extension_budget: int = 10_000,
    ):
        self.analyzer = analyzer
        self.system = analyzer.system
        self.extension_budget = extension_budget

    def extend_bivalent(
        self, config: Configuration, obligation_process: ProcessId
    ) -> Optional[Tuple[Tuple[Event, ...], Configuration]]:
        """Find a schedule whose last event is owed to ``obligation_process``
        and which leaves the configuration bivalent.

        BFS over schedules; the *final* event applied is always the current
        fairness obligation of the target process at the point of
        application (i.e. its oldest pending event there), so honouring it
        genuinely discharges the obligation.
        """
        queue: deque = deque([(config, ())])
        seen = {config}
        explored = 0
        while queue:
            current, schedule = queue.popleft()
            explored += 1
            if explored > self.extension_budget:
                return None
            owed = self.system.fair_events(current)
            if obligation_process in owed:
                candidate = self.analyzer.cache.apply(
                    current, owed[obligation_process]
                )
                if self.analyzer.is_bivalent(candidate):
                    return schedule + (owed[obligation_process],), candidate
            for event, child in self.analyzer.transitions(current):
                if child not in seen and self.analyzer.is_bivalent(child):
                    seen.add(child)
                    queue.append((child, schedule + (event,)))
        return None

    def run(self, start: Configuration, stages: int) -> StallResult:
        """Drive ``stages`` fairness stages from a bivalent configuration."""
        if not self.analyzer.is_bivalent(start):
            raise ValueError("stalling adversary needs a bivalent start configuration")
        config = start
        schedule: Tuple[Event, ...] = ()
        process_order = list(self.system.processes)
        completed = 0
        for stage in range(stages):
            target = process_order[stage % len(process_order)]
            if target not in self.system.fair_events(config):
                # Nothing owed to this process right now (it is quiescent);
                # the obligation is vacuously discharged.
                completed += 1
                continue
            extension = self.extend_bivalent(config, target)
            if extension is None:
                decider = self._diagnose_decider(config)
                return StallResult(
                    schedule=schedule,
                    final_config=config,
                    stages=completed,
                    stuck_at=config,
                    decider=decider,
                )
            ext_schedule, config = extension
            schedule = schedule + ext_schedule
            completed += 1
        return StallResult(schedule=schedule, final_config=config, stages=completed)

    def _diagnose_decider(self, config: Configuration) -> Optional[DeciderWitness]:
        """When stalling fails, look for the decider the proof predicts."""
        for process in self.system.processes:
            schedules: Dict[Hashable, Tuple[Event, ...]] = {}
            for value in self.system.values:
                found = self._solo_schedule_to_valency(config, process, value)
                if found is not None:
                    schedules[value] = found
            if len(schedules) >= 2:
                return DeciderWitness(config, process, schedules)
        return None

    def _solo_schedule_to_valency(
        self, config: Configuration, process: ProcessId, value: Hashable
    ) -> Optional[Tuple[Event, ...]]:
        """Can ``process``, stepping alone, force valency {value}?"""
        queue: deque = deque([(config, ())])
        seen = {config}
        explored = 0
        while queue:
            current, schedule = queue.popleft()
            explored += 1
            if explored > self.extension_budget:
                return None
            if self.analyzer.valency(current) == frozenset([value]):
                return schedule
            for event, child in self.analyzer.transitions(current):
                if self.system.owner(event) != process:
                    continue
                if child not in seen:
                    seen.add(child)
                    queue.append((child, schedule + (event,)))
        return None


def find_herlihy_decider(
    analyzer: ValencyAnalyzer,
    max_configurations: int = 100_000,
) -> Optional[Tuple[Configuration, Dict[Event, FrozenSet[Hashable]]]]:
    """Find a *critical* configuration: bivalent, all successors univalent.

    This is Herlihy's notion of decider (survey §2.3): in a wait-free
    consensus protocol, the adversary can always drive the system to such a
    configuration, and case analysis on which pairs of steps commute then
    gives the consensus-number separations.  Returns the configuration and
    the valency of each successor event.
    """
    system = analyzer.system
    seen = set()
    queue: deque = deque(system.initial_configurations())
    while queue:
        config = queue.popleft()
        if config in seen:
            continue
        seen.add(config)
        if len(seen) > max_configurations:
            raise SearchBudgetExceeded(
                f"decider search exceeded {max_configurations} configurations"
            )
        edges = analyzer.transitions(config)
        if edges and analyzer.is_bivalent(config):
            successor_valencies = {
                event: analyzer.valency(child) for event, child in edges
            }
            if all(len(v) == 1 for v in successor_valencies.values()):
                return config, successor_valencies
        for _event, child in edges:
            if child not in seen:
                queue.append(child)
    return None
