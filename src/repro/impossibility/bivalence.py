"""Bivalence (valency) arguments, the FLP proof engine.

The survey (§2.2.4) presents the Fischer–Lynch–Paterson proof and its many
descendants (Dolev–Dwork–Stockmeyer, Loui–Abu-Amara, Herlihy,
Bridgeland–Watro, Moran–Wolfstahl) as *bivalence arguments*: label each
reachable configuration with its **valency** — the set of decision values
still reachable from it — and show that a putative fault-tolerant protocol
must (a) have a bivalent initial configuration and (b) admit an admissible
execution that stays bivalent forever, so it never decides.

This module implements that argument generically over a
:class:`DecisionSystem`: any step-deterministic system whose events are
owned by processes and whose configurations expose per-process decisions.
The asynchronous message-passing model (FLP), asynchronous read/write
shared memory (Loui–Abu-Amara) and wait-free object systems (Herlihy) all
instantiate it; see :mod:`repro.asynchronous.flp` and
:mod:`repro.registers.herlihy`.

Internally every analysis runs over the bit-packed state engine
(:mod:`repro.core.packed`): configurations are interned to dense integer
ids once, adjacency lives in CSR integer rows, valencies are int
bitmasks, and visited sets are flat bitmaps — configurations only appear
at the public API boundary, so hot loops never hash a nested structure
twice.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import SearchBudgetExceeded
from ..core.freeze import register_packed_owner
from ..core.packed import IdFlags, IdToValue, PackedGraph, StateInterner, ValueTable

Configuration = Hashable
Event = Hashable
ProcessId = Hashable


class DecisionSystem(ABC):
    """A step-deterministic decision protocol under adversarial scheduling.

    Configurations are global states; events are atomic steps, each owned
    by one process; applying an event to a configuration yields exactly one
    successor.  Nondeterminism lives entirely in the *order* of events —
    which is the adversary's to choose.  This matches the FLP model (an
    event is "deliver message m to p, who then acts deterministically") and
    the shared-memory model (an event is "p performs its next access").
    """

    @property
    @abstractmethod
    def processes(self) -> Sequence[ProcessId]:
        """The process identifiers."""

    @property
    @abstractmethod
    def values(self) -> Sequence[Hashable]:
        """The possible decision values (usually (0, 1))."""

    @abstractmethod
    def initial_configurations(self) -> Iterable[Configuration]:
        """All initial configurations (one per input assignment)."""

    @abstractmethod
    def events(self, config: Configuration) -> Iterable[Event]:
        """Events applicable in ``config``."""

    @abstractmethod
    def owner(self, event: Event) -> ProcessId:
        """The process that takes the step."""

    @abstractmethod
    def apply(self, config: Configuration, event: Event) -> Configuration:
        """The unique successor configuration."""

    @abstractmethod
    def decisions(self, config: Configuration) -> Mapping[ProcessId, Hashable]:
        """The processes that have irrevocably decided, with their values."""

    def fair_events(self, config: Configuration) -> Mapping[ProcessId, Event]:
        """For each process, the event admissibility owes it next.

        Default: the first applicable event owned by each process (in the
        deterministic iteration order of :meth:`events`).  Asynchronous
        network systems override this to return "deliver the *oldest*
        pending message", which is what makes the stalling adversary's runs
        admissible.
        """
        owed: Dict[ProcessId, Event] = {}
        for event in self.events(config):
            pid = self.owner(event)
            if pid not in owed:
                owed[pid] = event
        return owed

    def decided_values(self, config: Configuration) -> FrozenSet[Hashable]:
        return frozenset(self.decisions(config).values())


@dataclass
class TransitionCache:
    """Memoized ``events``/``apply`` expansion for a :class:`DecisionSystem`.

    The decision-system analyses (valency labelling, agreement search,
    stalling adversaries, wait-freedom verdicts) all walk the same
    configuration graph; this cache is their shared successor oracle, the
    :class:`DecisionSystem` counterpart of
    :class:`repro.core.stategraph.StateGraph`.  Each configuration's full
    ``(event, successor)`` sweep is computed exactly once.

    Storage is packed: an interner assigns each configuration a dense id
    and successor sweeps live as CSR integer rows
    (:class:`~repro.core.packed.PackedGraph`).  The id-level surface
    (:meth:`intern`, :meth:`ensure_expanded`, :meth:`row_bounds`,
    :meth:`decided_values_of`) is what the analyses' hot loops use; the
    configuration-level surface (:meth:`transitions`, :meth:`successors`,
    :meth:`apply`) is preserved for callers and materializes frozen
    states only at the boundary.
    """

    system: DecisionSystem
    hits: int = 0
    misses: int = 0

    # Identity hash so instances can register in the weak owner set.
    __hash__ = object.__hash__

    def __post_init__(self):
        self.interner = StateInterner()
        self.graph = PackedGraph(self.interner)
        self._views: List[Optional[Tuple[Tuple[Event, Configuration], ...]]] = []
        self._decided: List[Optional[FrozenSet[Hashable]]] = []
        register_packed_owner(self)

    def reset_packed_state(self) -> None:
        """Drop every id and row (cascade target of ``clear_intern_table``)."""
        self.interner = StateInterner()
        self.graph = PackedGraph(self.interner)
        self._views = []
        self._decided = []

    # -- id-level surface (hot paths) --------------------------------------

    def intern(self, config: Configuration) -> int:
        """The dense id of ``config`` (its only deep hash in this cache)."""
        return self.interner.intern(config)

    def config_of(self, sid: int) -> Configuration:
        return self.interner.state_of(sid)

    def ensure_expanded(self, sid: int) -> None:
        """Record ``sid``'s successor sweep if absent; count hit/miss."""
        graph = self.graph
        if graph.is_expanded(sid):
            self.hits += 1
            return
        self.misses += 1
        system = self.system
        config = self.interner.state_of(sid)
        intern = self.interner.intern
        events: List[Event] = []
        succ_ids: List[int] = []
        sweep = getattr(system, "sweep_transitions", None)
        if sweep is not None:
            # Bulk hook: one call computes every (event, successor) pair,
            # sharing per-configuration setup across the whole row.
            for event, child in sweep(config):
                events.append(event)
                succ_ids.append(intern(child))
        else:
            for event in system.events(config):
                events.append(event)
                succ_ids.append(intern(system.apply(config, event)))
        graph.add_row(sid, events, succ_ids)

    def row_bounds(self, sid: int) -> Tuple[int, int]:
        """(start, end) offsets of ``sid``'s CSR row (expanding if needed)."""
        self.ensure_expanded(sid)
        return self.graph.row_bounds(sid)

    def successor_ids(self, sid: int):
        self.ensure_expanded(sid)
        return self.graph.successors_ids(sid)

    def arrays(self):
        """The flat CSR internals ``(succ, labels)`` for tight loops."""
        return self.graph._succ, self.graph._labels

    def apply_id(self, sid: int, event: Event) -> Optional[int]:
        """The successor id through ``event``, or None if not applicable."""
        start, end = self.row_bounds(sid)
        succ, labels = self.arrays()
        for i in range(start, end):
            if labels[i] == event:
                return succ[i]
        return None

    def decided_values_of(self, sid: int) -> FrozenSet[Hashable]:
        """``system.decided_values`` memoized per id."""
        memo = self._decided
        if sid >= len(memo):
            memo.extend([None] * (sid + 1 - len(memo)))
        vals = memo[sid]
        if vals is None:
            vals = self.system.decided_values(self.interner.state_of(sid))
            memo[sid] = vals
        return vals

    # -- configuration-level surface ---------------------------------------

    def transitions(
        self, config: Configuration
    ) -> Tuple[Tuple[Event, Configuration], ...]:
        """All ``(event, successor)`` pairs out of ``config``, memoized."""
        return self.transitions_of(self.interner.intern(config))

    def transitions_of(
        self, sid: int
    ) -> Tuple[Tuple[Event, Configuration], ...]:
        """The view-tuple form of ``sid``'s row (built once per id)."""
        views = self._views
        if sid < len(views):
            view = views[sid]
            if view is not None:
                self.hits += 1
                return view
        else:
            views.extend([None] * (sid + 1 - len(views)))
        self.ensure_expanded(sid)
        start, end = self.graph.row_bounds(sid)
        succ, labels = self.graph._succ, self.graph._labels
        state_of = self.interner.state_of
        view = tuple(
            (labels[i], state_of(succ[i])) for i in range(start, end)
        )
        views[sid] = view
        return view

    def successors(self, config: Configuration) -> Tuple[Configuration, ...]:
        return tuple(child for _event, child in self.transitions(config))

    def apply(self, config: Configuration, event: Event) -> Configuration:
        """The successor through ``event`` (from cache when expanded)."""
        for candidate, child in self.transitions(config):
            if candidate == event:
                return child
        return self.system.apply(config, event)

    @property
    def stats(self) -> Dict[str, Any]:
        packed = self.graph.stats
        return {
            "hits": self.hits,
            "misses": self.misses,
            "configurations_expanded": self.graph.rows,
            "states_interned": packed["states_interned"],
            "packed_bytes": packed["packed_bytes"],
        }


class _ValencyView(Mapping):
    """Read-through mapping {configuration: valency} over the packed
    mask table — what ``ValencyAnalyzer._valency_cache`` now is.

    Labels live as int masks indexed by state id; this view materializes
    frozen configurations and frozensets only when someone actually reads
    the mapping, so the labelling pass never pays per-configuration dict
    inserts.
    """

    def __init__(self, analyzer: "ValencyAnalyzer"):
        self._analyzer = analyzer

    def _sid_of(self, config: Configuration) -> Optional[int]:
        return self._analyzer.cache.interner.id_of(config)

    def __contains__(self, config: object) -> bool:
        sid = self._sid_of(config)
        return sid is not None and self._analyzer._masks.get(sid) >= 0

    def __getitem__(self, config: Configuration) -> FrozenSet[Hashable]:
        sid = self._sid_of(config)
        if sid is None:
            raise KeyError(config)
        mask = self._analyzer._masks.get(sid)
        if mask < 0:
            raise KeyError(config)
        return self._analyzer._value_table.set_of(mask)

    def get(self, config: Configuration, default=None):
        sid = self._sid_of(config)
        if sid is None:
            return default
        mask = self._analyzer._masks.get(sid)
        if mask < 0:
            return default
        return self._analyzer._value_table.set_of(mask)

    def __iter__(self):
        config_of = self._analyzer.cache.config_of
        return (config_of(sid) for sid, _mask in self._analyzer._masks.items())

    def __len__(self) -> int:
        return len(self._analyzer._masks)


@dataclass
class ValencyAnalyzer:
    """Computes valencies with global memoization.

    The valency of C is the set of values v such that some configuration
    reachable from C has a process decided on v.  Configurations are
    classified *v-valent* (singleton valency {v}), *bivalent* (≥2 values)
    or *null-valent* (no decision reachable — a protocol bug).

    Labelling is a single forward expansion of the not-yet-cached cone
    followed by one backward pass over its strongly connected components
    in reverse topological order, so whole-space analyses are
    O(configurations + transitions) — not O(configurations × queries).
    Both passes run over dense integer ids: valencies are stored as int
    bitmasks in a flat array indexed by configuration id, and the SCC
    union is bitwise-or on machine words.
    """

    system: DecisionSystem
    max_configurations: int = 200_000
    cache: Optional[TransitionCache] = None
    _valency_cache: Dict[Configuration, FrozenSet[Hashable]] = field(
        default_factory=dict
    )

    __hash__ = object.__hash__

    def __post_init__(self):
        if self.cache is None:
            self.cache = TransitionCache(self.system)
        self._masks = IdToValue()
        self._value_table = ValueTable(self.system.values)
        # The config-keyed label mapping is a read-through view over the
        # mask table (kept as a field for API/debugging compatibility).
        self._valency_cache = _ValencyView(self)
        register_packed_owner(self)

    def reset_packed_state(self) -> None:
        """Drop id-indexed labels (cascade target of ``clear_intern_table``)."""
        self._masks = IdToValue()

    def transitions(
        self, config: Configuration
    ) -> Tuple[Tuple[Event, Configuration], ...]:
        """Shared memoized successor expansion (see :class:`TransitionCache`)."""
        return self.cache.transitions(config)

    # -- labelling ----------------------------------------------------------

    def valency(self, config: Configuration) -> FrozenSet[Hashable]:
        """The valency of ``config`` (memoized over the whole analyzer)."""
        sid = self.cache.intern(config)
        mask = self._masks.get(sid)
        if mask < 0:
            self._label_ids([sid])
            mask = self._masks.get(sid)
        return self._value_table.set_of(mask)

    def valency_mask(self, config: Configuration) -> int:
        """The valency of ``config`` as an int bitmask over
        ``system.values`` (bit i = i-th distinct value labelled)."""
        sid = self.cache.intern(config)
        return self._mask_of_id(sid)

    def _mask_of_id(self, sid: int) -> int:
        mask = self._masks.get(sid)
        if mask < 0:
            self._label_ids([sid])
            mask = self._masks.get(sid)
        return mask

    def _label_from(self, roots: Sequence[Configuration]) -> None:
        intern = self.cache.intern
        self._label_ids([intern(config) for config in roots])

    def _label_ids(self, roots: Sequence[int]) -> None:
        """Label every configuration in the cones of the ``roots`` ids.

        One forward expansion discovers the not-yet-labelled subgraph
        (already-labelled ids act as boundary: their valencies are
        final).  Tarjan's algorithm then emits its strongly connected
        components sinks-first, so a single reverse-topological sweep —
        union of own decided-value masks and all successor masks —
        computes the exact fixpoint without iteration.
        """
        cache = self.cache
        masks = self._masks
        roots = [sid for sid in roots if masks.get(sid) < 0]
        if not roots:
            return
        # One fused pass: iterative Tarjan SCC over the unlabelled cone,
        # expanding rows lazily the first time a node is visited.
        # Components pop off in reverse topological order of the
        # condensation, so every cross-edge target is already labelled
        # when its source's component is processed.  All bookkeeping is
        # raw and id-indexed — index/lowlink are flat lists, the
        # recursion stack holds [id, cursor, row_end] frames over the
        # CSR row offsets, and valencies union as int masks.  A child is
        # *boundary* (valency final, do not recurse) exactly when its
        # mask is already set and it is not part of this pass.
        graph = cache.graph
        ensure_expanded = cache.ensure_expanded
        mvals = masks._vals
        succ = graph._succ
        gstart = graph._start
        gend = graph._end
        total = len(cache.interner)
        index: List[int] = [-1] * total
        low: List[int] = [0] * total
        on_stack = bytearray(total)
        scc_stack: List[int] = []
        counter = 0
        new_count = 0
        already = len(masks)
        max_configurations = self.max_configurations
        value_table = self._value_table
        decided_values_of = cache.decided_values_of

        def visit(sid: int) -> None:
            # First touch of ``sid`` in this pass: budget, expand, index.
            nonlocal counter, new_count, total
            new_count += 1
            if new_count + already > max_configurations:
                raise SearchBudgetExceeded(
                    f"valency analysis exceeded {max_configurations} configurations"
                )
            ensure_expanded(sid)
            grown = len(cache.interner)
            if grown > total:
                index.extend([-1] * (grown - total))
                low.extend([0] * (grown - total))
                on_stack.extend(b"\x00" * (grown - total))
                total = grown
            index[sid] = low[sid] = counter
            counter += 1
            scc_stack.append(sid)
            on_stack[sid] = 1

        for root in roots:
            if index[root] >= 0 or (root < len(mvals) and mvals[root] >= 0):
                continue
            visit(root)
            work: List[List[int]] = [[root, gstart[root], gend[root]]]
            while work:
                frame = work[-1]
                node, cursor, row_end = frame
                advanced = False
                while cursor < row_end:
                    child = succ[cursor]
                    cursor += 1
                    if index[child] < 0:
                        if child < len(mvals) and mvals[child] >= 0:
                            continue  # boundary: labelled before this pass
                        frame[1] = cursor
                        visit(child)
                        work.append([child, gstart[child], gend[child]])
                        advanced = True
                        break
                    if on_stack[child] and index[child] < low[node]:
                        low[node] = index[child]
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low[node] < low[parent]:
                        low[parent] = low[node]
                if low[node] == index[node]:
                    # Pop one SCC and label it: union of member decision
                    # masks and of every outgoing mask (final by now).
                    component: List[int] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack[member] = 0
                        component.append(member)
                        if member == node:
                            break
                    valency = 0
                    for member in component:
                        vals = decided_values_of(member)
                        if vals:
                            valency |= value_table.mask_of(vals)
                    if len(component) == 1:
                        sole = component[0]
                        for i in range(gstart[sole], gend[sole]):
                            child = succ[i]
                            if child != sole:
                                valency |= mvals[child]
                    else:
                        in_component = set(component)
                        for member in component:
                            for i in range(gstart[member], gend[member]):
                                child = succ[i]
                                if child in in_component:
                                    continue
                                valency |= mvals[child]
                    for member in component:
                        masks.set(member, valency)
                    mvals = masks._vals

    def label_reachable(self) -> Dict[Configuration, FrozenSet[Hashable]]:
        """Valency of *every* reachable configuration, in one linear pass."""
        self._label_from(list(self.system.initial_configurations()))
        return dict(self._valency_cache)

    def is_bivalent(self, config: Configuration) -> bool:
        return self._mask_of_id(self.cache.intern(config)).bit_count() >= 2

    def is_univalent(self, config: Configuration) -> bool:
        return self._mask_of_id(self.cache.intern(config)).bit_count() == 1

    def classify_initial(self) -> List[Tuple[Configuration, FrozenSet[Hashable]]]:
        """Valency of every initial configuration (one batched labelling)."""
        intern = self.cache.intern
        ids = [intern(config) for config in self.system.initial_configurations()]
        self._label_ids(ids)
        config_of = self.cache.config_of
        set_of = self._value_table.set_of
        masks = self._masks
        return [(config_of(sid), set_of(masks.get(sid))) for sid in ids]

    def bivalent_initial_configuration(self) -> Optional[Configuration]:
        """FLP Lemma 2 mechanized: find a bivalent initial configuration.

        For a correct 1-resilient binary consensus protocol one must exist;
        returning None for a protocol claimed correct is itself evidence of
        a validity or resilience defect (e.g. a constant protocol).
        """
        for config, val in self.classify_initial():
            if len(val) >= 2:
                return config
        return None

    def find_agreement_violation(
        self, max_configurations: Optional[int] = None
    ) -> Optional[Configuration]:
        """Search the full reachable space for two processes deciding differently."""
        budget = max_configurations or self.max_configurations
        cache = self.cache
        graph = cache.graph
        ensure_expanded = cache.ensure_expanded
        decided_values_of = cache.decided_values_of
        intern = cache.intern
        seen = bytearray(len(cache.interner))
        seen_count = 0
        queue: deque = deque(
            intern(config) for config in self.system.initial_configurations()
        )
        succ = graph._succ
        gstart = graph._start
        gend = graph._end
        while queue:
            sid = queue.popleft()
            if sid < len(seen) and seen[sid]:
                continue
            if sid >= len(seen):
                seen.extend(b"\x00" * (sid + 1 - len(seen)))
            seen[sid] = 1
            seen_count += 1
            if seen_count > budget:
                raise SearchBudgetExceeded(
                    f"agreement check exceeded {budget} configurations"
                )
            if len(decided_values_of(sid)) >= 2:
                return cache.config_of(sid)
            ensure_expanded(sid)
            for i in range(gstart[sid], gend[sid]):
                child = succ[i]
                if child >= len(seen) or not seen[child]:
                    queue.append(child)
        return None

    # The survey's name for the same query: a reachable configuration in
    # which two processes have decided differently.
    find_disagreement = find_agreement_violation


@dataclass
class DeciderWitness:
    """A configuration from which one process controls the decision.

    Bridgeland–Watro deciders: from ``config``, process ``process`` can on
    its own drive the system to 0-valence via ``schedule_to[0]`` and to
    1-valence via ``schedule_to[1]``.  The survey's Figure 2.  A protocol
    with a reachable decider cannot be 1-resilient: the other processes
    must be able to finish without p, but cannot know which way p decided.
    """

    config: Configuration
    process: ProcessId
    schedule_to: Dict[Hashable, Tuple[Event, ...]]


@dataclass
class StallResult:
    """Outcome of running the FLP stalling adversary.

    ``schedule`` is the bivalence-preserving event sequence constructed;
    ``stages`` counts completed fairness stages (each stage services the
    oldest obligation of one process).  ``stuck_at`` is set when the
    adversary could not preserve bivalence while honouring an obligation —
    for a *correct* protocol this never happens (that is FLP Lemma 3); when
    it does happen the protocol has a hook the resilience analysis can
    exploit, recorded in ``decider``.
    """

    schedule: Tuple[Event, ...]
    final_config: Configuration
    stages: int
    stuck_at: Optional[Configuration] = None
    decider: Optional[DeciderWitness] = None

    @property
    def stayed_bivalent(self) -> bool:
        return self.stuck_at is None


class StallingAdversary:
    """The FLP adversary: keep the configuration bivalent forever, fairly.

    Given a bivalent configuration, repeatedly pick the process whose
    fairness obligation is oldest and search for a finite schedule, ending
    with that obligation's event, that lands in a bivalent configuration
    (FLP Lemma 3 guarantees one exists for correct protocols).  The
    resulting run is admissible — every process keeps taking steps, every
    owed event is eventually performed — yet no process ever decides.
    """

    def __init__(
        self,
        analyzer: ValencyAnalyzer,
        extension_budget: int = 10_000,
    ):
        self.analyzer = analyzer
        self.system = analyzer.system
        self.extension_budget = extension_budget

    def _bivalent_id(self, sid: int) -> bool:
        return self.analyzer._mask_of_id(sid).bit_count() >= 2

    def extend_bivalent(
        self, config: Configuration, obligation_process: ProcessId
    ) -> Optional[Tuple[Tuple[Event, ...], Configuration]]:
        """Find a schedule whose last event is owed to ``obligation_process``
        and which leaves the configuration bivalent.

        BFS over schedules; the *final* event applied is always the current
        fairness obligation of the target process at the point of
        application (i.e. its oldest pending event there), so honouring it
        genuinely discharges the obligation.  The search runs over dense
        ids; only the returned landing configuration is materialized.
        """
        analyzer = self.analyzer
        cache = analyzer.cache
        graph = cache.graph
        system = self.system
        start_id = cache.intern(config)
        queue: deque = deque([(start_id, ())])
        seen = IdFlags()
        seen.add(start_id)
        explored = 0
        while queue:
            sid, schedule = queue.popleft()
            explored += 1
            if explored > self.extension_budget:
                return None
            owed = system.fair_events(cache.config_of(sid))
            if obligation_process in owed:
                obligation = owed[obligation_process]
                candidate = cache.apply_id(sid, obligation)
                if candidate is None:
                    candidate = cache.intern(
                        system.apply(cache.config_of(sid), obligation)
                    )
                if self._bivalent_id(candidate):
                    return (
                        schedule + (obligation,),
                        cache.config_of(candidate),
                    )
            cache.ensure_expanded(sid)
            rstart, rend = graph.row_bounds(sid)
            succ, labels = graph._succ, graph._labels
            for i in range(rstart, rend):
                child = succ[i]
                if child not in seen and self._bivalent_id(child):
                    seen.add(child)
                    queue.append((child, schedule + (labels[i],)))
        return None

    def run(self, start: Configuration, stages: int) -> StallResult:
        """Drive ``stages`` fairness stages from a bivalent configuration."""
        if not self.analyzer.is_bivalent(start):
            raise ValueError("stalling adversary needs a bivalent start configuration")
        config = start
        schedule: Tuple[Event, ...] = ()
        process_order = list(self.system.processes)
        completed = 0
        for stage in range(stages):
            target = process_order[stage % len(process_order)]
            if target not in self.system.fair_events(config):
                # Nothing owed to this process right now (it is quiescent);
                # the obligation is vacuously discharged.
                completed += 1
                continue
            extension = self.extend_bivalent(config, target)
            if extension is None:
                decider = self._diagnose_decider(config)
                return StallResult(
                    schedule=schedule,
                    final_config=config,
                    stages=completed,
                    stuck_at=config,
                    decider=decider,
                )
            ext_schedule, config = extension
            schedule = schedule + ext_schedule
            completed += 1
        return StallResult(schedule=schedule, final_config=config, stages=completed)

    def _diagnose_decider(self, config: Configuration) -> Optional[DeciderWitness]:
        """When stalling fails, look for the decider the proof predicts."""
        for process in self.system.processes:
            schedules: Dict[Hashable, Tuple[Event, ...]] = {}
            for value in self.system.values:
                found = self._solo_schedule_to_valency(config, process, value)
                if found is not None:
                    schedules[value] = found
            if len(schedules) >= 2:
                return DeciderWitness(config, process, schedules)
        return None

    def _solo_schedule_to_valency(
        self, config: Configuration, process: ProcessId, value: Hashable
    ) -> Optional[Tuple[Event, ...]]:
        """Can ``process``, stepping alone, force valency {value}?"""
        analyzer = self.analyzer
        cache = analyzer.cache
        graph = cache.graph
        system = self.system
        target_mask = analyzer._value_table.bit_of(value)
        start_id = cache.intern(config)
        queue: deque = deque([(start_id, ())])
        seen = IdFlags()
        seen.add(start_id)
        explored = 0
        while queue:
            sid, schedule = queue.popleft()
            explored += 1
            if explored > self.extension_budget:
                return None
            if analyzer._mask_of_id(sid) == target_mask:
                return schedule
            cache.ensure_expanded(sid)
            rstart, rend = graph.row_bounds(sid)
            succ, labels = graph._succ, graph._labels
            for i in range(rstart, rend):
                event = labels[i]
                if system.owner(event) != process:
                    continue
                child = succ[i]
                if child not in seen:
                    seen.add(child)
                    queue.append((child, schedule + (event,)))
        return None


def find_herlihy_decider(
    analyzer: ValencyAnalyzer,
    max_configurations: int = 100_000,
) -> Optional[Tuple[Configuration, Dict[Event, FrozenSet[Hashable]]]]:
    """Find a *critical* configuration: bivalent, all successors univalent.

    This is Herlihy's notion of decider (survey §2.3): in a wait-free
    consensus protocol, the adversary can always drive the system to such a
    configuration, and case analysis on which pairs of steps commute then
    gives the consensus-number separations.  Returns the configuration and
    the valency of each successor event.
    """
    system = analyzer.system
    cache = analyzer.cache
    graph = cache.graph
    value_table = analyzer._value_table
    seen = IdFlags()
    queue: deque = deque(
        cache.intern(config) for config in system.initial_configurations()
    )
    while queue:
        sid = queue.popleft()
        if not seen.add(sid):
            continue
        if len(seen) > max_configurations:
            raise SearchBudgetExceeded(
                f"decider search exceeded {max_configurations} configurations"
            )
        cache.ensure_expanded(sid)
        start, end = graph.row_bounds(sid)
        succ, labels = graph._succ, graph._labels
        if start != end and analyzer._mask_of_id(sid).bit_count() >= 2:
            child_masks = [
                analyzer._mask_of_id(succ[i]) for i in range(start, end)
            ]
            if all(mask.bit_count() == 1 for mask in child_masks):
                successor_valencies = {
                    labels[start + offset]: value_table.set_of(mask)
                    for offset, mask in enumerate(child_masks)
                }
                return cache.config_of(sid), successor_valencies
        for i in range(start, end):
            child = succ[i]
            if child not in seen:
                queue.append(child)
    return None
