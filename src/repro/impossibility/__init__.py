"""Mechanized proof-technique engines and result certificates.

The survey's §3.1 catalogues the technique families behind all hundred
proofs; this subpackage implements the generic ones:

* :mod:`~repro.impossibility.pigeonhole` — value-counting collisions;
* :mod:`~repro.impossibility.bivalence` — valency analysis and the FLP
  stalling adversary (also used for shared-memory and wait-free results);
* :mod:`~repro.impossibility.chains` — single-change chain builders;
* :mod:`~repro.impossibility.certificate` — machine-checked certificates.

Model-specific engines (scenario splicing for Byzantine bounds, diagram
stretching for timing bounds, symmetry for anonymous rings) live alongside
their models in :mod:`repro.consensus`, :mod:`repro.clocks` and
:mod:`repro.rings`.
"""

from .bivalence import (
    DecisionSystem,
    DeciderWitness,
    StallResult,
    StallingAdversary,
    TransitionCache,
    ValencyAnalyzer,
    find_herlihy_decider,
)
from .certificate import (
    BoundCertificate,
    CounterexampleCertificate,
    FailureWitness,
    ImpossibilityCertificate,
)
from .chains import (
    chain_link_indices,
    find_changing_link,
    input_vector_chain,
    matrix_flip_chain,
    verify_chain,
)
from .pigeonhole import (
    collisions,
    first_collision,
    guaranteed_collision_count,
    incompatible_collision,
)

__all__ = [
    "DecisionSystem",
    "TransitionCache",
    "ValencyAnalyzer",
    "StallingAdversary",
    "StallResult",
    "DeciderWitness",
    "find_herlihy_decider",
    "ImpossibilityCertificate",
    "CounterexampleCertificate",
    "BoundCertificate",
    "FailureWitness",
    "collisions",
    "first_collision",
    "guaranteed_collision_count",
    "incompatible_collision",
    "input_vector_chain",
    "matrix_flip_chain",
    "chain_link_indices",
    "verify_chain",
    "find_changing_link",
]
