"""Scenario arguments: the Fischer–Lynch–Merritt ring splice (§2.2.1).

The survey's favourite proof ("the most pleasing proof I know") that
Byzantine agreement needs n > 3t: take any claimed solution, join *two
copies* of it into a ring, run the ring fault-free, and read off three
genuine executions of the real system in which some correctness property
must fail.

This module mechanizes the argument as a constructive adversary.  Given an
arbitrary ``n``-process protocol and a partition of the processes into
three groups A, B, C each of size <= t:

1. :func:`run_spliced_ring` builds the hexagon — six group-copies
   ``A0 B0 C0 A1 B1 C1`` in a ring, where copy-0 processes get input 0 and
   copy-1 processes input 1 — and runs it fault-free, recording every
   message.

2. :func:`byzantine_scenarios` turns the recording into three concrete
   executions of the *real* n-process system, each with one group
   Byzantine (replaying the spliced messages via
   :class:`~repro.consensus.synchronous.ScriptedByzantine`):

   * scenario "C faulty": honest A, B start with 0 — validity forces 0;
   * scenario "A faulty": honest B, C start with 1 — validity forces 1;
   * scenario "B faulty": honest A (input 0) and C (input 1) — agreement
     forces equal decisions.

   By construction the honest views in these runs equal the corresponding
   hexagon views (the engine checks this), so the decisions are those of
   the hexagon nodes — and A0's decision cannot be 0, equal to C1's, and
   have C1's be 1.  :func:`flm_certificate` finds the property that breaks
   for the protocol under test and packages the witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ModelError
from ..impossibility.certificate import (
    FailureWitness,
    ImpossibilityCertificate,
)
from .synchronous import (
    Message,
    Pid,
    ProcessView,
    Round,
    ScriptedByzantine,
    SyncProtocol,
    SyncRun,
    run_synchronous,
)

Copy = int  # 0 or 1
Node = Tuple[Pid, Copy]


def balanced_three_partition(n: int) -> Tuple[Tuple[Pid, ...], ...]:
    """Split pids 0..n-1 into three contiguous groups of near-equal size."""
    if n < 3:
        raise ModelError("need at least three processes to form three groups")
    base, extra = divmod(n, 3)
    sizes = [base + (1 if i < extra else 0) for i in range(3)]
    groups: List[Tuple[Pid, ...]] = []
    start = 0
    for size in sizes:
        groups.append(tuple(range(start, start + size)))
        start += size
    return tuple(groups)


def _group_of(pid: Pid, groups: Sequence[Sequence[Pid]]) -> int:
    for g, members in enumerate(groups):
        if pid in members:
            return g
    raise ModelError(f"pid {pid} not in any group")


def _dest_copy(src_group: int, dst_group: int, src_copy: Copy) -> Copy:
    """Which copy of the destination group a spliced message lands in.

    The six group-copies form the ring A0 B0 C0 A1 B1 C1: crossing the
    A–C boundary switches copies; all other group crossings (and
    intra-group messages) stay within the copy.
    """
    if src_group == dst_group:
        return src_copy
    if {src_group, dst_group} == {0, 2}:
        return 1 - src_copy
    return src_copy


@dataclass
class SplicedRun:
    """The fault-free execution of the doubled ring."""

    protocol_name: str
    n: int
    t: int
    groups: Tuple[Tuple[Pid, ...], ...]
    inputs: Dict[Node, Hashable]
    rounds_run: int
    decisions: Dict[Node, Optional[Hashable]]
    views: Dict[Node, ProcessView]
    messages: Dict[Tuple[Round, Node, Node], Message]

    def sent_from_to(self, rnd: Round, src: Node, dst: Node) -> Optional[Message]:
        return self.messages.get((rnd, src, dst))


def run_spliced_ring(
    protocol: SyncProtocol,
    n: int,
    t: int,
    groups: Optional[Sequence[Sequence[Pid]]] = None,
    value_low: Hashable = 0,
    value_high: Hashable = 1,
) -> SplicedRun:
    """Run two spliced copies of the protocol, fault-free.

    Every process instance believes it is in an ordinary ``n``-process
    system; the splice only redirects *where* cross-group messages land.
    """
    groups = tuple(tuple(g) for g in (groups or balanced_three_partition(n)))
    group_index = {pid: _group_of(pid, groups) for pid in range(n)}
    inputs: Dict[Node, Hashable] = {}
    processes: Dict[Node, object] = {}
    spawn_tagged = getattr(protocol, "spawn_tagged", None)
    for copy in (0, 1):
        value = value_low if copy == 0 else value_high
        for pid in range(n):
            inputs[(pid, copy)] = value
            if spawn_tagged is not None:
                # Randomized protocols: the two copies of a role must draw
                # independent coins, and the scenario extraction must be
                # able to reuse exactly the right copy's coin sequence.
                processes[(pid, copy)] = spawn_tagged(pid, n, t, value, copy)
            else:
                processes[(pid, copy)] = protocol.spawn(pid, n, t, value)

    total_rounds = protocol.rounds(n, t)
    messages: Dict[Tuple[Round, Node, Node], Message] = {}
    view_rounds: Dict[Node, List[Dict[Pid, Message]]] = {
        node: [] for node in processes
    }

    for rnd in range(1, total_rounds + 1):
        outbox: Dict[Tuple[Node, Node], Message] = {}
        for (pid, copy), proc in processes.items():
            src_group = group_index[pid]
            for dest in range(n):
                if dest == pid:
                    continue
                dst_copy = _dest_copy(src_group, group_index[dest], copy)
                msg = proc.message_to(rnd, dest)
                if msg is not None:
                    outbox[((pid, copy), (dest, dst_copy))] = msg
        for (src, dst), msg in outbox.items():
            messages[(rnd, src, dst)] = msg
        for (pid, copy), proc in processes.items():
            received: Dict[Pid, Message] = {}
            for ((src_pid, src_copy), (dst_pid, dst_copy)), msg in outbox.items():
                if (dst_pid, dst_copy) == (pid, copy):
                    received[src_pid] = msg
            view_rounds[(pid, copy)].append(received)
            proc.receive(rnd, received)

    decisions = {node: proc.decision() for node, proc in processes.items()}
    views = {
        node: ProcessView(node[0], inputs[node], tuple(view_rounds[node]))
        for node in processes
    }
    return SplicedRun(
        protocol_name=protocol.name,
        n=n,
        t=t,
        groups=groups,
        inputs=inputs,
        rounds_run=total_rounds,
        decisions=decisions,
        views=views,
        messages=messages,
    )


class _TaggedSpawnShim(SyncProtocol):
    """Spawns a randomized protocol's processes with the hexagon-copy tags
    the scenario requires, so honest coin sequences match their hexagon
    counterparts exactly (faulty processes' tags are irrelevant)."""

    def __init__(self, protocol: SyncProtocol, honest_copy_of: Mapping[Pid, Copy]):
        self._protocol = protocol
        self._copies = dict(honest_copy_of)
        self.name = protocol.name

    def rounds(self, n: int, t: int) -> int:
        return self._protocol.rounds(n, t)

    def spawn(self, pid, n, t, input_value):
        tag = self._copies.get(pid, 0)
        return self._protocol.spawn_tagged(pid, n, t, input_value, tag)


@dataclass
class Scenario:
    """One real execution extracted from the splice."""

    name: str
    faulty_group: int
    run: SyncRun
    honest_copy_of: Dict[Pid, Copy]
    requirement: str  # human-readable property this run must satisfy
    holds: bool


def _script_for_faulty_group(
    spliced: SplicedRun,
    faulty_group: int,
    honest_copy_of: Mapping[Pid, Copy],
) -> Dict[Tuple[Round, Pid, Pid], Message]:
    """Messages the Byzantine group must replay so every honest process sees
    exactly its hexagon view."""
    groups = spliced.groups
    group_index = {pid: _group_of(pid, groups) for pid in range(spliced.n)}
    script: Dict[Tuple[Round, Pid, Pid], Message] = {}
    for rnd in range(1, spliced.rounds_run + 1):
        for src in groups[faulty_group]:
            for dest in range(spliced.n):
                if dest == src or group_index[dest] == faulty_group:
                    continue
                dest_copy = honest_copy_of[dest]
                # Which copy of the faulty group feeds this honest node in
                # the hexagon?  The copy whose messages land in dest_copy.
                for src_copy in (0, 1):
                    if _dest_copy(group_index[src], group_index[dest], src_copy) == dest_copy:
                        msg = spliced.sent_from_to(
                            rnd, (src, src_copy), (dest, dest_copy)
                        )
                        if msg is not None:
                            script[(rnd, src, dest)] = msg
    return script


def byzantine_scenarios(
    protocol: SyncProtocol,
    spliced: SplicedRun,
) -> List[Scenario]:
    """Extract the three real executions and evaluate their requirements."""
    groups = spliced.groups
    n, t = spliced.n, spliced.t
    plans = [
        # (name, faulty group, honest copies, requirement checker)
        ("C-faulty: honest A,B all start 0", 2,
         {pid: 0 for g in (0, 1) for pid in groups[g]},
         "validity-0"),
        ("A-faulty: honest B,C all start 1", 0,
         {pid: 1 for g in (1, 2) for pid in groups[g]},
         "validity-1"),
        ("B-faulty: honest A starts 0, honest C starts 1", 1,
         {**{pid: 0 for pid in groups[0]}, **{pid: 1 for pid in groups[2]}},
         "agreement"),
    ]
    scenarios: List[Scenario] = []
    for name, faulty_group, honest_copy_of, requirement in plans:
        inputs = [
            spliced.inputs[(pid, honest_copy_of[pid])]
            if pid in honest_copy_of
            else 0  # faulty processes' inputs are irrelevant
            for pid in range(n)
        ]
        script = _script_for_faulty_group(spliced, faulty_group, honest_copy_of)
        adversary = ScriptedByzantine(groups[faulty_group], script)
        runner = protocol
        if getattr(protocol, "spawn_tagged", None) is not None:
            runner = _TaggedSpawnShim(protocol, honest_copy_of)
        run = run_synchronous(runner, inputs, adversary=adversary, t=t,
                              record_trace=False)
        # Sanity: every honest process's view matches its hexagon node.
        for pid, copy in honest_copy_of.items():
            if run.views[pid].key()[1:] != spliced.views[(pid, copy)].key()[1:]:
                raise ModelError(
                    f"splice engine error: view of honest {pid} diverged "
                    f"from hexagon node {(pid, copy)} in scenario {name!r}"
                )
        holds = _requirement_holds(run, requirement, honest_copy_of)
        scenarios.append(
            Scenario(name, faulty_group, run, dict(honest_copy_of),
                     requirement, holds)
        )
    return scenarios


def _requirement_holds(run: SyncRun, requirement: str,
                       honest_copy_of: Mapping[Pid, Copy]) -> bool:
    decisions = [run.decisions[pid] for pid in honest_copy_of]
    if any(d is None for d in decisions):
        return False  # termination is part of every requirement
    if requirement == "validity-0":
        return all(d == 0 for d in decisions)
    if requirement == "validity-1":
        return all(d == 1 for d in decisions)
    if requirement == "agreement":
        return len(set(decisions)) == 1
    raise ModelError(f"unknown requirement {requirement!r}")


def flm_certificate(
    protocol: SyncProtocol, n: int, t: int
) -> ImpossibilityCertificate:
    """Defeat a claimed n-process, t-fault Byzantine agreement protocol
    with n <= 3t, by the ring-splice argument.

    Returns a certificate whose witnesses are the scenarios whose
    requirements failed.  Raises :class:`ModelError` if all three scenarios
    somehow pass (impossible — the hexagon constraints are contradictory —
    so it would indicate an engine bug) or if n > 3t (outside the theorem).
    """
    if n > 3 * t:
        raise ModelError(
            f"n={n}, t={t} is outside the impossibility region (n <= 3t)"
        )
    spliced = run_spliced_ring(protocol, n, t)
    scenarios = byzantine_scenarios(protocol, spliced)
    failures = [s for s in scenarios if not s.holds]
    if not failures:
        raise ModelError(
            "all three spliced scenarios satisfied their requirements — "
            "engine invariant broken"
        )
    witnesses = [
        FailureWitness(
            candidate=protocol.name,
            property_violated=f"{s.requirement} in scenario {s.name!r}",
            evidence=s.run,
        )
        for s in failures
    ]
    return ImpossibilityCertificate(
        claim=(
            f"{protocol.name} cannot solve Byzantine agreement with "
            f"n={n}, t={t} (n <= 3t)"
        ),
        scope=f"this protocol, groups {spliced.groups}, {spliced.rounds_run} rounds",
        technique="scenario (ring splice)",
        witnesses=witnesses,
        details={
            "scenarios_violated": [s.name for s in failures],
            "hexagon_decisions": {
                str(node): dec for node, dec in sorted(
                    spliced.decisions.items(), key=lambda kv: str(kv[0])
                )
            },
        },
    )
