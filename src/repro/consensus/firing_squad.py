"""The firing squad problem: simultaneity under faults (§2.2.1, [31]).

Coan–Dolev–Dwork–Stockmeyer studied the *firing squad*: after some
process receives a start signal, all correct processes must "fire" in the
very same round — agreement not just on a value but on a *time*.  The
survey highlights their lower bounds (proved by scenario chains and by
reduction from weak Byzantine agreement).

We build the crash-fault positive side on the synchronous substrate and
verify simultaneity *exhaustively* over the crash-pattern space the E4
machinery already enumerates:

* :class:`FloodingFiringSquad` — flood the start signal; fire at a fixed
  round t + 2 after the origin.  With at most t crashes, flooding reaches
  every correct process within t + 1 rounds, so all correct processes
  fire together;
* :class:`HastyFiringSquad` — fires one round too early (as soon as the
  signal is heard), and :func:`find_simultaneity_violation` produces the
  crash pattern that splits its firing rounds — the t+1-relay floor, in
  simultaneity clothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

from .lower_bounds import enumerate_crash_adversaries
from .synchronous import (
    SyncAdversary,
    Pid,
    Round,
    SyncProcess,
    SyncProtocol,
    run_synchronous,
)

GO = "go"


class _FiringProcess(SyncProcess):
    """Relay the start signal; fire at a fixed offset from the origin.

    The input value 1 marks the initiator (it "receives the start signal
    before round 1").  Messages carry the age of the signal, so every
    hearer can compute the origin round and the common firing round.
    """

    def __init__(self, pid, n, t, input_value, fire_offset: int):
        super().__init__(pid, n, t, input_value)
        self.fire_offset = fire_offset
        self.heard_age: Optional[int] = 0 if input_value == 1 else None
        self.fired_at: Optional[Round] = None
        self.rounds_done = 0

    def message_to(self, rnd: Round, dest: Pid) -> Optional[Hashable]:
        if self.heard_age is None:
            return None
        return (GO, self.heard_age + (rnd - self.rounds_done - 1))

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        if self.heard_age is not None:
            self.heard_age += rnd - self.rounds_done
        for msg in received.values():
            if isinstance(msg, tuple) and msg[0] == GO:
                age = msg[1] + 1
                if self.heard_age is None or age > self.heard_age:
                    self.heard_age = age
        self.rounds_done = rnd
        if (
            self.fired_at is None
            and self.heard_age is not None
            and self.heard_age >= self.fire_offset
        ):
            self.fired_at = rnd

    def decision(self) -> Optional[Round]:
        return self.fired_at


class FloodingFiringSquad(SyncProtocol):
    """Fire at signal-age t + 2: simultaneous under <= t crashes."""

    def __init__(self):
        self.name = "flooding-firing-squad"

    def rounds(self, n: int, t: int) -> int:
        return t + 3

    def spawn(self, pid, n, t, input_value):
        return _FiringProcess(pid, n, t, input_value, fire_offset=t + 2)


class HastyFiringSquad(SyncProtocol):
    """Fires as soon as the signal is one round old: splittable."""

    def __init__(self):
        self.name = "hasty-firing-squad"

    def rounds(self, n: int, t: int) -> int:
        return t + 3

    def spawn(self, pid, n, t, input_value):
        return _FiringProcess(pid, n, t, input_value, fire_offset=1)


@dataclass
class SimultaneityResult:
    protocol_name: str
    runs_checked: int
    violation_adversary: Optional[SyncAdversary]
    firing_rounds: Optional[Dict[Pid, Optional[Round]]]


def find_simultaneity_violation(
    protocol: SyncProtocol, n: int, t: int, initiator: Pid = 0
) -> SimultaneityResult:
    """Exhaust the crash-pattern space looking for split firing rounds.

    A violation: two correct processes fire in different rounds, or one
    fires and another never does.
    """
    inputs = [1 if pid == initiator else 0 for pid in range(n)]
    rounds = protocol.rounds(n, t)
    runs = 0
    for adversary in enumerate_crash_adversaries(n, t, rounds):
        run = run_synchronous(protocol, inputs, adversary=adversary, t=t,
                              record_trace=False)
        runs += 1
        fired = {pid: run.decisions[pid] for pid in run.honest_pids}
        distinct = {r for r in fired.values()}
        if len(distinct) > 1:
            return SimultaneityResult(protocol.name, runs, adversary, fired)
    return SimultaneityResult(protocol.name, runs, None, None)
