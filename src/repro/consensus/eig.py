"""Exponential Information Gathering: Byzantine agreement for n > 3t.

The classic algorithm from Pease–Shostak–Lamport [89], in the EIG-tree
formulation: for t+1 rounds processes relay everything they have heard,
building a tree whose node ``(p1, ..., pk)`` holds "what p_k said p_{k-1}
said ... p_1's input was".  Decisions are taken by resolving the tree
bottom-up with majority voting.

With n > 3t the algorithm satisfies agreement and validity against any
Byzantine adversary; with n <= 3t it does not, and the scenario engine in
:mod:`repro.consensus.scenarios` constructs the adversary that defeats it —
the two sides of the survey's §2.2.1.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Mapping, Optional, Tuple

from .synchronous import Pid, Round, SyncProcess, SyncProtocol

Label = Tuple[Pid, ...]

DEFAULT_VALUE = 0


class EIGProcess(SyncProcess):
    """One participant of the EIG Byzantine agreement protocol."""

    def __init__(self, pid, n, t, input_value, default: Hashable = DEFAULT_VALUE):
        super().__init__(pid, n, t, input_value)
        self.default = default
        # Root: own input.  Level-1 node (pid,): what "pid said", which for
        # ourselves is again the input (we never receive it from the wire).
        self.vals: Dict[Label, Hashable] = {(): input_value, (pid,): input_value}
        self.rounds_done = 0
        self.total_rounds = t + 1

    def message_to(self, rnd: Round, dest: Pid) -> Hashable:
        # Relay every level-(rnd-1) value whose label does not contain the
        # sender itself (a process never relays its own relays).
        level = rnd - 1
        payload = {
            label: value
            for label, value in self.vals.items()
            if len(label) == level and self.pid not in label
        }
        return tuple(sorted(payload.items()))

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        level = rnd - 1
        # The classic formulation has every process broadcast to itself as
        # well; the network omits self-delivery, so replay it locally.
        for label in [
            lb for lb, _v in self.vals.items()
            if len(lb) == level and self.pid not in lb
        ]:
            self.vals[label + (self.pid,)] = self.vals[label]
        for sender, payload in received.items():
            try:
                entries = dict(payload)
            except (TypeError, ValueError):
                continue  # garbage from a Byzantine sender; treat as silence
            for label, value in entries.items():
                if (
                    isinstance(label, tuple)
                    and len(label) == level
                    and len(set(label)) == len(label)
                    and all(isinstance(p, int) and 0 <= p < self.n for p in label)
                    and sender not in label
                    and len(label) + 1 <= self.total_rounds
                ):
                    self.vals[label + (sender,)] = value
        self.rounds_done = rnd

    def _resolve(self, label: Label) -> Hashable:
        if len(label) == self.total_rounds:
            return self.vals.get(label, self.default)
        children = [
            self._resolve(label + (j,))
            for j in range(self.n)
            if j not in label
        ]
        if not children:
            return self.vals.get(label, self.default)
        counts = Counter(children)
        value, count = counts.most_common(1)[0]
        if count * 2 > len(children):
            return value
        return self.default

    def decision(self) -> Optional[Hashable]:
        if self.rounds_done < self.total_rounds:
            return None
        return self._resolve(())


class EIGByzantine(SyncProtocol):
    """The t+1-round EIG protocol (requires n > 3t for correctness)."""

    name = "eig-byzantine"

    def __init__(self, default: Hashable = DEFAULT_VALUE):
        self.default = default

    def rounds(self, n: int, t: int) -> int:
        return t + 1

    def spawn(self, pid, n, t, input_value) -> EIGProcess:
        return EIGProcess(pid, n, t, input_value, default=self.default)
