"""The synchronous round-based message-passing model with fault injection.

The substrate for the survey's §2.2 results on distributed consensus:
``n`` processes proceed in lockstep rounds; in each round every process
sends one message to every other process (point-to-point; a message may be
None), then all messages are delivered simultaneously, then every process
updates its state.

Faults are injected by a :class:`SyncAdversary` (the synchronous
instantiation of :class:`repro.core.runtime.FaultAdversary`), which owns a
set of faulty processes and may intercept every message they send:

* :class:`CrashAdversary` — a faulty process stops mid-round, reaching only
  a chosen subset of recipients with its final messages (the classic
  "crash with partial send" that the t+1-round chain argument turns on);
* :class:`ByzantineAdversary` — a faulty process sends arbitrary messages,
  computed by a behaviour function (with the honestly computed message
  available for mutation — equivocation, lies, silence);
* :class:`ScriptedByzantine` — replays an explicit message script, which
  is how the scenario (ring-splice) engine turns a spliced execution into
  a concrete Byzantine execution of the real system.

Everything is deterministic: the same protocol, inputs and adversary give
the same run, so every certificate replays.  Runs are recorded in the
unified :class:`~repro.core.runtime.Trace` schema and replayable through
:func:`repro.core.runtime.replay`.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.budget import BudgetMeter
from ..core.runtime import (
    DECIDE,
    DELIVER,
    SEND,
    FaultAdversary,
    SimulationRuntime,
    Trace,
)

Pid = int
Message = Hashable
Round = int


class SyncProcess(ABC):
    """Per-process protocol logic for the synchronous model."""

    def __init__(self, pid: Pid, n: int, t: int, input_value: Hashable):
        self.pid = pid
        self.n = n
        self.t = t
        self.input_value = input_value

    @abstractmethod
    def message_to(self, rnd: Round, dest: Pid) -> Message:
        """The message this process sends to ``dest`` in round ``rnd``.

        Called once per destination; broadcast protocols return the same
        value for every destination.  None means "no message".
        """

    @abstractmethod
    def receive(self, rnd: Round, received: Mapping[Pid, Message]) -> None:
        """Deliver round ``rnd``'s messages (absent keys = no message)."""

    @abstractmethod
    def decision(self) -> Optional[Hashable]:
        """The decided value, or None if undecided."""


class SyncProtocol(ABC):
    """A factory for :class:`SyncProcess` instances plus the round count."""

    name: str = "sync-protocol"

    @abstractmethod
    def spawn(self, pid: Pid, n: int, t: int, input_value: Hashable) -> SyncProcess:
        """Create the process with identifier ``pid``."""

    @abstractmethod
    def rounds(self, n: int, t: int) -> int:
        """How many rounds the protocol runs."""


class SyncAdversary(FaultAdversary):
    """Base synchronous adversary: no faults.

    The synchronous instantiation of the unified
    :class:`~repro.core.runtime.FaultAdversary`: it uses the *fault* power
    only (``is_faulty`` + ``transform`` over faulty senders' messages);
    scheduling is vacuous because rounds are lockstep.

    ``inputs_trustworthy`` says whether faulty processes' *inputs* count
    for validity: crash and omission failures are honest processes that
    die, so their inputs are real; Byzantine processes have no meaningful
    input.
    """


class NoFaults(SyncAdversary):
    """Every process behaves honestly."""


class CrashAdversary(SyncAdversary):
    """Crash (stopping) faults with partial final rounds.

    ``crashes`` maps pid -> (crash_round, receivers): in ``crash_round``
    the process's messages reach only ``receivers``; in later rounds it
    sends nothing.  Before its crash round it behaves honestly.
    """

    def __init__(self, crashes: Mapping[Pid, Tuple[Round, Iterable[Pid]]]):
        super().__init__(crashes.keys())
        self.crashes: Dict[Pid, Tuple[Round, FrozenSet[Pid]]] = {
            pid: (rnd, frozenset(receivers))
            for pid, (rnd, receivers) in crashes.items()
        }

    def transform(self, rnd, src, dest, honest_message):
        crash_round, receivers = self.crashes[src]
        if rnd < crash_round:
            return honest_message
        if rnd == crash_round:
            return honest_message if dest in receivers else None
        return None

    def crashed_by(self, pid: Pid, rnd: Round) -> bool:
        if pid not in self.crashes:
            return False
        return rnd >= self.crashes[pid][0]


class OmissionAdversary(SyncAdversary):
    """Send-omission faults: drop messages matching a predicate."""

    def __init__(self, faulty: Iterable[Pid],
                 drop: Callable[[Round, Pid, Pid], bool]):
        super().__init__(faulty)
        self._drop = drop

    def transform(self, rnd, src, dest, honest_message):
        if self._drop(rnd, src, dest):
            return None
        return honest_message


class ScriptedOmission(SyncAdversary):
    """Send-omission faults given by an explicit drop set.

    ``drops`` is a set of ``(round, src, dest)`` triples to suppress —
    the *data* form of :class:`OmissionAdversary`'s predicate, which is
    what the chaos fuzzer generates and the shrinker minimizes: deleting
    a triple from the set is exactly "fail one message fewer".  Processes
    appearing as a source in ``drops`` are the faulty set.
    """

    def __init__(self, drops: Iterable[Tuple[Round, Pid, Pid]]):
        drops = frozenset(drops)
        super().__init__({src for (_rnd, src, _dest) in drops})
        self.drops = drops

    def transform(self, rnd, src, dest, honest_message):
        if (rnd, src, dest) in self.drops:
            return None
        return honest_message


class ByzantineAdversary(SyncAdversary):
    """Arbitrary behaviour computed from the honest message.

    ``behaviour(rnd, src, dest, honest_message) -> message`` may lie,
    equivocate or stay silent.
    """

    inputs_trustworthy = False

    def __init__(self, faulty: Iterable[Pid],
                 behaviour: Callable[[Round, Pid, Pid, Message], Message]):
        super().__init__(faulty)
        self._behaviour = behaviour

    def transform(self, rnd, src, dest, honest_message):
        return self._behaviour(rnd, src, dest, honest_message)


class ScriptedByzantine(SyncAdversary):
    """Replay an explicit per-(round, src, dest) message script.

    Unscripted triples fall back to silence.  Used by the scenario engine
    to turn ring-splice views into concrete Byzantine executions.
    """

    inputs_trustworthy = False

    def __init__(self, faulty: Iterable[Pid],
                 script: Mapping[Tuple[Round, Pid, Pid], Message]):
        super().__init__(faulty)
        self.script = dict(script)

    def transform(self, rnd, src, dest, honest_message):
        return self.script.get((rnd, src, dest))


@dataclass
class ProcessView:
    """Everything one process observes: its input and per-round deliveries.

    The indistinguishability currency of every synchronous lower bound:
    two runs look the same to p iff p's views are equal.
    """

    pid: Pid
    input_value: Hashable
    rounds: Tuple[Mapping[Pid, Message], ...]

    def key(self) -> Hashable:
        return (
            self.pid,
            self.input_value,
            tuple(tuple(sorted(r.items())) for r in self.rounds),
        )


@dataclass
class SyncRun:
    """A completed synchronous execution."""

    protocol_name: str
    n: int
    t: int
    inputs: Tuple[Hashable, ...]
    adversary: SyncAdversary
    rounds_run: int
    decisions: Dict[Pid, Optional[Hashable]]
    views: Dict[Pid, ProcessView]
    messages_delivered: int
    messages_sent: int
    processes: Sequence[SyncProcess] = field(repr=False, default=())
    trace: Optional[Trace] = field(repr=False, default=None, compare=False)

    @property
    def honest_pids(self) -> List[Pid]:
        return [p for p in range(self.n) if not self.adversary.is_faulty(p)]

    def honest_decisions(self) -> Dict[Pid, Optional[Hashable]]:
        return {p: self.decisions[p] for p in self.honest_pids}

    def agreement_holds(self) -> bool:
        decided = {v for v in self.honest_decisions().values() if v is not None}
        return len(decided) <= 1

    def all_honest_decided(self) -> bool:
        return all(v is not None for v in self.honest_decisions().values())

    def validity_holds(self) -> bool:
        """If every relevant process started with the same value, the honest
        decisions equal it (the weak validity used across the survey).

        For crash/omission adversaries the faulty processes' inputs count
        (they are honest processes that die); for Byzantine they do not.
        """
        if self.adversary.inputs_trustworthy:
            relevant_inputs = set(self.inputs)
        else:
            relevant_inputs = {self.inputs[p] for p in self.honest_pids}
        if len(relevant_inputs) != 1:
            return True
        (v,) = relevant_inputs
        return all(
            d is None or d == v for d in self.honest_decisions().values()
        )

    def indistinguishable_to(self, other: "SyncRun", pid: Pid) -> bool:
        return self.views[pid].key() == other.views[pid].key()


def run_synchronous(
    protocol: SyncProtocol,
    inputs: Sequence[Hashable],
    adversary: Optional[SyncAdversary] = None,
    t: Optional[int] = None,
    rounds: Optional[int] = None,
    record_trace: bool = True,
    meter: Optional[BudgetMeter] = None,
) -> SyncRun:
    """Execute the protocol synchronously and return the completed run.

    The run is recorded in the unified trace schema (``record_trace=False``
    skips recording for bulk searches); ``SyncRun.trace`` replays through
    :func:`repro.core.runtime.replay`.  A ``meter`` charges one step per
    round, so campaign budgets preempt runaway protocols.
    """
    adversary = adversary or NoFaults()
    n = len(inputs)
    if t is None:
        t = len(adversary.faulty)
    total_rounds = rounds if rounds is not None else protocol.rounds(n, t)
    runtime = SimulationRuntime(
        substrate="synchronous",
        protocol=protocol.name,
        adversary=adversary,
        record=record_trace,
    )
    processes = [
        protocol.spawn(pid, n, t, inputs[pid]) for pid in range(n)
    ]
    view_rounds: List[List[Dict[Pid, Message]]] = [[] for _ in range(n)]
    delivered_count = 0
    sent_count = 0

    for rnd in range(1, total_rounds + 1):
        if meter is not None:
            meter.charge_steps()
        # Compute all round-r messages from pre-round states.
        outbox: Dict[Tuple[Pid, Pid], Message] = {}
        for src in range(n):
            for dest in range(n):
                if dest == src:
                    continue
                honest = processes[src].message_to(rnd, dest)
                if adversary.is_faulty(src):
                    msg = adversary.transform(rnd, src, dest, honest)
                else:
                    msg = honest
                if msg is not None:
                    outbox[(src, dest)] = msg
                    sent_count += 1
                    if record_trace:
                        runtime.emit(SEND, src, (dest, msg), round=rnd)
        # Deliver simultaneously.
        for dest in range(n):
            received = {
                src: outbox[(src, dest)]
                for src in range(n)
                if (src, dest) in outbox
            }
            delivered_count += len(received)
            view_rounds[dest].append(received)
            processes[dest].receive(rnd, received)
            if record_trace and received:
                runtime.emit(
                    DELIVER, dest, tuple(sorted(received.items())), round=rnd
                )

    decisions = {pid: processes[pid].decision() for pid in range(n)}
    if record_trace:
        for pid in range(n):
            if decisions[pid] is not None:
                runtime.emit(DECIDE, pid, decisions[pid], round=total_rounds)
    views = {
        pid: ProcessView(pid, inputs[pid], tuple(view_rounds[pid]))
        for pid in range(n)
    }
    trace: Optional[Trace] = None
    if record_trace:
        def replayer(
            _protocol=protocol, _inputs=tuple(inputs), _adversary=adversary,
            _t=t, _rounds=rounds,
        ) -> Trace:
            _adversary.reset()
            return run_synchronous(
                _protocol, _inputs, _adversary, t=_t, rounds=_rounds
            ).trace

        trace = runtime.finish(
            outcome={
                "decisions": tuple(sorted(decisions.items())),
                "rounds_run": total_rounds,
            },
            replayer=replayer,
        )
    return SyncRun(
        protocol_name=protocol.name,
        n=n,
        t=t,
        inputs=tuple(inputs),
        adversary=adversary,
        rounds_run=total_rounds,
        decisions=decisions,
        views=views,
        messages_delivered=delivered_count,
        messages_sent=sent_count,
        processes=processes,
        trace=trace,
    )


# -- deprecated names -------------------------------------------------------

_DEPRECATED = {"Adversary": ("SyncAdversary", SyncAdversary)}


def __getattr__(name: str):
    if name in _DEPRECATED:
        new_name, obj = _DEPRECATED[name]
        warnings.warn(
            f"repro.consensus.synchronous.{name} is deprecated; "
            f"use {new_name} (the unified FaultAdversary hierarchy lives in "
            "repro.core.runtime)",
            DeprecationWarning,
            stacklevel=2,
        )
        return obj
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
