"""Network connectivity for Byzantine agreement: conn > 2t (§2.2.1, [39]).

Dolev: Byzantine agreement among correct processes requires network
connectivity at least 2t + 1 — with a cut of 2t vertices, the faulty
processes can sit on the cut and present different worlds to the two
sides.  The survey notes the proof "is essentially another scenario
argument similar to the one above (using a different scenario alpha)".

We mechanize the canonical instance: the 4-cycle A–B–C–D has connectivity
2 = 2t for t = 1 ({B, D} is a cut separating A from C), so agreement is
impossible.  The splice doubles the cycle, rerouting the D-edges across
the copies:

* within-copy edges: A_c–B_c, B_c–C_c for both copies c;
* cross-copy edges: A_c–D_c and D_c–C_{1-c}.

Every node still sees a plain 4-cycle.  Running the spliced 8-cycle
fault-free with copy-0 inputs 0 and copy-1 inputs 1 yields three genuine
executions of the *real* 4-cycle:

* D faulty, honest A, B, C all start 0  — validity forces 0;
* D faulty, honest A, B, C all start 1  — validity forces 1;
* B faulty, honest A (0), D (0), C (1) — agreement forces equal outputs,
  but A behaves as A0 (deciding 0) and C as C1 (deciding 1).

:func:`connectivity_certificate` runs all three against any given
protocol on the cycle and reports which requirement broke.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..core.errors import ModelError
from ..impossibility.certificate import (
    FailureWitness,
    ImpossibilityCertificate,
)

Node = str  # "A", "B", "C", "D"
CYCLE_EDGES = {
    "A": ("B", "D"),
    "B": ("A", "C"),
    "C": ("B", "D"),
    "D": ("A", "C"),
}


class CycleProtocol:
    """Base for deterministic protocols on the 4-cycle.

    Subclasses implement per-process state machines; a process knows its
    own node name and talks only to its two neighbours.
    """

    name = "cycle-protocol"
    rounds = 4

    def spawn(self, node: Node, input_value: Hashable) -> "CycleProcess":
        raise NotImplementedError


class CycleProcess:
    def __init__(self, node: Node, input_value: Hashable):
        self.node = node
        self.input_value = input_value

    def message_to(self, rnd: int, neighbour: Node) -> Hashable:
        raise NotImplementedError

    def receive(self, rnd: int, received: Mapping[Node, Hashable]) -> None:
        raise NotImplementedError

    def decision(self) -> Optional[Hashable]:
        raise NotImplementedError


@dataclass
class CycleRun:
    """One execution of the real 4-cycle."""

    inputs: Dict[Node, Hashable]
    faulty: Node
    decisions: Dict[Node, Optional[Hashable]]
    views: Dict[Node, Tuple]

    def honest(self) -> List[Node]:
        return [n for n in CYCLE_EDGES if n != self.faulty]


def run_cycle(
    protocol: CycleProtocol,
    inputs: Mapping[Node, Hashable],
    faulty: Optional[Node] = None,
    script: Optional[Mapping[Tuple[int, Node, Node], Hashable]] = None,
) -> CycleRun:
    """Run the protocol on the real 4-cycle, with one optionally scripted
    Byzantine node."""
    processes = {
        node: protocol.spawn(node, inputs[node]) for node in CYCLE_EDGES
    }
    views: Dict[Node, List] = {node: [] for node in CYCLE_EDGES}
    for rnd in range(1, protocol.rounds + 1):
        outbox: Dict[Tuple[Node, Node], Hashable] = {}
        for node, proc in processes.items():
            for neighbour in CYCLE_EDGES[node]:
                if node == faulty:
                    msg = (script or {}).get((rnd, node, neighbour))
                else:
                    msg = proc.message_to(rnd, neighbour)
                if msg is not None:
                    outbox[(node, neighbour)] = msg
        for node, proc in processes.items():
            received = {
                src: outbox[(src, node)]
                for src in sorted(CYCLE_EDGES[node])
                if (src, node) in outbox
            }
            views[node].append(tuple(sorted(received.items())))
            proc.receive(rnd, received)
    return CycleRun(
        inputs=dict(inputs),
        faulty=faulty if faulty is not None else "",
        decisions={node: proc.decision() for node, proc in processes.items()},
        views={node: tuple(v) for node, v in views.items()},
    )


# Spliced nodes: (name, copy).
SNode = Tuple[Node, int]


def _spliced_neighbours(node: SNode) -> List[SNode]:
    """The doubled cycle's adjacency: D-edges cross copies."""
    name, copy = node
    out: List[SNode] = []
    for neighbour in CYCLE_EDGES[name]:
        if "D" in (name, neighbour):
            if {name, neighbour} == {"A", "D"}:
                out.append((neighbour, copy))        # A_c -- D_c
            else:                                    # C/D edge crosses
                out.append((neighbour, 1 - copy))    # D_c -- C_{1-c}
        else:
            out.append((neighbour, copy))
    return out


@dataclass
class SplicedCycleRun:
    inputs: Dict[SNode, Hashable]
    decisions: Dict[SNode, Optional[Hashable]]
    messages: Dict[Tuple[int, SNode, SNode], Hashable]
    views: Dict[SNode, Tuple]


def run_spliced_cycle(protocol: CycleProtocol) -> SplicedCycleRun:
    """Run the doubled 4-cycle fault-free (copy 0 inputs 0, copy 1 inputs 1)."""
    nodes = [(name, copy) for copy in (0, 1) for name in CYCLE_EDGES]
    inputs = {node: node[1] for node in nodes}
    processes = {
        node: protocol.spawn(node[0], inputs[node]) for node in nodes
    }
    messages: Dict[Tuple[int, SNode, SNode], Hashable] = {}
    views: Dict[SNode, List] = {node: [] for node in nodes}
    for rnd in range(1, protocol.rounds + 1):
        outbox: Dict[Tuple[SNode, SNode], Hashable] = {}
        for node, proc in processes.items():
            for dest in _spliced_neighbours(node):
                msg = proc.message_to(rnd, dest[0])
                if msg is not None:
                    outbox[(node, dest)] = msg
                    messages[(rnd, node, dest)] = msg
        for node, proc in processes.items():
            gathered: Dict[Node, Hashable] = {}
            for (src, dest), msg in outbox.items():
                if dest == node:
                    gathered[src[0]] = msg
            # Deliver in sorted neighbour order, matching run_cycle, so
            # protocols with order-sensitive tie-breaking behave
            # identically in the splice and in the extracted scenarios.
            received = {src: gathered[src] for src in sorted(gathered)}
            views[node].append(tuple(sorted(received.items())))
            proc.receive(rnd, received)
    return SplicedCycleRun(
        inputs=inputs,
        decisions={node: proc.decision() for node, proc in processes.items()},
        messages=messages,
        views={node: tuple(v) for node, v in views.items()},
    )


@dataclass
class CycleScenario:
    name: str
    faulty: Node
    requirement: str
    run: CycleRun
    holds: bool


def connectivity_scenarios(protocol: CycleProtocol) -> List[CycleScenario]:
    """Extract the three real 4-cycle executions from the splice."""
    spliced = run_spliced_cycle(protocol)

    def script_for(faulty: Node, honest_copy: Mapping[Node, int]
                   ) -> Dict[Tuple[int, Node, Node], Hashable]:
        script = {}
        for rnd in range(1, protocol.rounds + 1):
            for neighbour in CYCLE_EDGES[faulty]:
                dest_copy = honest_copy[neighbour]
                # Which copy of the faulty node feeds this neighbour?
                for copy in (0, 1):
                    if (neighbour, dest_copy) in _spliced_neighbours(
                        (faulty, copy)
                    ):
                        msg = spliced.messages.get(
                            (rnd, (faulty, copy), (neighbour, dest_copy))
                        )
                        if msg is not None:
                            script[(rnd, faulty, neighbour)] = msg
        return script

    plans = [
        ("D-faulty, honest side all 0", "D",
         {"A": 0, "B": 0, "C": 0}, "validity-0"),
        ("D-faulty, honest side all 1", "D",
         {"A": 1, "B": 1, "C": 1}, "validity-1"),
        ("B-faulty, A from copy 0 and C from copy 1", "B",
         {"A": 0, "D": 0, "C": 1}, "agreement"),
    ]
    scenarios = []
    for name, faulty, honest_copy, requirement in plans:
        inputs = {
            node: (honest_copy[node] if node in honest_copy else 0)
            for node in CYCLE_EDGES
        }
        run = run_cycle(
            protocol, inputs, faulty=faulty,
            script=script_for(faulty, honest_copy),
        )
        for node, copy in honest_copy.items():
            if run.views[node] != spliced.views[(node, copy)]:
                raise ModelError(
                    f"splice error: {node}'s view diverged from "
                    f"{(node, copy)} in scenario {name!r}"
                )
        decisions = [run.decisions[node] for node in honest_copy]
        if any(d is None for d in decisions):
            holds = False
        elif requirement == "validity-0":
            holds = all(d == 0 for d in decisions)
        elif requirement == "validity-1":
            holds = all(d == 1 for d in decisions)
        else:
            holds = len(set(decisions)) == 1
        scenarios.append(CycleScenario(name, faulty, requirement, run, holds))
    return scenarios


def connectivity_certificate(protocol: CycleProtocol) -> ImpossibilityCertificate:
    """Defeat any Byzantine agreement protocol on the 4-cycle (conn 2 = 2t)."""
    scenarios = connectivity_scenarios(protocol)
    failures = [s for s in scenarios if not s.holds]
    if not failures:
        raise ModelError(
            "all connectivity scenarios passed — splice invariant broken"
        )
    return ImpossibilityCertificate(
        claim=(
            f"{protocol.name} cannot solve Byzantine agreement on the "
            "4-cycle with t=1: connectivity 2 <= 2t"
        ),
        scope=f"this protocol, the canonical {{B, D}} cut, {protocol.rounds} rounds",
        technique="scenario (connectivity splice)",
        witnesses=[
            FailureWitness(
                candidate=protocol.name,
                property_violated=f"{s.requirement} in scenario {s.name!r}",
                evidence=s.run,
            )
            for s in failures
        ],
        details={"scenarios_violated": [s.name for s in failures]},
    )


# ---------------------------------------------------------------------------
# A concrete candidate for the certificate to defeat
# ---------------------------------------------------------------------------


class FloodVote(CycleProtocol):
    """Flood (origin, value) claims for several rounds; decide by majority
    of origins' values, ties broken towards the smaller value (everyone
    tallies the same claim multiset fault-free, so fault-free agreement
    holds).  A sensible protocol on a cycle — and, per the theorem,
    necessarily defeated by the connectivity splice."""

    name = "flood-vote"
    rounds = 4

    def spawn(self, node, input_value):
        return _FloodVoteProcess(node, input_value)


class _FloodVoteProcess(CycleProcess):
    def __init__(self, node, input_value):
        super().__init__(node, input_value)
        self.claims: Dict[Node, Hashable] = {node: input_value}
        self.rounds_done = 0
        self.total_rounds = FloodVote.rounds

    def message_to(self, rnd, neighbour):
        return tuple(sorted(self.claims.items()))

    def receive(self, rnd, received):
        for _src, payload in received.items():
            try:
                entries = dict(payload)
            except (TypeError, ValueError):
                continue
            for origin, value in entries.items():
                if origin in CYCLE_EDGES and origin not in self.claims:
                    self.claims[origin] = value
        self.rounds_done = rnd

    def decision(self):
        if self.rounds_done < self.total_rounds:
            return None
        votes = Counter(self.claims.values())
        best = max(votes.values())
        return min(v for v, count in votes.items() if count == best)
