"""The commit problem and the Dwork–Skeen message lower bound (§2.2.5).

Commit is binary consensus with an asymmetric validity ("commit rule"):
abort anywhere forces abort; all-commit with no failures forces commit.
Dwork and Skeen proved every failure-free execution that commits must
carry at least 2n-2 messages, because information must flow from every
process to every other — if some path is missing, a participant's abort
vote could be ignored, or two participants could decide differently.

This module provides:

* :class:`TwoPhaseCommit` — the standard centralized protocol, which
  meets the 2n-2 bound exactly in failure-free runs;
* :class:`DecentralizedCommit` — all-to-all votes in one round, the
  n(n-1)-message baseline (latency 1 round instead of 2);
* :func:`information_paths_complete` — the lower bound's combinatorial
  heart as a checker: does the run's message pattern connect every ordered
  pair of processes through increasing rounds?
* :class:`BrokenCommit` — a protocol that skips one vote, whose commit-
  rule violation the checker pins on the missing path.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from .synchronous import (
    Pid,
    Round,
    SyncProcess,
    SyncProtocol,
    SyncRun,
    run_synchronous,
)

COMMIT = "commit"
ABORT = "abort"


def commit_rule_holds(run: SyncRun) -> bool:
    """The commit rule: any abort input forces abort; all-commit inputs in
    a failure-free run force commit."""
    decisions = [d for d in run.honest_decisions().values()]
    if any(d is None for d in decisions):
        return False
    if any(v == 0 for v in run.inputs):
        return all(d == ABORT for d in decisions)
    if not run.adversary.faulty:
        return all(d == COMMIT for d in decisions)
    return True


class TwoPhaseCommitProcess(SyncProcess):
    """Process 0 coordinates; inputs are 1 (vote commit) / 0 (vote abort)."""

    COORDINATOR: Pid = 0

    def __init__(self, pid, n, t, input_value):
        super().__init__(pid, n, t, input_value)
        self.votes: Dict[Pid, Hashable] = {pid: input_value}
        self.outcome: Optional[str] = None
        self.rounds_done = 0

    def message_to(self, rnd: Round, dest: Pid) -> Optional[Hashable]:
        if rnd == 1:
            if self.pid != self.COORDINATOR and dest == self.COORDINATOR:
                return ("vote", self.input_value)
            return None
        if rnd == 2 and self.pid == self.COORDINATOR:
            all_commit = all(
                self.votes.get(p) == 1 for p in range(self.n)
            )
            return ("decision", COMMIT if all_commit else ABORT)
        return None

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        if rnd == 1 and self.pid == self.COORDINATOR:
            for src, msg in received.items():
                if isinstance(msg, tuple) and msg[0] == "vote":
                    self.votes[src] = msg[1]
            all_commit = all(self.votes.get(p) == 1 for p in range(self.n))
            self.outcome = COMMIT if all_commit else ABORT
        if rnd == 2 and self.pid != self.COORDINATOR:
            msg = received.get(self.COORDINATOR)
            if isinstance(msg, tuple) and msg[0] == "decision":
                self.outcome = msg[1]
            else:
                self.outcome = ABORT  # coordinator silent: presume abort
        self.rounds_done = rnd

    def decision(self) -> Optional[str]:
        if self.rounds_done < 2:
            return None
        return self.outcome


class TwoPhaseCommit(SyncProtocol):
    """Centralized 2PC: exactly 2(n-1) messages in failure-free runs."""

    name = "two-phase-commit"

    def rounds(self, n: int, t: int) -> int:
        return 2

    def spawn(self, pid, n, t, input_value):
        return TwoPhaseCommitProcess(pid, n, t, input_value)


class DecentralizedCommitProcess(SyncProcess):
    """Everyone broadcasts its vote; everyone decides locally."""

    def __init__(self, pid, n, t, input_value):
        super().__init__(pid, n, t, input_value)
        self.votes: Dict[Pid, Hashable] = {pid: input_value}
        self.rounds_done = 0

    def message_to(self, rnd: Round, dest: Pid) -> Optional[Hashable]:
        if rnd == 1:
            return ("vote", self.input_value)
        return None

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        for src, msg in received.items():
            if isinstance(msg, tuple) and msg[0] == "vote":
                self.votes[src] = msg[1]
        self.rounds_done = rnd

    def decision(self) -> Optional[str]:
        if self.rounds_done < 1:
            return None
        if all(self.votes.get(p) == 1 for p in range(self.n)):
            return COMMIT
        return ABORT


class DecentralizedCommit(SyncProtocol):
    """One round, n(n-1) messages: the latency/message tradeoff baseline."""

    name = "decentralized-commit"

    def rounds(self, n: int, t: int) -> int:
        return 1

    def spawn(self, pid, n, t, input_value):
        return DecentralizedCommitProcess(pid, n, t, input_value)


class BrokenCommitProcess(TwoPhaseCommitProcess):
    """A 2PC variant whose coordinator never waits for process n-1's vote.

    Saves one message below 2n-2; the commit rule breaks exactly the way
    the Dwork–Skeen path argument predicts (the ignored process's abort is
    overridden).
    """

    def message_to(self, rnd: Round, dest: Pid) -> Optional[Hashable]:
        if rnd == 1 and self.pid == self.n - 1:
            return None  # this vote is never sent
        return super().message_to(rnd, dest)

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        if rnd == 1 and self.pid == self.COORDINATOR:
            self.votes[self.n - 1] = 1  # presume commit without evidence
        super().receive(rnd, received)


class BrokenCommit(SyncProtocol):
    name = "broken-commit"

    def rounds(self, n: int, t: int) -> int:
        return 2

    def spawn(self, pid, n, t, input_value):
        return BrokenCommitProcess(pid, n, t, input_value)


def message_count(run: SyncRun) -> int:
    """Messages actually sent in the run."""
    return run.messages_sent


def information_paths_complete(run: SyncRun) -> Tuple[bool, List[Tuple[Pid, Pid]]]:
    """Check the Dwork–Skeen path property on a run's message pattern.

    Returns (complete, missing_pairs): for each ordered pair (i, j), is
    there a chain of messages m1; m2; ... with increasing rounds carrying
    information from i to j?  A run deciding commit without complete paths
    cannot be correct — some vote was decided without.
    """
    n = run.n
    # knows[j] = set of processes whose round-0 information j has.
    knows: Dict[Pid, Set[Pid]] = {p: {p} for p in range(n)}
    for rnd in range(run.rounds_run):
        snapshot = {p: set(s) for p, s in knows.items()}
        for dest in range(n):
            for src, _msg in run.views[dest].rounds[rnd].items():
                knows[dest] |= snapshot[src]
    missing = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if i != j and i not in knows[j]
    ]
    return not missing, missing


def failure_free_commit_run(protocol: SyncProtocol, n: int) -> SyncRun:
    """The canonical all-commit failure-free run."""
    return run_synchronous(protocol, [1] * n, t=0)


def dwork_skeen_series(
    protocol: SyncProtocol, sizes: Sequence[int]
) -> Dict[int, Tuple[int, int]]:
    """For each n: (messages in the failure-free commit run, the 2n-2 bound)."""
    out: Dict[int, Tuple[int, int]] = {}
    for n in sizes:
        run = failure_free_commit_run(protocol, n)
        out[n] = (message_count(run), 2 * n - 2)
    return out
