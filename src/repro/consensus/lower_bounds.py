"""The t+1-round lower bound, mechanized by exhaustive crash-pattern search.

Survey §2.2.2: any agreement protocol tolerating t stopping faults needs
t+1 rounds [56, and the Dwork–Moses folklore version for crashes].  The
proof is a chain argument; its mechanized counterpart here is *exhaustive
adversary enumeration on bounded instances*:

* :func:`enumerate_crash_adversaries` generates every crash pattern with
  at most t faults over r rounds — each fault a (process, crash round,
  subset of recipients reached) triple, exactly the granularity the chain
  argument manipulates;

* :func:`find_round_bound_violation` runs a protocol under every pattern
  and every binary input vector, looking for a run that breaks agreement,
  validity or termination.  For a t-round truncation of FloodSet it finds
  the violating pattern (the lower bound's content); for the full
  t+1-round FloodSet it exhausts the space without a violation (the
  matching upper bound);

* :func:`find_fooling_pair` exhibits the chain argument's engine: two runs
  indistinguishable to some common nonfaulty process whose *other*
  processes decide differently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..impossibility.certificate import (
    ImpossibilityCertificate,
)
from .synchronous import (
    SyncAdversary,
    CrashAdversary,
    NoFaults,
    Pid,
    SyncProtocol,
    SyncRun,
    run_synchronous,
)


def enumerate_crash_adversaries(
    n: int, t: int, rounds: int
) -> Iterator[SyncAdversary]:
    """Every crash adversary with at most t faults.

    Each faulty process gets a crash round in 1..rounds and a subset of the
    other processes that still receive its final-round messages.  The
    no-fault adversary is yielded first.
    """
    yield NoFaults()
    pids = list(range(n))
    for k in range(1, t + 1):
        for victims in itertools.combinations(pids, k):
            per_victim_options = []
            for victim in victims:
                others = [p for p in pids if p != victim]
                options = [
                    (rnd, subset)
                    for rnd in range(1, rounds + 1)
                    for size in range(len(others) + 1)
                    for subset in itertools.combinations(others, size)
                ]
                per_victim_options.append(options)
            for combo in itertools.product(*per_victim_options):
                yield CrashAdversary(
                    {victim: choice for victim, choice in zip(victims, combo)}
                )


@dataclass
class RoundBoundResult:
    """Outcome of the exhaustive search over crash patterns."""

    protocol_name: str
    n: int
    t: int
    rounds: int
    runs_checked: int
    violation: Optional[SyncRun]
    violated_property: Optional[str]


def _check_run(run: SyncRun) -> Optional[str]:
    if not run.all_honest_decided():
        return "termination"
    if not run.agreement_holds():
        return "agreement"
    if not run.validity_holds():
        return "validity"
    return None


def find_round_bound_violation(
    protocol: SyncProtocol,
    n: int,
    t: int,
    rounds: Optional[int] = None,
    input_vectors: Optional[Iterable[Sequence[Hashable]]] = None,
) -> RoundBoundResult:
    """Search every (input vector, crash pattern) pair for a violation."""
    rounds = rounds if rounds is not None else protocol.rounds(n, t)
    if input_vectors is None:
        input_vectors = list(itertools.product((0, 1), repeat=n))
    runs_checked = 0
    for inputs in input_vectors:
        for adversary in enumerate_crash_adversaries(n, t, rounds):
            run = run_synchronous(
                protocol, list(inputs), adversary=adversary, t=t, rounds=rounds,
                record_trace=False,
            )
            runs_checked += 1
            violated = _check_run(run)
            if violated is not None:
                return RoundBoundResult(
                    protocol.name, n, t, rounds, runs_checked, run, violated
                )
    return RoundBoundResult(protocol.name, n, t, rounds, runs_checked, None, None)


def round_lower_bound_certificate(
    protocol_factory, n: int, t: int
) -> ImpossibilityCertificate:
    """Certify the t+1-round bound for a protocol family.

    ``protocol_factory(rounds)`` must build the protocol truncated to the
    given number of rounds.  The certificate records, for every r <= t, a
    concrete crash pattern defeating the r-round version, and that the
    (t+1)-round version survives the full pattern space.
    """
    witnesses = []
    for r in range(1, t + 1):
        result = find_round_bound_violation(protocol_factory(r), n, t, rounds=r)
        if result.violation is None:
            raise AssertionError(
                f"{r}-round truncation unexpectedly survived all crash "
                f"patterns (n={n}, t={t}) — lower bound refuted for this family"
            )
        from ..impossibility.certificate import FailureWitness

        witnesses.append(
            FailureWitness(
                candidate=f"{result.protocol_name} ({r} rounds)",
                property_violated=result.violated_property,
                evidence=result.violation,
            )
        )
    full = find_round_bound_violation(protocol_factory(None), n, t)
    if full.violation is not None:
        raise AssertionError(
            f"t+1-round protocol violated {full.violated_property} — "
            "upper bound broken"
        )
    return ImpossibilityCertificate(
        claim=(
            f"no truncation below t+1={t + 1} rounds solves consensus with "
            f"t={t} stopping faults (n={n})"
        ),
        scope=(
            f"the FloodSet family; exhaustive over all crash patterns with "
            f"<= {t} faults and all binary inputs; {full.runs_checked} runs "
            f"checked at t+1 rounds"
        ),
        technique="chain (exhaustive crash-pattern search)",
        candidates_checked=t,
        witnesses=witnesses,
        details={"full_protocol_runs_checked": full.runs_checked},
    )


@dataclass
class FoolingPair:
    """Two runs a common nonfaulty process cannot distinguish, with
    incompatible obligations — the atom of every chain argument."""

    run_a: SyncRun
    run_b: SyncRun
    fooled_process: Pid
    reason: str


def find_fooling_pair(
    protocol: SyncProtocol,
    n: int,
    t: int,
    rounds: int,
    max_runs: int = 20_000,
) -> Optional[FoolingPair]:
    """Search pairs of runs for the chain argument's fooling configuration.

    Looks for runs R_a, R_b and a process p, nonfaulty in both, with equal
    views, where the *full honest decision sets* of the two runs differ —
    p must decide identically in both, so one run's other processes
    disagree with p or with validity.
    """
    runs: List[SyncRun] = []
    for inputs in itertools.product((0, 1), repeat=n):
        for adversary in enumerate_crash_adversaries(n, t, rounds):
            runs.append(
                run_synchronous(
                    protocol, list(inputs), adversary=adversary, t=t,
                    rounds=rounds, record_trace=False,
                )
            )
            if len(runs) > max_runs:
                break
    # Index runs by each honest process's view.
    by_view: Dict[Tuple, List[Tuple[SyncRun, Pid]]] = {}
    for run in runs:
        for pid in run.honest_pids:
            by_view.setdefault(run.views[pid].key(), []).append((run, pid))
    for matches in by_view.values():
        for (run_a, pid), (run_b, _pid2) in itertools.combinations(matches, 2):
            decisions_a = frozenset(
                v for v in run_a.honest_decisions().values() if v is not None
            )
            decisions_b = frozenset(
                v for v in run_b.honest_decisions().values() if v is not None
            )
            if decisions_a != decisions_b:
                return FoolingPair(
                    run_a,
                    run_b,
                    pid,
                    reason=(
                        f"process {pid} sees identical views but the runs' "
                        f"honest decision sets are {set(decisions_a)} vs "
                        f"{set(decisions_b)}"
                    ),
                )
    return None
