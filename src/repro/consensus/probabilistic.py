"""Randomized Byzantine agreement: the Karlin–Yao 2/3 bound (§2.2.1, [68]).

Knowing that n <= 3t rules out deterministic agreement, Karlin and Yao
asked how *probable* agreement can be made: the answer is that no
randomized 3-process protocol can guarantee success probability above
2/3 against 1 Byzantine fault.

The mechanization couples the ring-splice argument with the coins: fix a
coin outcome for each hexagon node and run the splice fault-free; the
three extracted scenarios (validity-0, validity-1, agreement) then form a
*deterministic* contradiction — for every coin outcome, at least one of
the three fails.  Averaging over coins, the three success probabilities
sum to at most 2, so the worst of them is at most 2/3.

:func:`karlin_yao_experiment` runs this for any seeded randomized
protocol exposing ``spawn_tagged`` and reports the per-scenario empirical
success rates, their per-trial sum (provably <= 2), and the implied bound.
:class:`CoinFlipAgreement` is a reasonable randomized candidate to feed
it — its measured success triple sits right at the theory's edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

from ..core.runtime import derive_seed
from ..impossibility.certificate import BoundCertificate
from .scenarios import byzantine_scenarios, run_spliced_ring
from .synchronous import Pid, Round, SyncProcess, SyncProtocol


class CoinFlipProcess(SyncProcess):
    """Exchange values; decide the majority, flipping a coin on any doubt.

    Round 1: broadcast the input.  Round 2: broadcast what was heard.
    Decision: if all reports agree, that value; otherwise a fair coin.
    The per-process coin sequence is a deterministic function of
    (trial seed, pid, copy tag) so the splice coupling is exact.
    """

    def __init__(self, pid, n, t, input_value, rng_seed: int):
        super().__init__(pid, n, t, input_value)
        self.rng = random.Random(rng_seed)
        self.heard: Dict[Pid, Hashable] = {pid: input_value}
        self.rounds_done = 0
        self._decided: Optional[Hashable] = None

    def message_to(self, rnd: Round, dest: Pid) -> Hashable:
        if rnd == 1:
            return ("val", self.input_value)
        return ("echo", tuple(sorted(self.heard.items())))

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        if rnd == 1:
            for src, msg in received.items():
                if isinstance(msg, tuple) and msg[0] == "val":
                    self.heard[src] = msg[1]
        self.rounds_done = rnd

    def decision(self) -> Optional[Hashable]:
        if self.rounds_done < 2:
            return None
        if self._decided is None:
            # Decisions are irrevocable and the coin is flipped once.
            values = list(self.heard.values())
            ones = sum(1 for v in values if v == 1)
            zeros = sum(1 for v in values if v == 0)
            if len(values) == self.n and len(set(values)) == 1:
                self._decided = values[0]
            elif ones > zeros + 1:
                self._decided = 1
            elif zeros > ones + 1:
                self._decided = 0
            else:
                self._decided = self.rng.randrange(2)
        return self._decided


class CoinFlipAgreement(SyncProtocol):
    """The seeded randomized candidate; ``reseed`` per trial."""

    name = "coin-flip-agreement"

    def __init__(self, trial_seed: int = 0):
        self.trial_seed = trial_seed

    def rounds(self, n: int, t: int) -> int:
        return 2

    def spawn(self, pid, n, t, input_value):
        return self.spawn_tagged(pid, n, t, input_value, 0)

    def spawn_tagged(self, pid, n, t, input_value, tag):
        seed = derive_seed(self.trial_seed, pid, tag)
        return CoinFlipProcess(pid, n, t, input_value, seed)


@dataclass
class KarlinYaoResult:
    """Empirical scenario success rates for a randomized protocol."""

    protocol_name: str
    trials: int
    success_rates: Dict[str, float]
    max_per_trial_sum: int
    mean_per_trial_sum: float

    @property
    def worst_scenario_rate(self) -> float:
        return min(self.success_rates.values())

    @property
    def bound_respected(self) -> bool:
        """The theorem: the per-trial sum never exceeds 2, hence the worst
        scenario's rate cannot exceed 2/3 after enough trials."""
        return self.max_per_trial_sum <= 2


def karlin_yao_experiment(
    protocol_factory=CoinFlipAgreement,
    n: int = 3,
    t: int = 1,
    trials: int = 200,
) -> KarlinYaoResult:
    """Couple coins through the splice; measure scenario success rates."""
    totals: Dict[str, int] = {}
    max_sum = 0
    sum_accum = 0
    name = None
    for trial in range(trials):
        protocol = protocol_factory(trial_seed=trial)
        name = protocol.name
        spliced = run_spliced_ring(protocol, n=n, t=t)
        scenarios = byzantine_scenarios(protocol, spliced)
        trial_sum = 0
        for scenario in scenarios:
            totals.setdefault(scenario.requirement, 0)
            if scenario.holds:
                totals[scenario.requirement] += 1
                trial_sum += 1
        max_sum = max(max_sum, trial_sum)
        sum_accum += trial_sum
    return KarlinYaoResult(
        protocol_name=name or "unknown",
        trials=trials,
        success_rates={k: v / trials for k, v in totals.items()},
        max_per_trial_sum=max_sum,
        mean_per_trial_sum=sum_accum / trials,
    )


def karlin_yao_certificate(trials: int = 200) -> BoundCertificate:
    """Certify the 2/3 ceiling for the coin-flip candidate."""
    result = karlin_yao_experiment(trials=trials)
    return BoundCertificate(
        claim=(
            "randomized Byzantine agreement with n = 3, t = 1 cannot "
            "guarantee success probability above 2/3: per coin outcome, at "
            "most 2 of the 3 spliced scenarios succeed"
        ),
        technique="scenario (coin-coupled ring splice)",
        series={"worst_scenario_rate": result.worst_scenario_rate},
        bound={"worst_scenario_rate": 2.0 / 3.0 + 0.08},  # sampling slack
        direction="upper",
        details={
            "success_rates": result.success_rates,
            "max_per_trial_sum": result.max_per_trial_sum,
            "mean_per_trial_sum": result.mean_per_trial_sum,
            "trials": result.trials,
        },
    )
