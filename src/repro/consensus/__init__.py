"""Distributed consensus in synchronous systems (survey §2.2).

The synchronous round model with crash / omission / Byzantine fault
injection, the classic agreement algorithms, and the mechanized lower
bounds: the ring-splice scenario engine (n > 3t), the exhaustive
crash-pattern search (t+1 rounds), and the commit message bound.
"""

from .approximate import (
    ApproximateAgreement,
    ApproximateAgreementProcess,
    convergence_ratio,
    honest_range,
    reduce_values,
    stretching_adversary,
)
from .authenticated import (
    DolevStrong,
    DolevStrongProcess,
    EquivocatingSender,
    LateRevealRelay,
    chain_valid,
)
from .commit import (
    ABORT,
    COMMIT,
    BrokenCommit,
    DecentralizedCommit,
    TwoPhaseCommit,
    commit_rule_holds,
    dwork_skeen_series,
    failure_free_commit_run,
    information_paths_complete,
    message_count,
)
from .connectivity import (
    CycleProtocol,
    CycleRun,
    CycleScenario,
    FloodVote,
    connectivity_certificate,
    connectivity_scenarios,
    run_cycle,
    run_spliced_cycle,
)
from .eig import EIGByzantine, EIGProcess
from .firing_squad import (
    FloodingFiringSquad,
    HastyFiringSquad,
    SimultaneityResult,
    find_simultaneity_violation,
)
from .floodset import FloodSet, FloodSetProcess
from .lower_bounds import (
    FoolingPair,
    RoundBoundResult,
    enumerate_crash_adversaries,
    find_fooling_pair,
    find_round_bound_violation,
    round_lower_bound_certificate,
)
from .phase_king import PhaseKing, PhaseKingProcess
from .probabilistic import (
    CoinFlipAgreement,
    KarlinYaoResult,
    karlin_yao_certificate,
    karlin_yao_experiment,
)
from .scenarios import (
    Scenario,
    SplicedRun,
    balanced_three_partition,
    byzantine_scenarios,
    flm_certificate,
    run_spliced_ring,
)
from .synchronous import (
    ByzantineAdversary,
    CrashAdversary,
    NoFaults,
    OmissionAdversary,
    ProcessView,
    ScriptedByzantine,
    SyncAdversary,
    SyncProcess,
    SyncProtocol,
    SyncRun,
    run_synchronous,
)

__all__ = [
    "SyncProcess",
    "SyncProtocol",
    "SyncRun",
    "ProcessView",
    "run_synchronous",
    "SyncAdversary",
    "Adversary",
    "NoFaults",
    "CrashAdversary",
    "OmissionAdversary",
    "ByzantineAdversary",
    "ScriptedByzantine",
    "FloodSet",
    "FloodSetProcess",
    "EIGByzantine",
    "EIGProcess",
    "PhaseKing",
    "PhaseKingProcess",
    "DolevStrong",
    "DolevStrongProcess",
    "EquivocatingSender",
    "LateRevealRelay",
    "chain_valid",
    "ApproximateAgreement",
    "ApproximateAgreementProcess",
    "convergence_ratio",
    "honest_range",
    "reduce_values",
    "stretching_adversary",
    "TwoPhaseCommit",
    "DecentralizedCommit",
    "BrokenCommit",
    "COMMIT",
    "ABORT",
    "commit_rule_holds",
    "information_paths_complete",
    "message_count",
    "failure_free_commit_run",
    "dwork_skeen_series",
    "enumerate_crash_adversaries",
    "find_round_bound_violation",
    "round_lower_bound_certificate",
    "find_fooling_pair",
    "RoundBoundResult",
    "FoolingPair",
    "run_spliced_ring",
    "byzantine_scenarios",
    "flm_certificate",
    "balanced_three_partition",
    "SplicedRun",
    "Scenario",
    "CoinFlipAgreement",
    "KarlinYaoResult",
    "karlin_yao_experiment",
    "karlin_yao_certificate",
    "FloodingFiringSquad",
    "HastyFiringSquad",
    "SimultaneityResult",
    "find_simultaneity_violation",
    "CycleProtocol",
    "CycleRun",
    "CycleScenario",
    "FloodVote",
    "run_cycle",
    "run_spliced_cycle",
    "connectivity_scenarios",
    "connectivity_certificate",
]


def __getattr__(name: str):
    if name == "Adversary":
        import warnings

        warnings.warn(
            "repro.consensus.Adversary is deprecated; use SyncAdversary "
            "(the unified FaultAdversary hierarchy lives in repro.core.runtime)",
            DeprecationWarning,
            stacklevel=2,
        )
        return SyncAdversary
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
