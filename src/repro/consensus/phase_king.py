"""Phase King: Byzantine agreement with constant-size messages (n > 4t).

Berman–Garay's algorithm trades the EIG tree's exponential messages for a
weaker resilience bound: t+1 phases of two rounds each, every message a
single value.  Phase k's "king" is process k-1; a process adopts the
king's tie-breaker only when its own tally is not overwhelming.  Since
there are t+1 phases and at most t faulty processes, some phase has an
honest king, after which all honest processes lock on one value.

Included both as a cited positive result and as a baseline for the
message-complexity comparisons: EIG sends O(n^(t+1))-size state around,
Phase King O(n^2) single-value messages total per phase.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from .synchronous import Pid, Round, SyncProcess, SyncProtocol


class PhaseKingProcess(SyncProcess):
    """One participant of the Phase King protocol (binary values)."""

    def __init__(self, pid, n, t, input_value):
        super().__init__(pid, n, t, input_value)
        self.value = 1 if input_value else 0
        self.total_rounds = 2 * (t + 1)
        self.rounds_done = 0
        self._last_counts = (0, 0)

    @staticmethod
    def _phase_of(rnd: Round) -> int:
        """Phases are 1-based; rounds 2k-1 and 2k belong to phase k."""
        return (rnd + 1) // 2

    def _king_of(self, phase: int) -> Pid:
        return (phase - 1) % self.n

    def message_to(self, rnd: Round, dest: Pid) -> Optional[Hashable]:
        phase = self._phase_of(rnd)
        if rnd % 2 == 1:
            # Voting round: everyone broadcasts its current value.
            return self.value
        # King round: only the phase king speaks.
        if self.pid == self._king_of(phase):
            return self.value
        return None

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        phase = self._phase_of(rnd)
        if rnd % 2 == 1:
            votes = [1 if v else 0 for v in received.values()]
            votes.append(self.value)  # own vote
            ones = sum(votes)
            zeros = len(votes) - ones
            self._last_counts = (zeros, ones)
            self.value = 1 if ones >= zeros else 0
        else:
            king = self._king_of(phase)
            zeros, ones = self._last_counts
            majority_count = max(zeros, ones)
            # Keep own value only when the tally was overwhelming; otherwise
            # defer to the king's tie-breaker.
            if majority_count < self.n - self.t:
                if self.pid == king:
                    pass  # the king keeps its own value
                else:
                    king_value = received.get(king)
                    self.value = 1 if king_value else 0
        self.rounds_done = rnd

    def decision(self) -> Optional[Hashable]:
        if self.rounds_done < self.total_rounds:
            return None
        return self.value


class PhaseKing(SyncProtocol):
    """The 2(t+1)-round Phase King protocol (requires n > 4t)."""

    name = "phase-king"

    def rounds(self, n: int, t: int) -> int:
        return 2 * (t + 1)

    def spawn(self, pid, n, t, input_value) -> PhaseKingProcess:
        return PhaseKingProcess(pid, n, t, input_value)
