"""FloodSet: crash-tolerant consensus in t+1 rounds.

The canonical positive result that the t+1-round lower bound (§2.2.2) is
tight for stopping faults: every process floods the set of values it has
seen for t+1 rounds; with at most t crashes, some round is crash-free, so
all nonfaulty processes end with the same set and decide the same way.

Run with fewer than t+1 rounds, the protocol is *incorrect* — and
:mod:`repro.consensus.lower_bounds` finds the crash schedule that breaks
it, mechanizing the lower bound.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from .synchronous import Pid, Round, SyncProcess, SyncProtocol


class FloodSetProcess(SyncProcess):
    """Flood the set of seen values; decide by a deterministic rule."""

    def __init__(self, pid, n, t, input_value, total_rounds: int):
        super().__init__(pid, n, t, input_value)
        self.seen = frozenset([input_value])
        self.total_rounds = total_rounds
        self.rounds_received = 0

    def message_to(self, rnd: Round, dest: Pid) -> Hashable:
        return self.seen

    def receive(self, rnd: Round, received: Mapping[Pid, Hashable]) -> None:
        for values in received.values():
            self.seen = self.seen | values
        self.rounds_received = rnd

    def decision(self) -> Optional[Hashable]:
        if self.rounds_received < self.total_rounds:
            return None
        return min(self.seen)


class FloodSet(SyncProtocol):
    """The full t+1-round FloodSet protocol.

    ``rounds_override`` truncates the protocol — deliberately breaking it —
    for the lower-bound experiments.
    """

    def __init__(self, rounds_override: Optional[int] = None):
        self.rounds_override = rounds_override
        self.name = (
            "floodset"
            if rounds_override is None
            else f"floodset-truncated-{rounds_override}"
        )

    def rounds(self, n: int, t: int) -> int:
        if self.rounds_override is not None:
            return self.rounds_override
        return t + 1

    def spawn(self, pid, n, t, input_value) -> FloodSetProcess:
        return FloodSetProcess(pid, n, t, input_value, self.rounds(n, t))
