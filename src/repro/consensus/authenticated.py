"""Dolev–Strong authenticated broadcast: beating n > 3t with signatures.

With message authentication the 3t+1 process bound evaporates: the
Dolev–Strong protocol reaches Byzantine *broadcast* agreement for any
number of faults in t+1 rounds (the round bound still stands — [43, 37]
extend the t+1 chain argument to authenticated algorithms).

Signatures are simulated: a signature chain is a tuple of pids appended to
a value.  Unforgeability is a *model constraint*: the adversary classes in
this module only emit chains they could really produce (their own
signatures over anything, plus extensions of chains honestly received).
Honest verifiers also check structural validity — the chain must start at
the designated sender, contain no duplicates, and carry exactly one
signature per round of transit.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, Set, Tuple

from .synchronous import (
    SyncAdversary,
    Message,
    Pid,
    Round,
    SyncProcess,
    SyncProtocol,
)

# A signed claim: (value, (signer_0, signer_1, ...)).  signer_0 must be the
# designated sender.
Chain = Tuple[Hashable, Tuple[Pid, ...]]

DEFAULT_VALUE = 0


def chain_valid(chain: Chain, sender: Pid, rnd: Round) -> bool:
    """Structural validity at the start of round ``rnd``: the chain must be
    rooted at the sender, duplicate-free, and carry rnd-1 signatures."""
    if not isinstance(chain, tuple) or len(chain) != 2:
        return False
    _value, signers = chain
    if not isinstance(signers, tuple) or not signers:
        return False
    if signers[0] != sender:
        return False
    if len(set(signers)) != len(signers):
        return False
    return len(signers) == rnd - 1 + 1  # sender's signature plus one per hop


class DolevStrongProcess(SyncProcess):
    """Honest participant.  The designated sender is process 0."""

    SENDER: Pid = 0

    def __init__(self, pid, n, t, input_value):
        super().__init__(pid, n, t, input_value)
        self.extracted: Set[Hashable] = set()
        self.to_relay: Set[Chain] = set()
        self.rounds_done = 0
        self.total_rounds = t + 1
        if pid == self.SENDER:
            self.extracted.add(input_value)
            self.to_relay.add((input_value, (self.SENDER,)))

    def message_to(self, rnd: Round, dest: Pid) -> Optional[Message]:
        if rnd == 1:
            if self.pid != self.SENDER:
                return None
            return frozenset({(self.input_value, (self.SENDER,))})
        if not self.to_relay:
            return None
        return frozenset(self.to_relay)

    def receive(self, rnd: Round, received: Mapping[Pid, Message]) -> None:
        new_relays: Set[Chain] = set()
        for src, payload in received.items():
            if not isinstance(payload, frozenset):
                continue
            for chain in payload:
                if not chain_valid(chain, self.SENDER, rnd):
                    continue
                value, signers = chain
                if signers[-1] != src:
                    continue  # the last signer must be whoever handed it over
                if self.pid in signers:
                    continue
                if value not in self.extracted:
                    self.extracted.add(value)
                    new_relays.add((value, signers + (self.pid,)))
        self.to_relay = new_relays
        self.rounds_done = rnd

    def decision(self) -> Optional[Hashable]:
        if self.rounds_done < self.total_rounds:
            return None
        if len(self.extracted) == 1:
            return next(iter(self.extracted))
        return DEFAULT_VALUE


class DolevStrong(SyncProtocol):
    """The t+1-round authenticated broadcast protocol (any n >= t + 2)."""

    name = "dolev-strong"

    def rounds(self, n: int, t: int) -> int:
        return t + 1

    def spawn(self, pid, n, t, input_value) -> DolevStrongProcess:
        return DolevStrongProcess(pid, n, t, input_value)


class EquivocatingSender(SyncAdversary):
    """A faulty designated sender that signs different values to different
    recipients — the canonical attack signatures are meant to contain.

    Recipients with even pid receive value_a, odd pids value_b.  From round
    2 on the sender stays silent.  It forges nothing: every chain it emits
    carries only its own signature.
    """

    def __init__(self, value_a: Hashable = 0, value_b: Hashable = 1):
        super().__init__([DolevStrongProcess.SENDER])
        self.value_a = value_a
        self.value_b = value_b

    def transform(self, rnd, src, dest, honest_message):
        if rnd != 1:
            return None
        value = self.value_a if dest % 2 == 0 else self.value_b
        return frozenset({(value, (src,))})


class LateRevealRelay(SyncAdversary):
    """Sender and a colluding relay: withhold the second value as long as
    the signature discipline allows, then reveal it to a single victim.

    The faulty sender broadcasts value_a but privately signs value_b for
    the colluding relay (both signatures are its own — no forgery).  The
    relay adds its signature and forwards the two-signature chain to one
    honest victim in round 2, the last round such a chain verifies.  The
    protocol's t+1 rounds are exactly what gives the victim time to relay
    the revelation onward, so all honest processes still end with the same
    extracted set and decide the default together.
    """

    def __init__(self, relay: Pid, victim: Pid,
                 value_a: Hashable = 0, value_b: Hashable = 1):
        super().__init__([DolevStrongProcess.SENDER, relay])
        self.relay = relay
        self.victim = victim
        self.value_a = value_a
        self.value_b = value_b

    def transform(self, rnd, src, dest, honest_message):
        sender = DolevStrongProcess.SENDER
        if src == sender:
            if rnd == 1:
                return frozenset({(self.value_a, (sender,))})
            return None
        if src == self.relay and rnd == 2 and dest == self.victim:
            return frozenset({(self.value_b, (sender, self.relay))})
        return None
