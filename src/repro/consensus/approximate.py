"""Approximate agreement on real values with Byzantine faults (§2.2.2).

Dolev–Lynch–Pinter–Stark–Weihl [36]: nonfaulty processes start with real
values and must end with values within epsilon of each other, inside the
range of the nonfaulty inputs.  The simple round-by-round algorithm —
broadcast, discard the t lowest and t highest received values, average the
rest — converges with ratio about t/(n-2t) per round, i.e. roughly
(t/n)^k over k rounds; the paper's chain-argument lower bound says no
k-round algorithm can beat (t/(nk))^k.

This module implements the averaging algorithm and the measurement
harness: :func:`convergence_ratio` runs the algorithm under the worst-case
adversary we implement (a Byzantine process that reports the extremes
asymmetrically to stretch the honest range) and reports the achieved
range-reduction ratio per round, for the E5 bench to compare against both
curves.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from .synchronous import (
    ByzantineAdversary,
    Pid,
    Round,
    SyncProcess,
    SyncProtocol,
    run_synchronous,
)


def reduce_values(values: Sequence[float], t: int) -> List[float]:
    """Discard the t smallest and t largest; return the middle (sorted)."""
    ordered = sorted(values)
    if len(ordered) <= 2 * t:
        return ordered
    return ordered[t: len(ordered) - t]


class ApproximateAgreementProcess(SyncProcess):
    """Round-by-round averaging with double-ended trimming."""

    def __init__(self, pid, n, t, input_value, total_rounds: int):
        super().__init__(pid, n, t, input_value)
        self.value = float(input_value)
        self.total_rounds = total_rounds
        self.rounds_done = 0

    def message_to(self, rnd: Round, dest: Pid) -> float:
        return self.value

    def receive(self, rnd: Round, received: Mapping[Pid, float]) -> None:
        values = [self.value]
        for v in received.values():
            try:
                values.append(float(v))
            except (TypeError, ValueError):
                values.append(self.value)  # garbage counts as an echo
        middle = reduce_values(values, self.t)
        self.value = sum(middle) / len(middle)
        self.rounds_done = rnd

    def decision(self) -> Optional[float]:
        if self.rounds_done < self.total_rounds:
            return None
        return self.value


class ApproximateAgreement(SyncProtocol):
    """k rounds of trimmed-mean averaging."""

    def __init__(self, k: int):
        self.k = k
        self.name = f"approximate-agreement-{k}"

    def rounds(self, n: int, t: int) -> int:
        return self.k

    def spawn(self, pid, n, t, input_value):
        return ApproximateAgreementProcess(pid, n, t, input_value, self.k)


def stretching_adversary(faulty: Sequence[Pid], low: float, high: float
                         ) -> ByzantineAdversary:
    """Byzantine processes that report the extreme ``low`` to low-valued
    honest processes and ``high`` to high-valued ones (by pid parity as a
    stand-in), maximizing the post-trim spread."""

    def behaviour(rnd: Round, src: Pid, dest: Pid, honest):
        return low if dest % 2 == 0 else high

    return ByzantineAdversary(faulty, behaviour)


def honest_range(run) -> float:
    values = [v for v in run.honest_decisions().values() if v is not None]
    return max(values) - min(values) if values else float("nan")


def convergence_ratio(
    n: int, t: int, k: int, spread: float = 1.0
) -> Tuple[float, float, float]:
    """Run k-round approximate agreement under the stretching adversary.

    Honest inputs alternate 0 and ``spread``; the t Byzantine processes
    (the highest pids) echo the extremes.  Returns
    ``(final_range, measured_ratio, round_by_round_bound)`` where
    measured_ratio = final_range / initial_range and the bound is the
    paper's (t/(n-2t))^k estimate for the round-by-round algorithm class.
    """
    if n <= 3 * t:
        raise ValueError("approximate agreement requires n > 3t")
    faulty = list(range(n - t, n))
    inputs = [0.0 if i % 2 == 0 else spread for i in range(n)]
    adversary = stretching_adversary(faulty, 0.0 - 0.0, spread)
    run = run_synchronous(ApproximateAgreement(k), inputs, adversary=adversary, t=t)
    final = honest_range(run)
    per_round = t / (n - 2 * t)
    return final, final / spread, per_round ** k
