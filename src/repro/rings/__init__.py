"""Computing in rings and other networks (survey §2.4).

Ring simulators (async and sync), the leader election algorithm zoo,
the anonymous-ring symmetry argument, symmetric-ring message bounds and
general-graph edge bounds.
"""

from .anonymous import (
    AnonymousProtocol,
    ItaiRodehProcess,
    MaxTokenProtocol,
    SilentProtocol,
    SymmetryTrace,
    itai_rodeh_election,
    run_lockstep,
    symmetry_certificate,
)
from .general_graphs import (
    GraphElectionResult,
    edge_involvement_series,
    flooding_election,
    hidden_node_demonstration,
)
from .hs import HSProcess, hs_election
from .lcr import LCRProcess, best_case_ring, lcr_election, worst_case_ring
from .lower_bounds import (
    bit_reversal_ring,
    message_series,
    n_log_n,
    order_equivalent_rotations,
    order_equivalent_segments,
    ring_election_certificate,
)
from .simulator import (
    LEFT,
    RIGHT,
    RingProcess,
    RingResult,
    SyncRingProcess,
    run_async_ring,
    run_sync_ring,
)
from .timeslice import TimeSliceProcess, timeslice_election

__all__ = [
    "RingProcess",
    "SyncRingProcess",
    "RingResult",
    "run_async_ring",
    "run_sync_ring",
    "LEFT",
    "RIGHT",
    "LCRProcess",
    "lcr_election",
    "worst_case_ring",
    "best_case_ring",
    "HSProcess",
    "hs_election",
    "TimeSliceProcess",
    "timeslice_election",
    "AnonymousProtocol",
    "MaxTokenProtocol",
    "SilentProtocol",
    "SymmetryTrace",
    "run_lockstep",
    "symmetry_certificate",
    "ItaiRodehProcess",
    "itai_rodeh_election",
    "bit_reversal_ring",
    "order_equivalent_segments",
    "order_equivalent_rotations",
    "message_series",
    "n_log_n",
    "ring_election_certificate",
    "flooding_election",
    "GraphElectionResult",
    "edge_involvement_series",
    "hidden_node_demonstration",
]
