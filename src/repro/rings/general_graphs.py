"""Elections and spanning trees in general graphs: the Omega(e) bound (§2.4.5).

Santoro [94] and Awerbuch–Goldreich–Peleg–Vainish [15]: solving global
problems (election, broadcast, spanning tree, counting) must "involve"
every edge — missing even one admits executions with extra nodes hidden
behind it — so e messages are necessary.  We build the standard flooding
election (max-ID flood + parent pointers = spanning tree) on arbitrary
networkx graphs, and the measurement confirms every edge carries traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from ..core.errors import ModelError


@dataclass
class GraphElectionResult:
    """Outcome of a flooding election on a general graph."""

    n: int
    edges: int
    messages: int
    leader: Hashable
    spanning_tree_edges: Set[Tuple[Hashable, Hashable]]
    edges_used: Set[Tuple[Hashable, Hashable]]

    @property
    def all_edges_involved(self) -> bool:
        return len(self.edges_used) == self.edges

    def tree_is_spanning(self, graph: nx.Graph) -> bool:
        tree = nx.Graph(list(self.spanning_tree_edges))
        tree.add_nodes_from(graph.nodes)
        return nx.is_connected(tree) and tree.number_of_edges() == len(graph) - 1


def flooding_election(graph: nx.Graph, seed: int = 0) -> GraphElectionResult:
    """Max-ID flooding election with convergecast acknowledgement.

    Every node floods the largest ID it has seen; a node adopting a new
    maximum remembers the neighbour it came from (parent pointer), and the
    parent pointers of the final maximum form a spanning tree rooted at
    the leader.  Message count is Theta(e * diameter) in the worst case —
    comfortably above the Omega(e) bound, which the measured
    ``edges_used`` set certifies is unavoidable in the strong sense that
    this algorithm really does touch every edge.
    """
    if graph.number_of_nodes() == 0:
        raise ModelError("empty graph")
    if not nx.is_connected(graph):
        raise ModelError("election requires a connected graph")
    import random

    rng = random.Random(seed)
    best: Dict[Hashable, Hashable] = {v: v for v in graph.nodes}
    parent: Dict[Hashable, Optional[Hashable]] = {v: None for v in graph.nodes}
    # FIFO channels per directed edge.
    channels: Dict[Tuple[Hashable, Hashable], List[Hashable]] = {}
    messages = 0
    edges_used: Set[Tuple[Hashable, Hashable]] = set()

    def send(src: Hashable, dst: Hashable, value: Hashable) -> None:
        nonlocal messages
        channels.setdefault((src, dst), []).append(value)
        messages += 1
        edges_used.add(tuple(sorted((src, dst), key=repr)))

    for v in graph.nodes:
        for u in graph.neighbors(v):
            send(v, u, best[v])

    while True:
        nonempty = [key for key, queue in channels.items() if queue]
        if not nonempty:
            break
        nonempty.sort(key=repr)
        src, dst = nonempty[rng.randrange(len(nonempty))]
        value = channels[(src, dst)].pop(0)
        if value > best[dst]:
            best[dst] = value
            parent[dst] = src
            for u in graph.neighbors(dst):
                if u != src:
                    send(dst, u, value)

    leader = max(graph.nodes)
    if any(b != leader for b in best.values()):
        raise ModelError("flooding terminated before the maximum spread")
    tree_edges = {
        tuple(sorted((v, parent[v]), key=repr))
        for v in graph.nodes
        if parent[v] is not None
    }
    return GraphElectionResult(
        n=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        messages=messages,
        leader=leader,
        spanning_tree_edges=tree_edges,
        edges_used=edges_used,
    )


def edge_involvement_series(
    graphs: Dict[str, nx.Graph], seed: int = 0
) -> Dict[str, Tuple[int, int, bool]]:
    """For each named graph: (messages, e, all edges involved?)."""
    out = {}
    for name, graph in graphs.items():
        result = flooding_election(graph, seed=seed)
        out[name] = (result.messages, result.edges, result.all_edges_involved)
    return out


def hidden_node_demonstration(n_path: int = 4) -> Tuple[int, int]:
    """The folk argument behind Omega(e): an algorithm that skips an edge
    cannot distinguish the graph from one with extra nodes hidden behind
    that edge.

    Runs a (deliberately broken) max-flood that never uses the last edge
    of a path graph, once on the path and once on the path extended by a
    larger-ID node hidden behind the unused edge.  It returns the same
    answer for both — although the true maxima differ — which is exactly
    why every edge must be involved.
    """
    def broken_flood_max(graph: nx.Graph, dead_edge) -> Hashable:
        best = {v: v for v in graph.nodes}
        changed = True
        while changed:
            changed = False
            for u, v in graph.edges:
                if tuple(sorted((u, v))) == tuple(sorted(dead_edge)):
                    continue
                m = max(best[u], best[v])
                if best[u] != m or best[v] != m:
                    best[u] = best[v] = m
                    changed = True
        return best[0]

    small = nx.path_graph(n_path)
    dead = (n_path - 2, n_path - 1)
    answer_small = broken_flood_max(small, dead)
    big = nx.path_graph(n_path + 1)  # one more node hidden past the dead edge
    answer_big = broken_flood_max(big, dead)
    return answer_small, answer_big
