"""Ring message lower bounds: symmetric rings and measured series (§2.4.2).

Burns' Omega(n log n) bound (asynchronous) and the Frederickson–Lynch /
Attiya–Snir–Warmuth bounds (synchronous, comparison-based) all rest on
*symmetric* ID arrangements: rings in which many segments are
order-equivalent, so comparison-based algorithms cannot tell them apart
until a chain of real messages spans the symmetric block, forcing many
sends.

This module provides the constructions and the measurement harness:

* :func:`bit_reversal_ring` — the maximally comparison-symmetric ring of
  size 2^k from [58] (adjacent segments of length 2^j are
  order-equivalent for every j);
* :func:`order_equivalent_rotations` — counts the symmetry the bound
  exploits;
* :func:`message_series` — runs an election algorithm over a family of
  rings, recording messages against the c * n log n curve for the E13
  bench;
* :func:`adversarial_lcr_messages` — the exact worst case for LCR,
  showing the n log n / n^2 separation between algorithms.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from ..impossibility.certificate import BoundCertificate
from .hs import hs_election
from .lcr import lcr_election, worst_case_ring
from .simulator import RingResult


def bit_reversal_ring(k: int) -> List[int]:
    """The bit-reversal permutation of 0..2^k-1, plus one.

    Its defining property: for every j <= k, adjacent segments of length
    2^j are order-equivalent (the comparison pattern inside each segment
    is identical) — the survey's example ring 0,4,2,6,1,5,3,7 is exactly
    bit_reversal_ring(3) minus one.
    """
    n = 1 << k
    out = []
    for i in range(n):
        reversed_bits = int(format(i, f"0{k}b")[::-1], 2)
        out.append(reversed_bits + 1)
    return out


def _comparison_pattern(segment: Sequence[int]) -> Tuple[Tuple[bool, ...], ...]:
    """The full pairwise comparison pattern of a segment."""
    return tuple(
        tuple(segment[a] < segment[b] for b in range(len(segment)))
        for a in range(len(segment))
    )


def order_equivalent_segments(ring: Sequence[int], length: int) -> int:
    """How many of the ring's length-``length`` aligned segments share the
    most common comparison pattern."""
    n = len(ring)
    patterns: Dict[Tuple, int] = {}
    for start in range(0, n, length):
        segment = [ring[(start + i) % n] for i in range(length)]
        key = _comparison_pattern(segment)
        patterns[key] = patterns.get(key, 0) + 1
    return max(patterns.values())


def order_equivalent_rotations(ring: Sequence[int], distance: int) -> bool:
    """Is the ring comparison-equivalent to its rotation by ``distance``?"""
    n = len(ring)
    rotated = [ring[(i + distance) % n] for i in range(n)]
    return _comparison_pattern(list(ring)) == _comparison_pattern(rotated)


ElectionAlgorithm = Callable[[List[int]], RingResult]


def message_series(
    algorithm: ElectionAlgorithm,
    sizes: Sequence[int],
    ring_builder: Callable[[int], List[int]],
) -> Dict[int, int]:
    """Messages used by ``algorithm`` on ``ring_builder(n)`` for each n."""
    out: Dict[int, int] = {}
    for n in sizes:
        result = algorithm(ring_builder(n))
        if not result.elected_exactly_one:
            raise AssertionError(f"election failed on ring of size {n}")
        out[n] = result.messages
    return out


def n_log_n(n: int, c: float = 1.0) -> float:
    return c * n * math.log2(max(n, 2))


def ring_election_certificate(sizes: Sequence[int] = (8, 16, 32, 64, 128)
                              ) -> BoundCertificate:
    """Certify the Theta(n log n) shape on bit-reversal rings.

    Measured: HS messages lie between n log2 n (the lower-bound curve,
    up to its constant) and 8 n log2 n + 4n (HS's textbook upper bound);
    LCR on its worst case exceeds the HS cost from moderate n on.
    """
    def builder(n: int) -> List[int]:
        k = int(math.log2(n))
        if 2 ** k != n:
            raise ValueError("bit-reversal rings need power-of-two sizes")
        return bit_reversal_ring(k)

    hs_measured = message_series(
        lambda r: hs_election(r, record_trace=False), sizes, builder)
    lcr_measured = message_series(
        lambda r: lcr_election(r, record_trace=False), sizes,
        lambda n: worst_case_ring(n)
    )
    cert = BoundCertificate(
        claim="leader election on rings costs Theta(n log n) messages",
        technique="symmetry (bit-reversal rings)",
        series={n: float(m) for n, m in hs_measured.items()},
        bound={n: n_log_n(n, 0.5) for n in sizes},
        direction="lower",
        details={
            "hs_messages": hs_measured,
            "lcr_worst_messages": lcr_measured,
            "hs_upper_curve": {n: 8 * n_log_n(n) + 4 * n for n in sizes},
        },
    )
    return cert
