"""Ring network simulators: asynchronous and synchronous (§2.4).

The ring is the survey's favourite network.  Two engines:

* :func:`run_async_ring` — event-driven asynchronous ring with FIFO
  channels and a seeded (or scripted) adversarial scheduler; counts
  messages, which is what every bound in §2.4.2 is about.
* :func:`run_sync_ring` — lockstep rounds, for the synchronous results
  (Frederickson–Lynch, Attiya–Snir–Warmuth) where *silence* carries
  information and time can be traded for messages.

Process interfaces are callback-based and deliberately small; positions
are anonymous — a process knows only its own local state (typically its
ID, if the model grants IDs) and the direction a message came from.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.budget import BudgetMeter
from ..core.errors import ModelError
from ..core.runtime import (
    DECLARE,
    DELIVER,
    OUTPUT,
    SEND,
    FaultAdversary,
    SchedulingAdversary,
    SimulationRuntime,
    Trace,
)

LEFT = "left"    # towards index - 1
RIGHT = "right"  # towards index + 1

# Actions a process may return from a callback:
#   ("send", direction, message)
#   ("leader",)          — declare itself the leader
#   ("nonleader",)       — declare itself a non-leader
#   ("output", value)    — emit a computed value (function computation)
Action = Tuple


class RingProcess(ABC):
    """One node of a ring network."""

    @abstractmethod
    def on_start(self) -> List[Action]:
        """Actions performed when the process wakes up."""

    @abstractmethod
    def on_message(self, direction: str, message: Hashable) -> List[Action]:
        """Actions performed on receiving ``message`` from ``direction``."""


@dataclass
class RingResult:
    """Outcome of a ring execution."""

    n: int
    messages: int
    leaders: List[int]
    nonleaders: List[int]
    outputs: Dict[int, Hashable]
    steps: int
    rounds: Optional[int] = None  # synchronous runs only
    trace: Optional[Trace] = field(repr=False, default=None, compare=False)

    @property
    def elected_exactly_one(self) -> bool:
        return len(self.leaders) == 1

    @property
    def election_complete(self) -> bool:
        return (
            len(self.leaders) == 1
            and len(self.nonleaders) == self.n - 1
        )


def run_async_ring(
    processes: Optional[Sequence[RingProcess]] = None,
    seed: int = 0,
    max_steps: int = 2_000_000,
    schedule: Optional[Callable[[List[Tuple[int, str]]], int]] = None,
    adversary: Optional[FaultAdversary] = None,
    process_factory: Optional[Callable[[], Sequence[RingProcess]]] = None,
    record_trace: bool = True,
    meter: Optional[BudgetMeter] = None,
) -> RingResult:
    """Execute the ring asynchronously with FIFO channels.

    Channels are per (node, direction) FIFO queues; each step delivers the
    head of one nonempty channel, chosen by the ``adversary``'s
    ``schedule`` power (default: seeded-uniform from the runtime RNG).
    The legacy ``schedule`` callable is still accepted and wrapped in a
    :class:`~repro.core.runtime.SchedulingAdversary`.

    The run is recorded in the unified trace schema; passing
    ``process_factory`` (fresh processes per call) instead of — or in
    addition to — ``processes`` makes the trace replayable through
    :func:`repro.core.runtime.replay`.
    """
    if processes is None:
        if process_factory is None:
            raise ModelError("need processes or process_factory")
        processes = list(process_factory())
    if schedule is not None and adversary is None:
        adversary = SchedulingAdversary(schedule)
    n = len(processes)
    runtime = SimulationRuntime(
        substrate="async-ring",
        protocol=type(processes[0]).__name__ if processes else "empty",
        seed=seed,
        adversary=adversary,
        record=record_trace,
    )
    channels: Dict[Tuple[int, str], List[Hashable]] = {}
    messages = 0
    leaders: List[int] = []
    nonleaders: List[int] = []
    outputs: Dict[int, Hashable] = {}
    record = record_trace

    def perform(node: int, actions: List[Action]) -> None:
        nonlocal messages
        for action in actions:
            kind = action[0]
            if kind == "send":
                _tag, direction, message = action
                if direction == RIGHT:
                    dest, arrival = (node + 1) % n, LEFT
                elif direction == LEFT:
                    dest, arrival = (node - 1) % n, RIGHT
                else:
                    raise ModelError(f"unknown direction {direction!r}")
                channels.setdefault((dest, arrival), []).append(message)
                messages += 1
                if record:
                    runtime.emit(SEND, node, (direction, message))
            elif kind == "leader":
                leaders.append(node)
                if record:
                    runtime.emit(DECLARE, node, "leader")
            elif kind == "nonleader":
                nonleaders.append(node)
                if record:
                    runtime.emit(DECLARE, node, "nonleader")
            elif kind == "output":
                outputs[node] = action[1]
                if record:
                    runtime.emit(OUTPUT, node, action[1])
            else:
                raise ModelError(f"unknown action {action!r}")

    for node, proc in enumerate(processes):
        perform(node, proc.on_start())

    steps = 0
    while steps < max_steps:
        if meter is not None:
            meter.charge_steps()
        nonempty = [key for key, queue in channels.items() if queue]
        if not nonempty:
            break
        nonempty.sort()
        node, direction = nonempty[runtime.choose_index(nonempty)]
        message = channels[(node, direction)].pop(0)
        if record:
            runtime.emit(DELIVER, node, (direction, message))
        perform(node, processes[node].on_message(direction, message))
        steps += 1
    if steps >= max_steps:
        raise ModelError(f"async ring did not quiesce within {max_steps} steps")

    trace: Optional[Trace] = None
    if record:
        replayer = None
        if process_factory is not None:
            def replayer(
                _factory=process_factory, _seed=seed, _max=max_steps,
                _adversary=adversary,
            ) -> Trace:
                if _adversary is not None:
                    _adversary.reset()
                return run_async_ring(
                    seed=_seed, max_steps=_max, adversary=_adversary,
                    process_factory=_factory,
                ).trace

        trace = runtime.finish(
            outcome={
                "messages": messages,
                "leaders": tuple(leaders),
                "nonleaders": tuple(sorted(nonleaders)),
            },
            replayer=replayer,
        )
    return RingResult(
        n=n, messages=messages, leaders=leaders, nonleaders=nonleaders,
        outputs=outputs, steps=steps, trace=trace,
    )


class SyncRingProcess(ABC):
    """One node of a synchronous ring: per-round send then receive."""

    @abstractmethod
    def send(self, rnd: int) -> Dict[str, Hashable]:
        """Messages for this round: direction -> message (omit for silence)."""

    @abstractmethod
    def receive(self, rnd: int, received: Dict[str, Hashable]) -> List[Action]:
        """Deliver this round's messages (keys absent = silence)."""

    def active(self, rnd: int) -> bool:
        """True while the process still intends to act in a later round.

        Silence-based algorithms (time-slice) override this so that rounds
        of deliberate silence do not count as quiescence.
        """
        return False


def run_sync_ring(
    processes: Optional[Sequence[SyncRingProcess]] = None,
    max_rounds: int = 1_000_000,
    process_factory: Optional[Callable[[], Sequence[SyncRingProcess]]] = None,
    record_trace: bool = True,
    meter: Optional[BudgetMeter] = None,
) -> RingResult:
    """Execute the ring in lockstep rounds until quiescence.

    Quiescence: a round in which nothing was sent and no process changed
    its declared status.  The message count excludes "null messages" —
    that is the point of the synchronous lower-bound discussion.

    As with :func:`run_async_ring`, the run is recorded in the unified
    trace schema and ``process_factory`` makes the trace replayable.
    """
    if processes is None:
        if process_factory is None:
            raise ModelError("need processes or process_factory")
        processes = list(process_factory())
    n = len(processes)
    runtime = SimulationRuntime(
        substrate="sync-ring",
        protocol=type(processes[0]).__name__ if processes else "empty",
        record=record_trace,
    )
    messages = 0
    leaders: List[int] = []
    nonleaders: List[int] = []
    outputs: Dict[int, Hashable] = {}
    halted = False
    record = record_trace

    rnd = 0
    while not halted and rnd < max_rounds:
        if meter is not None:
            meter.charge_steps()
        rnd += 1
        outbox: Dict[Tuple[int, str], Hashable] = {}
        for node, proc in enumerate(processes):
            for direction, message in proc.send(rnd).items():
                if message is None:
                    continue
                if direction == RIGHT:
                    outbox[((node + 1) % n, LEFT)] = message
                elif direction == LEFT:
                    outbox[((node - 1) % n, RIGHT)] = message
                else:
                    raise ModelError(f"unknown direction {direction!r}")
                messages += 1
                if record:
                    runtime.emit(SEND, node, (direction, message), round=rnd)
        any_action = bool(outbox)
        for node, proc in enumerate(processes):
            received = {
                direction: message
                for (dest, direction), message in outbox.items()
                if dest == node
            }
            if record and received:
                runtime.emit(
                    DELIVER, node, tuple(sorted(received.items())), round=rnd
                )
            for action in proc.receive(rnd, received):
                any_action = True
                if action[0] == "leader":
                    leaders.append(node)
                    if record:
                        runtime.emit(DECLARE, node, "leader", round=rnd)
                elif action[0] == "nonleader":
                    nonleaders.append(node)
                    if record:
                        runtime.emit(DECLARE, node, "nonleader", round=rnd)
                elif action[0] == "output":
                    outputs[node] = action[1]
                    if record:
                        runtime.emit(OUTPUT, node, action[1], round=rnd)
                else:
                    raise ModelError(f"unknown action {action!r}")
        if not any_action and not any(
            proc.active(rnd) for proc in processes
        ):
            halted = True

    trace: Optional[Trace] = None
    if record:
        replayer = None
        if process_factory is not None:
            def replayer(_factory=process_factory, _max=max_rounds) -> Trace:
                return run_sync_ring(
                    max_rounds=_max, process_factory=_factory
                ).trace

        trace = runtime.finish(
            outcome={
                "messages": messages,
                "leaders": tuple(leaders),
                "rounds": rnd,
            },
            replayer=replayer,
        )
    return RingResult(
        n=n, messages=messages, leaders=leaders, nonleaders=nonleaders,
        outputs=outputs, steps=rnd, rounds=rnd, trace=trace,
    )
