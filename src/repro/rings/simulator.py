"""Ring network simulators: asynchronous and synchronous (§2.4).

The ring is the survey's favourite network.  Two engines:

* :func:`run_async_ring` — event-driven asynchronous ring with FIFO
  channels and a seeded (or scripted) adversarial scheduler; counts
  messages, which is what every bound in §2.4.2 is about.
* :func:`run_sync_ring` — lockstep rounds, for the synchronous results
  (Frederickson–Lynch, Attiya–Snir–Warmuth) where *silence* carries
  information and time can be traded for messages.

Process interfaces are callback-based and deliberately small; positions
are anonymous — a process knows only its own local state (typically its
ID, if the model grants IDs) and the direction a message came from.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import ModelError

LEFT = "left"    # towards index - 1
RIGHT = "right"  # towards index + 1

# Actions a process may return from a callback:
#   ("send", direction, message)
#   ("leader",)          — declare itself the leader
#   ("nonleader",)       — declare itself a non-leader
#   ("output", value)    — emit a computed value (function computation)
Action = Tuple


class RingProcess(ABC):
    """One node of a ring network."""

    @abstractmethod
    def on_start(self) -> List[Action]:
        """Actions performed when the process wakes up."""

    @abstractmethod
    def on_message(self, direction: str, message: Hashable) -> List[Action]:
        """Actions performed on receiving ``message`` from ``direction``."""


@dataclass
class RingResult:
    """Outcome of a ring execution."""

    n: int
    messages: int
    leaders: List[int]
    nonleaders: List[int]
    outputs: Dict[int, Hashable]
    steps: int
    rounds: Optional[int] = None  # synchronous runs only

    @property
    def elected_exactly_one(self) -> bool:
        return len(self.leaders) == 1

    @property
    def election_complete(self) -> bool:
        return (
            len(self.leaders) == 1
            and len(self.nonleaders) == self.n - 1
        )


def run_async_ring(
    processes: Sequence[RingProcess],
    seed: int = 0,
    max_steps: int = 2_000_000,
    schedule: Optional[Callable[[List[Tuple[int, str]]], int]] = None,
) -> RingResult:
    """Execute the ring asynchronously with FIFO channels.

    Channels are per (node, direction) FIFO queues; each step delivers the
    head of one nonempty channel, chosen uniformly by a seeded RNG (or by
    ``schedule``, a function from the list of nonempty channel keys to a
    chosen index — the general adversary hook).
    """
    n = len(processes)
    rng = random.Random(seed)
    channels: Dict[Tuple[int, str], List[Hashable]] = {}
    messages = 0
    leaders: List[int] = []
    nonleaders: List[int] = []
    outputs: Dict[int, Hashable] = {}

    def perform(node: int, actions: List[Action]) -> None:
        nonlocal messages
        for action in actions:
            kind = action[0]
            if kind == "send":
                _tag, direction, message = action
                if direction == RIGHT:
                    dest, arrival = (node + 1) % n, LEFT
                elif direction == LEFT:
                    dest, arrival = (node - 1) % n, RIGHT
                else:
                    raise ModelError(f"unknown direction {direction!r}")
                channels.setdefault((dest, arrival), []).append(message)
                messages += 1
            elif kind == "leader":
                leaders.append(node)
            elif kind == "nonleader":
                nonleaders.append(node)
            elif kind == "output":
                outputs[node] = action[1]
            else:
                raise ModelError(f"unknown action {action!r}")

    for node, proc in enumerate(processes):
        perform(node, proc.on_start())

    steps = 0
    while steps < max_steps:
        nonempty = [key for key, queue in channels.items() if queue]
        if not nonempty:
            break
        nonempty.sort()
        if schedule is not None:
            index = schedule(nonempty)
        else:
            index = rng.randrange(len(nonempty))
        node, direction = nonempty[index]
        message = channels[(node, direction)].pop(0)
        perform(node, processes[node].on_message(direction, message))
        steps += 1
    if steps >= max_steps:
        raise ModelError(f"async ring did not quiesce within {max_steps} steps")
    return RingResult(
        n=n, messages=messages, leaders=leaders, nonleaders=nonleaders,
        outputs=outputs, steps=steps,
    )


class SyncRingProcess(ABC):
    """One node of a synchronous ring: per-round send then receive."""

    @abstractmethod
    def send(self, rnd: int) -> Dict[str, Hashable]:
        """Messages for this round: direction -> message (omit for silence)."""

    @abstractmethod
    def receive(self, rnd: int, received: Dict[str, Hashable]) -> List[Action]:
        """Deliver this round's messages (keys absent = silence)."""

    def active(self, rnd: int) -> bool:
        """True while the process still intends to act in a later round.

        Silence-based algorithms (time-slice) override this so that rounds
        of deliberate silence do not count as quiescence.
        """
        return False


def run_sync_ring(
    processes: Sequence[SyncRingProcess],
    max_rounds: int = 1_000_000,
) -> RingResult:
    """Execute the ring in lockstep rounds until quiescence.

    Quiescence: a round in which nothing was sent and no process changed
    its declared status.  The message count excludes "null messages" —
    that is the point of the synchronous lower-bound discussion.
    """
    n = len(processes)
    messages = 0
    leaders: List[int] = []
    nonleaders: List[int] = []
    outputs: Dict[int, Hashable] = {}
    halted = False

    rnd = 0
    while not halted and rnd < max_rounds:
        rnd += 1
        outbox: Dict[Tuple[int, str], Hashable] = {}
        for node, proc in enumerate(processes):
            for direction, message in proc.send(rnd).items():
                if message is None:
                    continue
                if direction == RIGHT:
                    outbox[((node + 1) % n, LEFT)] = message
                elif direction == LEFT:
                    outbox[((node - 1) % n, RIGHT)] = message
                else:
                    raise ModelError(f"unknown direction {direction!r}")
                messages += 1
        any_action = bool(outbox)
        for node, proc in enumerate(processes):
            received = {
                direction: message
                for (dest, direction), message in outbox.items()
                if dest == node
            }
            for action in proc.receive(rnd, received):
                any_action = True
                if action[0] == "leader":
                    leaders.append(node)
                elif action[0] == "nonleader":
                    nonleaders.append(node)
                elif action[0] == "output":
                    outputs[node] = action[1]
                else:
                    raise ModelError(f"unknown action {action!r}")
        if not any_action and not any(
            proc.active(rnd) for proc in processes
        ):
            halted = True
    return RingResult(
        n=n, messages=messages, leaders=leaders, nonleaders=nonleaders,
        outputs=outputs, steps=rnd, rounds=rnd,
    )
