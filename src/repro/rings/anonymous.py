"""Anonymous rings: Angluin's symmetry impossibility and the randomized
escape (§2.4.1).

In a ring of indistinguishable deterministic processes there is nothing to
break the rotational symmetry: *"anything that one process can do, the
others symmetric to it might do also."*  The mechanization is a
constructive adversary over arbitrary protocols:
:func:`symmetry_certificate` runs any deterministic anonymous protocol in
lockstep and verifies the invariant that all processes remain in identical
states forever — so if one declares itself leader, all do.

Itai and Rodeh's randomized algorithm [66] breaks the symmetry with coin
flips; :class:`ItaiRodehProcess` implements it (known ring size), and the
tests measure its success probability and message cost.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.errors import ModelError
from ..core.runtime import (
    DECLARE,
    SEND,
    SimulationRuntime,
    Trace,
    derive_seed,
)
from ..impossibility.certificate import ImpossibilityCertificate
from .simulator import LEFT, RIGHT, Action, RingProcess, RingResult, run_async_ring


class AnonymousProtocol(ABC):
    """A deterministic protocol for anonymous ring processes.

    All processes run the same code and start in the same state; the only
    per-process information is the ring size (if ``knows_n``).
    """

    knows_n = True

    @abstractmethod
    def initial_state(self, n: int) -> Hashable:
        """The common initial state."""

    @abstractmethod
    def step(
        self, state: Hashable, received: Dict[str, Hashable]
    ) -> Tuple[Hashable, Dict[str, Hashable], Optional[str]]:
        """One lockstep round: (new state, messages by direction, verdict).

        ``received`` maps direction to the message that arrived (absent =
        silence).  ``verdict`` may be "leader" or "nonleader" or None.
        """


@dataclass
class SymmetryTrace:
    """The lockstep execution of an anonymous protocol."""

    n: int
    rounds: int
    states_identical_throughout: bool
    verdicts: List[Optional[str]]
    final_state: Hashable
    trace: Optional[Trace] = None


def run_lockstep(protocol: AnonymousProtocol, n: int, rounds: int
                 ) -> SymmetryTrace:
    """Run the fully symmetric execution: all processes step together.

    Because all processes start identical and the ring is rotation
    symmetric, each round every process receives exactly what every other
    receives (its neighbours are in the same state as everyone else's
    neighbours); the trace records that the states stay equal — the
    induction at the heart of Angluin's argument, checked concretely.
    """
    runtime = SimulationRuntime(
        substrate="lockstep-ring", protocol=type(protocol).__name__
    )
    states: List[Hashable] = [protocol.initial_state(n) for _ in range(n)]
    inboxes: List[Dict[str, Hashable]] = [{} for _ in range(n)]
    verdicts: List[Optional[str]] = [None] * n
    identical = True
    for _round in range(rounds):
        results = [
            protocol.step(states[i], inboxes[i]) for i in range(n)
        ]
        new_inboxes: List[Dict[str, Hashable]] = [{} for _ in range(n)]
        for i, (new_state, sends, verdict) in enumerate(results):
            states[i] = new_state
            if verdict is not None:
                verdicts[i] = verdict
                runtime.emit(DECLARE, i, verdict, round=_round + 1)
            for direction, message in sends.items():
                if message is None:
                    continue
                if direction == RIGHT:
                    new_inboxes[(i + 1) % n][LEFT] = message
                elif direction == LEFT:
                    new_inboxes[(i - 1) % n][RIGHT] = message
                else:
                    raise ModelError(f"unknown direction {direction!r}")
                runtime.emit(SEND, i, (direction, message), round=_round + 1)
        inboxes = new_inboxes
        if len(set(map(repr, states))) != 1:
            identical = False
            break

    def replayer(_protocol=protocol, _n=n, _rounds=rounds) -> Trace:
        return run_lockstep(_protocol, _n, _rounds).trace

    unified = runtime.finish(
        outcome={"identical": identical, "verdicts": tuple(verdicts)},
        replayer=replayer,
    )
    return SymmetryTrace(
        n=n,
        rounds=rounds,
        states_identical_throughout=identical,
        verdicts=verdicts,
        final_state=states[0],
        trace=unified,
    )


def symmetry_certificate(
    protocol: AnonymousProtocol, n: int, rounds: int = 200
) -> ImpossibilityCertificate:
    """Defeat any deterministic anonymous leader election protocol.

    Runs the symmetric lockstep execution and checks the dichotomy: either
    no process ever declares leadership (the protocol fails to elect), or
    all n declare simultaneously (it elects n leaders).  Raises
    :class:`ModelError` if symmetry was broken — impossible for a
    deterministic protocol, so it indicates hidden nondeterminism.
    """
    trace = run_lockstep(protocol, n, rounds)
    if not trace.states_identical_throughout:
        raise ModelError(
            "lockstep symmetry broke — the protocol is not deterministic "
            "and anonymous as claimed"
        )
    leaders = sum(1 for v in trace.verdicts if v == "leader")
    if leaders == 1:
        raise ModelError("exactly one leader under symmetry — engine bug")
    outcome = "no leader is ever declared" if leaders == 0 else (
        f"all {leaders} processes declare themselves leader simultaneously"
    )
    return ImpossibilityCertificate(
        claim=(
            "deterministic anonymous leader election is impossible on a "
            f"ring of {n}: under the symmetric schedule, {outcome}"
        ),
        scope=f"this protocol, lockstep schedule, {rounds} rounds",
        technique="symmetry",
        details={"leaders_declared": leaders, "rounds": trace.rounds},
    )


# ---------------------------------------------------------------------------
# Deterministic candidates for the certificate to defeat
# ---------------------------------------------------------------------------


class MaxTokenProtocol(AnonymousProtocol):
    """The natural attempt: circulate tokens, keep the 'largest' — but all
    tokens are identical, so after n rounds everyone has seen only ties
    and (per its rule) declares leadership."""

    def initial_state(self, n):
        return ("fresh", n, 0)

    def step(self, state, received):
        tag, n, age = state
        verdict = None
        sends: Dict[str, Hashable] = {}
        if tag == "fresh":
            sends[RIGHT] = ("token",)
            state = ("waiting", n, 0)
        elif tag == "waiting":
            if LEFT in received:
                age += 1
                if age >= n:
                    state = ("done", n, age)
                    verdict = "leader"  # never beaten: claim victory
                else:
                    sends[RIGHT] = ("token",)
                    state = ("waiting", n, age)
        return state, sends, verdict


class SilentProtocol(AnonymousProtocol):
    """The degenerate candidate that never does anything."""

    def initial_state(self, n):
        return "idle"

    def step(self, state, received):
        return state, {}, None


# ---------------------------------------------------------------------------
# The randomized escape: Itai–Rodeh
# ---------------------------------------------------------------------------


class ItaiRodehProcess(RingProcess):
    """Itai–Rodeh leader election with known ring size n.

    Each phase, every active process draws a random ID from {1..id_space}
    and sends it around with a hop counter and a "unique so far" bit.  A
    process that sees its own token return with the bit intact and hop
    count n wins; ties (the bit cleared) trigger another phase among the
    maximal drawers.
    """

    def __init__(self, n: int, rng: random.Random, id_space: int = 2):
        self.n = n
        self.rng = rng
        self.id_space = id_space
        self.phase = 0
        self.active = True
        self.ident: Optional[int] = None
        self.status = "unknown"

    def _draw(self) -> List[Action]:
        self.phase += 1
        self.ident = self.rng.randint(1, self.id_space)
        return [("send", RIGHT, ("token", self.phase, self.ident, 1, True))]

    def on_start(self) -> List[Action]:
        return self._draw()

    def on_message(self, direction: str, message: Hashable) -> List[Action]:
        kind = message[0]
        if kind == "token":
            _tag, phase, ident, hops, unique = message
            if hops == self.n:
                # The token is back home.
                if not self.active:
                    return []
                if unique:
                    self.status = "leader"
                    self.active = False
                    return [("leader",), ("send", RIGHT, ("elected",))]
                return self._draw()  # tie: next phase
            if not self.active:
                return [("send", RIGHT, ("token", phase, ident, hops + 1, unique))]
            # Compare against our current draw for this phase.
            if phase > self.phase or (phase == self.phase and ident > self.ident):
                self.active = False  # beaten: relay and drop out
                return [("send", RIGHT, ("token", phase, ident, hops + 1, unique))]
            if phase == self.phase and ident == self.ident:
                # A tie with someone else's token: clear the bit.
                return [("send", RIGHT, ("token", phase, ident, hops + 1, False))]
            return []  # smaller token dies here
        if kind == "elected":
            if self.status == "unknown":
                self.status = "nonleader"
                return [("nonleader",), ("send", RIGHT, message)]
            return []
        return []


def itai_rodeh_election(n: int, seed: int = 0, id_space: int = 2) -> RingResult:
    """Run Itai–Rodeh on an anonymous ring of size n.

    Per-process coin RNGs are derived from the master seed with
    :func:`~repro.core.runtime.derive_seed`, so the whole election —
    coins and scheduling — is a deterministic, replayable function of
    ``(n, seed, id_space)``.
    """
    def factory() -> List[ItaiRodehProcess]:
        return [
            ItaiRodehProcess(
                n, random.Random(derive_seed(seed, "itai-rodeh", i)), id_space
            )
            for i in range(n)
        ]

    return run_async_ring(seed=seed, process_factory=factory)
