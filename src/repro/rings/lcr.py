"""LeLann–Chang–Roberts leader election: the O(n^2) baseline (§2.4.2).

Unidirectional ring with unique IDs: forward every ID larger than your
own, swallow smaller ones; your own ID coming back means you won.  Worst
case Theta(n^2) messages (IDs in descending order around the ring),
average O(n log n) — the baseline every Omega(n log n) lower bound is
measured against.
"""

from __future__ import annotations

from typing import Hashable, List

from .simulator import RIGHT, Action, RingProcess, RingResult, run_async_ring


class LCRProcess(RingProcess):
    """One LCR participant; messages travel rightward."""

    def __init__(self, ident: Hashable):
        self.ident = ident
        self.status = "unknown"

    def on_start(self) -> List[Action]:
        return [("send", RIGHT, ("probe", self.ident))]

    def on_message(self, direction: str, message: Hashable) -> List[Action]:
        kind = message[0]
        if kind == "probe":
            ident = message[1]
            if ident > self.ident:
                return [("send", RIGHT, message)]
            if ident == self.ident and self.status == "unknown":
                self.status = "leader"
                # Announce so non-leaders can halt knowing the outcome.
                return [("leader",), ("send", RIGHT, ("elected", self.ident))]
            return []  # swallow smaller IDs
        if kind == "elected":
            if message[1] != self.ident:
                self.status = "nonleader"
                return [("nonleader",), ("send", RIGHT, message)]
            return []  # announcement completed the loop
        return []


def lcr_election(idents: List[Hashable], seed: int = 0,
                 record_trace: bool = True) -> RingResult:
    """Run LCR on the given ID arrangement."""
    idents = list(idents)
    return run_async_ring(
        seed=seed,
        process_factory=lambda: [LCRProcess(i) for i in idents],
        record_trace=record_trace,
    )


def worst_case_ring(n: int) -> List[int]:
    """Descending IDs force Theta(n^2) probe messages."""
    return list(range(n, 0, -1))


def best_case_ring(n: int) -> List[int]:
    """Ascending IDs let every probe die after one hop: O(n)."""
    return list(range(1, n + 1))
