"""Hirschberg–Sinclair leader election: O(n log n), matching Burns' bound.

Bidirectional ring: a candidate in phase k probes distance 2^k in both
directions; probes carrying a larger ID turn back as winners, otherwise
die; a candidate that survives its own probes in both directions enters
phase k+1; a probe returning to its originator from all the way around
means victory.  Total messages O(n log n) — the matching upper bound to
the Omega(n log n) lower bounds of §2.4.2.
"""

from __future__ import annotations

from typing import Hashable, List

from .simulator import LEFT, RIGHT, Action, RingProcess, RingResult, run_async_ring


def _opposite(direction: str) -> str:
    return LEFT if direction == RIGHT else RIGHT


class HSProcess(RingProcess):
    """One Hirschberg–Sinclair participant."""

    def __init__(self, ident: Hashable):
        self.ident = ident
        self.status = "candidate"
        self.phase = 0
        self.replies_pending = 0

    def _launch_phase(self) -> List[Action]:
        self.replies_pending = 2
        hops = 2 ** self.phase
        probe_out = ("probe", self.ident, self.phase, hops)
        return [("send", LEFT, probe_out), ("send", RIGHT, probe_out)]

    def on_start(self) -> List[Action]:
        return self._launch_phase()

    def on_message(self, direction: str, message: Hashable) -> List[Action]:
        kind = message[0]
        if kind == "probe":
            _tag, ident, phase, hops = message
            if ident == self.ident:
                # Our probe went all the way around: we win.
                if self.status != "leader":
                    self.status = "leader"
                    return [("leader",), ("send", RIGHT, ("elected", self.ident))]
                return []
            if ident < self.ident:
                return []  # swallowed: the probe loses here
            if hops > 1:
                return [("send", _opposite(direction), ("probe", ident, phase, hops - 1))]
            # Probe survived its full distance: send it home as a winner.
            return [("send", direction, ("reply", ident, phase))]
        if kind == "reply":
            _tag, ident, phase = message
            if ident != self.ident:
                return [("send", _opposite(direction), message)]
            if phase != self.phase:
                return []
            self.replies_pending -= 1
            if self.replies_pending == 0:
                self.phase += 1
                return self._launch_phase()
            return []
        if kind == "elected":
            if message[1] != self.ident:
                if self.status != "nonleader":
                    self.status = "nonleader"
                    return [("nonleader",), ("send", RIGHT, message)]
                return []
            return []
        return []


def hs_election(idents: List[Hashable], seed: int = 0,
                record_trace: bool = True) -> RingResult:
    """Run Hirschberg–Sinclair on the given ID arrangement."""
    idents = list(idents)
    return run_async_ring(
        seed=seed,
        process_factory=lambda: [HSProcess(i) for i in idents],
        record_trace=record_trace,
    )
