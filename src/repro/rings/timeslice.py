"""The time-slice algorithm: O(n) messages by spending unbounded time.

The survey highlights Frederickson–Lynch's *counterexample algorithm*
(§2.4.2): the Omega(n log n) message bound for synchronous rings needs its
assumptions (comparison-based, or time bounded relative to the ID space),
because dropping them admits an election with only O(n) messages — at a
time cost exponential in the smallest ID.

Ring size n is known.  Time is sliced into windows of n rounds: window v
belongs to ID v.  A process with ID v stays silent until window v; if no
token passed it before its window opens, it launches its own token, which
circulates and elects it.  The smallest ID always wins, exactly n
messages are sent (the winning token's n hops), and the round count is
about n * (min_id), demonstrating the message/time trade the lower bound
forbids comparison-based algorithms from making.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from .simulator import (
    LEFT,
    RIGHT,
    Action,
    RingResult,
    SyncRingProcess,
    run_sync_ring,
)


class TimeSliceProcess(SyncRingProcess):
    """One participant of the time-slice algorithm."""

    def __init__(self, ident: int, n: int):
        if ident < 1:
            raise ValueError("time-slice IDs must be positive integers")
        self.ident = ident
        self.n = n
        self.seen_token = False
        self.launched = False
        self.to_forward: Hashable = None
        self.status = "unknown"

    def _window_open(self, rnd: int) -> bool:
        """Window for ID v is rounds (v-1)*n + 1 .. v*n."""
        return (self.ident - 1) * self.n + 1 <= rnd

    def active(self, rnd: int) -> bool:
        # Waiting for our window is deliberate silence, not quiescence.
        return self.status == "unknown"

    def send(self, rnd: int) -> Dict[str, Hashable]:
        if self.to_forward is not None:
            message = self.to_forward
            self.to_forward = None
            return {RIGHT: message}
        if (
            not self.seen_token
            and not self.launched
            and self._window_open(rnd)
        ):
            self.launched = True
            return {RIGHT: ("token", self.ident, 1)}
        return {}

    def receive(self, rnd: int, received: Dict[str, Hashable]) -> List[Action]:
        message = received.get(LEFT)
        if message is None:
            return []
        _tag, ident, hops = message
        self.seen_token = True
        if ident == self.ident:
            if self.status == "unknown":
                self.status = "leader"
                return [("leader",)]
            return []
        self.to_forward = ("token", ident, hops + 1)
        if self.status == "unknown":
            self.status = "nonleader"
            return [("nonleader",)]
        return []


def timeslice_election(idents: List[int],
                       record_trace: bool = True) -> RingResult:
    """Run the time-slice algorithm; returns messages AND rounds."""
    idents = list(idents)
    n = len(idents)
    return run_sync_ring(
        process_factory=lambda: [TimeSliceProcess(i, n) for i in idents],
        record_trace=record_trace,
    )
