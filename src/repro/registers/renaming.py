"""Wait-free renaming from atomic snapshots (§2.2.4, Attiya et al. [10]).

The process renaming problem: processes holding distinct names from a
huge ID space must choose distinct names from a small one.  Attiya,
Bar-Noy, Dolev, Koller, Peleg and Reischuk showed n new names are
impossible with one fault, that n + t names suffice, and left the exact
boundary open (the survey's open question 4).

This module implements the classic snapshot-based algorithm on top of
:mod:`repro.registers.snapshot` — a deliberate demonstration that the
substrates compose: renaming runs *on* the atomic-snapshot object, which
runs *on* plain registers, all under the same adversarial interleaving
harness.

Algorithm (one-shot renaming): each process repeatedly

1. updates its snapshot segment with (original id, current proposal);
2. scans;
3. if its proposal collides with another's, re-proposes the r-th smallest
   name not proposed by others, where r is the rank of its id among the
   participants seen; otherwise it decides.

For n participants and up to n - 1 failures, decided names are distinct
and bounded by 2n - 1 — the wait-free upper bound the survey quotes as
"n + t names suffice".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..core.errors import ModelError
from .concurrent import RegisterSpace, ScheduledOp, run_concurrent
from .snapshot import SnapshotObject, initial_registers


@dataclass
class RenamingOutcome:
    n: int
    original_ids: Tuple[int, ...]
    new_names: Dict[int, int]  # original id -> decided name
    max_name: int
    steps_hint: int

    @property
    def names_distinct(self) -> bool:
        values = list(self.new_names.values())
        return len(values) == len(set(values))

    def within_bound(self, t: Optional[int] = None) -> bool:
        """Names live in 1 .. n + t (wait-free: t = n - 1, i.e. 2n - 1)."""
        t = self.n - 1 if t is None else t
        return self.max_name <= self.n + t


class RenamingProtocol:
    """The snapshot-based renaming algorithm for one process."""

    def __init__(self, n: int, snapshot: SnapshotObject):
        self.n = n
        self.snapshot = snapshot

    def rename_impl_for(self, index: int, original_id: int):
        """Build the operation generator for the process at segment
        ``index`` holding ``original_id``."""

        def rename_impl(_argument) -> Generator:
            proposal = 1
            while True:
                # Publish (id, proposal) in our segment.
                yield from self.snapshot.update_impl((index, (original_id, proposal)))
                view = yield from self.snapshot.scan_impl(None)
                others = [
                    entry for i, entry in enumerate(view)
                    if i != index and entry is not None
                ]
                taken = {prop for (_pid, prop) in others}
                if proposal not in taken:
                    return proposal
                participants = sorted(
                    [pid for (pid, _prop) in others] + [original_id]
                )
                rank = participants.index(original_id) + 1
                free = [
                    name for name in range(1, 2 * self.n)
                    if name not in taken
                ]
                proposal = free[rank - 1]

        return rename_impl


def run_renaming(
    original_ids: Sequence[int],
    seed: int = 0,
    active: Optional[Sequence[int]] = None,
) -> RenamingOutcome:
    """Run one-shot renaming under a seeded adversarial interleaving.

    ``active`` selects which processes participate (the rest are crashed
    from the start — wait-freedom means the others still finish).
    """
    n = len(original_ids)
    if len(set(original_ids)) != n:
        raise ModelError("original ids must be distinct")
    snapshot = SnapshotObject(n)
    protocol = RenamingProtocol(n, snapshot)
    space = RegisterSpace(initial_registers(n))
    indices = list(range(n)) if active is None else list(active)
    ops = [
        ScheduledOp(
            f"p{index}", "rename", None,
            protocol.rename_impl_for(index, original_ids[index]),
        )
        for index in indices
    ]
    history = run_concurrent(space, ops, seed=seed)
    names: Dict[int, int] = {}
    for op in history:
        index = int(str(op.process)[1:])
        names[original_ids[index]] = op.result
    return RenamingOutcome(
        n=n,
        original_ids=tuple(original_ids),
        new_names=names,
        max_name=max(names.values()) if names else 0,
        steps_hint=len(history),
    )


def renaming_series(
    original_ids: Sequence[int], seeds: Sequence[int]
) -> List[RenamingOutcome]:
    return [run_renaming(original_ids, seed=s) for s in seeds]
