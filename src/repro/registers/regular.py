"""Regular vs. atomic registers: Lamport's boundary (§2.3, [71]).

Lamport's regular register guarantees only that a read overlapping a
write returns the old or the new value; atomicity additionally forbids
*new/old inversion* between consecutive reads.  His impossibility remark
— atomic registers cannot be implemented from regular ones "unless the
readers write" — is mechanized here as three machine-checked exhibits:

1. :func:`inversion_history` — a regular register itself exhibits a
   non-linearizable history (read 1 sees the new value, read 2 the old);

2. :func:`SingleReaderMonotonic` — with ONE reader, sequence numbers plus
   reader-local monotonicity already restore atomicity (checked over many
   adversarial schedules): the impossibility is specifically about
   multiple readers;

3. :func:`two_reader_failure` — the same construction with TWO readers
   (who do not write anything shared) is defeated: an adversarial flux
   choice hands reader A the new value and reader B, later, the old one,
   and no local bookkeeping can repair it — readers would have to write.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from .concurrent import RegisterSpace, ScheduledOp, run_concurrent
from .history import Operation, RegisterSpec, is_linearizable

REG = "r"


# -- raw regular-register operations ----------------------------------------

def raw_read(_argument: Any) -> Generator:
    value = yield ("read", REG)
    return value


def raw_write(value: Any) -> Generator:
    yield ("write", REG, value)
    return None


def inversion_history() -> List[Operation]:
    """Produce the canonical new/old inversion on one regular register.

    Writer begins writing 1 over 0; reader A reads during the write and is
    given the new value; reader B reads later (still during the write) and
    is given the old value.  Non-linearizable as an atomic register.
    """
    first_flux_read = {"served": 0}

    def chooser(register, old, new):
        first_flux_read["served"] += 1
        return new if first_flux_read["served"] == 1 else old

    space = RegisterSpace({REG: 0}, semantics="regular", flux_chooser=chooser)
    ops = [
        ScheduledOp("writer", "write", 1, raw_write),
        ScheduledOp("readerA", "read", None, raw_read),
        ScheduledOp("readerB", "read", None, raw_read),
    ]
    # Writer yields its write (flux opens); A reads (new); B reads (old);
    # then everyone finishes.
    schedule = ["writer", "readerA", "readerA", "readerB", "readerB", "writer"]
    return run_concurrent(space, ops, schedule=schedule)


# -- sequence-numbered construction, one reader -------------------------------

class SingleReaderMonotonic:
    """SRSW atomic register from a regular register.

    The writer writes (seq, value); the reader remembers the highest
    (seq, value) it has returned and never goes backwards.  With a single
    reader this eliminates new/old inversion — reads are totally ordered
    at one process, so monotonicity in seq is exactly atomicity.
    """

    def __init__(self):
        self.last: Tuple[int, Any] = (0, None)

    def write_impl(self, argument: Tuple[int, Any]) -> Generator:
        yield ("write", REG, argument)
        return None

    def read_impl(self, _argument: Any) -> Generator:
        seen = yield ("read", REG)
        if seen[0] >= self.last[0]:
            self.last = seen
        return self.last[1]


def single_reader_histories(
    writes: int = 3, reads: int = 4, seeds: Sequence[int] = range(20)
) -> List[List[Operation]]:
    """Generate seeded adversarial histories of the SRSW construction."""
    histories = []
    for seed in seeds:
        construction = SingleReaderMonotonic()
        space = RegisterSpace({REG: (0, None)}, semantics="regular", seed=seed)
        ops: List[ScheduledOp] = []
        for k in range(writes):
            ops.append(
                ScheduledOp("writer", "write", (k + 1, f"v{k + 1}"),
                            construction.write_impl)
            )
        for _ in range(reads):
            ops.append(
                ScheduledOp("reader", "read", None, construction.read_impl)
            )
        histories.append(run_concurrent(space, ops, seed=seed))
    return histories


def check_seq_register_history(history: Sequence[Operation]
                               ) -> Optional[List[Operation]]:
    """Linearizability against a register holding values, where writes carry
    (seq, value) pairs but reads return bare values."""

    class _Spec(RegisterSpec):
        def apply(self, kind, argument):
            if kind == "write":
                self.value = argument[1]
                return None
            return self.value

        def copy(self):
            spec = _Spec()
            spec.value = self.value
            return spec

    return is_linearizable(history, _Spec)


# -- the two-reader failure ---------------------------------------------------

class TwoReaderMonotonic:
    """The same construction with two readers and no shared reader state.

    Each reader keeps only private monotonic memory — readers do not
    write.  Lamport's remark predicts failure, and
    :func:`two_reader_failure` constructs it.
    """

    def __init__(self):
        self.last: Dict[str, Tuple[int, Any]] = {}

    def write_impl(self, argument: Tuple[int, Any]) -> Generator:
        yield ("write", REG, argument)
        return None

    def make_read_impl(self, reader: str):
        def read_impl(_argument: Any) -> Generator:
            seen = yield ("read", REG)
            last = self.last.get(reader, (0, None))
            if seen[0] >= last[0]:
                self.last[reader] = seen
                return seen[1]
            return last[1]

        return read_impl


def two_reader_failure() -> List[Operation]:
    """A non-linearizable history of the two-reader construction.

    During one write of (1, "new") over (0, "old"), reader A is served the
    new value and reader B — whose entire read happens after A's — the old
    one.  Neither reader's private memory can see the other's, so the
    inversion stands.
    """
    calls = {"count": 0}

    def chooser(register, old, new):
        calls["count"] += 1
        return new if calls["count"] == 1 else old

    construction = TwoReaderMonotonic()
    space = RegisterSpace(
        {REG: (0, "old")}, semantics="regular", flux_chooser=chooser
    )
    ops = [
        ScheduledOp("writer", "write", (1, "new"), construction.write_impl),
        ScheduledOp("readerA", "read", None,
                    construction.make_read_impl("readerA")),
        ScheduledOp("readerB", "read", None,
                    construction.make_read_impl("readerB")),
    ]
    schedule = ["writer", "readerA", "readerA", "readerB", "readerB", "writer"]
    return run_concurrent(space, ops, schedule=schedule)
