"""A cooperative-concurrency harness for register constructions (§2.3).

Wait-free constructions (snapshots, multi-reader registers, ...) are
algorithms whose operations consist of many base-register accesses; their
correctness claims quantify over all interleavings of those accesses.
This harness runs operations as Python generators that *yield* base
accesses; a seeded (or scripted) scheduler interleaves them one access at
a time, and a :class:`~repro.registers.history.HistoryRecorder` logs the
invocation/response history for the linearizability checker.

Base registers come in two strengths:

* ``atomic`` — reads and writes are single indivisible accesses;
* ``regular`` — a read overlapping a write may return either the old or
  the new value (the scheduler's choice, adversarially seeded).  This is
  Lamport's regular register [71], the substrate his impossibility remark
  concerns: atomicity cannot be wrung out of regularity for free.

Each process runs its operations sequentially (a process is a thread of
operations); different processes' operations interleave.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import ModelError
from .history import HistoryRecorder, Operation

# What an operation generator yields:
#   ("read", register_name)             -> the value read
#   ("write", register_name, value)     -> None
Access = Tuple

# An operation implementation: argument -> generator of accesses.
OpImpl = Callable[[Any], Generator[Access, Any, Any]]


@dataclass
class ScheduledOp:
    """One operation instance: who runs it, what it is, how it works."""

    process: Hashable
    kind: str
    argument: Any
    implementation: OpImpl


@dataclass
class _PendingWrite:
    old: Any
    new: Any


class RegisterSpace:
    """The base registers, with atomic or regular read semantics."""

    def __init__(self, initial: Dict[str, Any], semantics: str = "atomic",
                 seed: int = 0,
                 flux_chooser: Optional[Callable[[str, Any, Any], Any]] = None):
        if semantics not in ("atomic", "regular"):
            raise ModelError(f"unknown register semantics {semantics!r}")
        self.values: Dict[str, Any] = dict(initial)
        self.semantics = semantics
        self.rng = random.Random(seed)
        # Adversarial override: decide which value an in-flux read returns.
        self.flux_chooser = flux_chooser
        # For regular semantics a write spans two scheduler slots; between
        # them the register is in flux and reads may see either value.
        self.in_flux: Dict[str, _PendingWrite] = {}

    def read(self, register: str) -> Any:
        if register not in self.values:
            raise ModelError(f"unknown register {register!r}")
        flux = self.in_flux.get(register)
        if flux is not None and self.semantics == "regular":
            if self.flux_chooser is not None:
                return self.flux_chooser(register, flux.old, flux.new)
            return flux.old if self.rng.randrange(2) == 0 else flux.new
        return self.values[register]

    def begin_write(self, register: str, value: Any) -> None:
        if register not in self.values:
            raise ModelError(f"unknown register {register!r}")
        if self.semantics == "atomic":
            self.values[register] = value
            return
        current = self.values[register]
        self.in_flux[register] = _PendingWrite(current, value)

    def end_write(self, register: str) -> None:
        if self.semantics == "atomic":
            return
        flux = self.in_flux.pop(register, None)
        if flux is not None:
            self.values[register] = flux.new


class _Thread:
    """One process's queue of operations."""

    def __init__(self, process: Hashable, ops: List[ScheduledOp]):
        self.process = process
        self.queue = ops
        self.current: Optional[Generator] = None
        self.current_op: Optional[ScheduledOp] = None
        self.resume_value: Any = None
        self.open_write: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.current is None and not self.queue


def run_concurrent(
    registers: RegisterSpace,
    ops: Sequence[ScheduledOp],
    seed: int = 0,
    schedule: Optional[Sequence[Hashable]] = None,
) -> List[Operation]:
    """Interleave the operations access-by-access; return the history.

    Operations of the same process run back-to-back in list order; each
    scheduler slot advances one process by one base access.  ``schedule``
    (a sequence of process names) scripts the interleaving; otherwise a
    seeded uniform scheduler drives it.
    """
    recorder = HistoryRecorder()
    rng = random.Random(seed)
    threads: Dict[Hashable, _Thread] = {}
    for op in ops:
        threads.setdefault(op.process, _Thread(op.process, [])).queue.append(op)

    script = iter(schedule) if schedule is not None else None

    def live_processes() -> List[Hashable]:
        return [p for p, t in threads.items() if not t.done]

    def pick() -> Hashable:
        live = live_processes()
        if script is not None:
            while True:
                choice = next(script, None)
                if choice is None:
                    return live[0]
                if choice in live:
                    return choice
        return live[rng.randrange(len(live))]

    while live_processes():
        process = pick()
        thread = threads[process]
        if thread.current is None:
            thread.current_op = thread.queue.pop(0)
            thread.current = thread.current_op.implementation(
                thread.current_op.argument
            )
            recorder.invoke(process, thread.current_op.kind,
                            thread.current_op.argument)
            thread.resume_value = None
        # Close the second half of a regular write before the next access.
        if thread.open_write is not None:
            registers.end_write(thread.open_write)
            thread.open_write = None
        try:
            access = thread.current.send(thread.resume_value)
        except StopIteration as stop:
            recorder.respond(process, stop.value)
            thread.current = None
            thread.current_op = None
            continue
        if access[0] == "read":
            thread.resume_value = registers.read(access[1])
        elif access[0] == "write":
            registers.begin_write(access[1], access[2])
            thread.open_write = access[1]
            thread.resume_value = None
        else:
            raise ModelError(f"unknown access {access!r}")
    return recorder.history
