"""Shared registers and wait-free synchronization (survey §2.3).

Linearizability checking, register constructions over regular/atomic
bases, wait-free atomic snapshots, and the Herlihy consensus hierarchy.
"""

from .concurrent import RegisterSpace, ScheduledOp, run_concurrent
from .herlihy import (
    BOTTOM,
    CasConsensus,
    ObjectConsensusProtocol,
    ObjectConsensusSystem,
    QueueConsensus2,
    RegisterConsensus,
    TasConsensus2,
    TasConsensus3,
    WaitFreeVerdict,
    hierarchy_table,
    wait_free_verdict,
)
from .history import (
    HistoryRecorder,
    Operation,
    QueueSpec,
    RegisterSpec,
    SequentialSpec,
    SnapshotSpec,
    check_register_history,
    is_linearizable,
)
from .regular import (
    SingleReaderMonotonic,
    TwoReaderMonotonic,
    check_seq_register_history,
    inversion_history,
    single_reader_histories,
    two_reader_failure,
)
from .exhaustive import (
    ProgramConsensus,
    RegisterSearchOutcome,
    count_programs,
    enumerate_programs,
    register_consensus_certificate,
    search_register_consensus,
)
from .renaming import (
    RenamingOutcome,
    RenamingProtocol,
    renaming_series,
    run_renaming,
)
from .snapshot import (
    SnapshotObject,
    check_snapshot_history,
    initial_registers,
    segment_name,
)

__all__ = [
    "Operation",
    "HistoryRecorder",
    "SequentialSpec",
    "RegisterSpec",
    "QueueSpec",
    "SnapshotSpec",
    "is_linearizable",
    "check_register_history",
    "RegisterSpace",
    "ScheduledOp",
    "run_concurrent",
    "SnapshotObject",
    "initial_registers",
    "segment_name",
    "check_snapshot_history",
    "inversion_history",
    "SingleReaderMonotonic",
    "TwoReaderMonotonic",
    "single_reader_histories",
    "check_seq_register_history",
    "two_reader_failure",
    "ObjectConsensusProtocol",
    "ObjectConsensusSystem",
    "WaitFreeVerdict",
    "wait_free_verdict",
    "RegisterConsensus",
    "TasConsensus2",
    "TasConsensus3",
    "QueueConsensus2",
    "CasConsensus",
    "hierarchy_table",
    "BOTTOM",
    "RenamingOutcome",
    "RenamingProtocol",
    "run_renaming",
    "renaming_series",
    "ProgramConsensus",
    "RegisterSearchOutcome",
    "enumerate_programs",
    "count_programs",
    "search_register_consensus",
    "register_consensus_certificate",
]
