"""The wait-free consensus hierarchy (§2.3, Herlihy [65], Loui–Abu-Amara [76]).

Which shared objects can implement wait-free consensus for how many
processes?  The survey's §2.3 highlights Herlihy's connection: read/write
registers cannot solve even 2-process wait-free consensus; test-and-set
and FIFO queues solve exactly 2; compare-and-swap solves any number.
Since wait-free implementation preserves consensus power, these
separations yield the non-implementability results.

This module instantiates the generic bivalence machinery on shared-object
consensus protocols:

* :class:`ObjectConsensusSystem` — a :class:`DecisionSystem` whose events
  are process steps on typed shared variables;
* :func:`wait_free_verdict` — exhaustive verification of agreement,
  validity and wait-freedom over *all* schedules (bounded state space);
* the protocol zoo: a doomed register protocol, the TAS and queue
  2-consensus protocols (verified correct), their natural 3-process
  extensions (defeated), and CAS consensus for any n (verified).

:func:`hierarchy_table` assembles the measured consensus-number table the
E11 bench reports.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import ModelError, SearchBudgetExceeded
from ..core.freeze import frozendict
from ..core.packed import IdToValue
from ..impossibility.bivalence import (
    DecisionSystem,
    TransitionCache,
)
from ..shared_memory.variables import Access, binary_tas, cas, read, tas, write

BOTTOM = "_|_"


class ObjectConsensusProtocol(ABC):
    """A wait-free consensus protocol over typed shared variables."""

    name = "object-consensus"

    @abstractmethod
    def initial_memory(self, n: int) -> Dict[str, Hashable]:
        """Initial contents of the shared variables."""

    @abstractmethod
    def initial_local(self, pid: int, n: int, input_value: Hashable) -> Hashable:
        """The process's initial local state."""

    @abstractmethod
    def pending_access(self, local: Hashable) -> Optional[Access]:
        """The next atomic access, or None once decided/halted."""

    @abstractmethod
    def after_access(self, local: Hashable, response: Hashable) -> Hashable:
        """Local state after the access's response."""

    @abstractmethod
    def decision(self, local: Hashable) -> Optional[Hashable]:
        """The decided value, or None."""


Configuration = Tuple[Tuple[Hashable, ...], frozendict]
Event = Tuple[str, int]


class ObjectConsensusSystem(DecisionSystem):
    """Shared-object consensus under adversarial scheduling."""

    def __init__(
        self,
        protocol: ObjectConsensusProtocol,
        n: int,
        input_vectors: Optional[Sequence[Sequence[Hashable]]] = None,
        values: Sequence[Hashable] = (0, 1),
    ):
        self.protocol = protocol
        self.n = n
        self._values = tuple(values)
        if input_vectors is None:
            import itertools

            input_vectors = list(itertools.product(self._values, repeat=n))
        self.input_vectors = [tuple(v) for v in input_vectors]
        # Per-local-state memos: protocols are deterministic, so
        # pending_access(local) and decision(local) are pure functions of
        # the (frozen, hashable) local state, and the decisions mapping is
        # a pure function of the locals tuple.
        self._pending: Dict[Hashable, Optional[Access]] = {}
        self._decisions_by_locals: Dict[
            Tuple[Hashable, ...], Dict[int, Hashable]
        ] = {}

    def _pending_of(self, local: Hashable) -> Optional[Access]:
        try:
            return self._pending[local]
        except KeyError:
            access = self.protocol.pending_access(local)
            self._pending[local] = access
            return access

    @property
    def processes(self) -> Sequence[int]:
        return list(range(self.n))

    @property
    def values(self) -> Sequence[Hashable]:
        return self._values

    def configuration_for(self, inputs: Sequence[Hashable]) -> Configuration:
        locals_ = tuple(
            self.protocol.initial_local(pid, self.n, inputs[pid])
            for pid in range(self.n)
        )
        return (locals_, frozendict(self.protocol.initial_memory(self.n)))

    def initial_configurations(self) -> Iterator[Configuration]:
        for inputs in self.input_vectors:
            yield self.configuration_for(inputs)

    def events(self, config: Configuration) -> Iterator[Event]:
        locals_, _memory = config
        pending_of = self._pending_of
        for pid in range(self.n):
            if pending_of(locals_[pid]) is not None:
                yield ("step", pid)

    def owner(self, event: Event) -> int:
        return event[1]

    def apply(self, config: Configuration, event: Event) -> Configuration:
        locals_, memory = config
        pid = event[1]
        access = self._pending_of(locals_[pid])
        if access is None:
            raise ModelError(f"process {pid} has no pending access")
        if access.var not in memory:
            raise ModelError(f"unknown variable {access.var!r}")
        new_value, response = access.perform(memory[access.var])
        new_local = self.protocol.after_access(locals_[pid], response)
        new_locals = locals_[:pid] + (new_local,) + locals_[pid + 1:]
        return (new_locals, memory.set(access.var, new_value))

    def sweep_transitions(
        self, config: Configuration
    ) -> List[Tuple[Event, Configuration]]:
        """Every ``(event, successor)`` pair out of ``config`` in one call
        (same event order as :meth:`events`); used by the packed
        transition cache to expand a whole CSR row at once."""
        locals_, memory = config
        pending_of = self._pending_of
        after_access = self.protocol.after_access
        out: List[Tuple[Event, Configuration]] = []
        for pid in range(self.n):
            access = pending_of(locals_[pid])
            if access is None:
                continue
            if access.var not in memory:
                raise ModelError(f"unknown variable {access.var!r}")
            new_value, response = access.perform(memory[access.var])
            new_local = after_access(locals_[pid], response)
            new_locals = locals_[:pid] + (new_local,) + locals_[pid + 1:]
            out.append(
                (("step", pid), (new_locals, memory.set(access.var, new_value)))
            )
        return out

    def decisions(self, config: Configuration) -> Mapping[int, Hashable]:
        locals_, _memory = config
        try:
            return self._decisions_by_locals[locals_]
        except KeyError:
            pass
        out: Dict[int, Hashable] = {}
        decision = self.protocol.decision
        for pid, local in enumerate(locals_):
            value = decision(local)
            if value is not None:
                out[pid] = value
        self._decisions_by_locals[locals_] = out
        return out


@dataclass
class WaitFreeVerdict:
    """Exhaustive verification outcome for one protocol at one n."""

    protocol_name: str
    n: int
    configurations: int
    agreement: bool
    validity: bool
    wait_free: bool
    failure_witness: Optional[Configuration] = None
    failure_kind: Optional[str] = None

    @property
    def solves_consensus(self) -> bool:
        return self.agreement and self.validity and self.wait_free


def wait_free_verdict(
    system: ObjectConsensusSystem,
    solo_bound: int = 64,
    max_configurations: int = 300_000,
    cache: Optional[TransitionCache] = None,
) -> WaitFreeVerdict:
    """Exhaustively verify agreement, validity and wait-freedom.

    Wait-freedom is checked in its strong per-configuration form: from
    every reachable configuration, every undecided process that still has
    steps must decide within ``solo_bound`` of its *own* steps, with every
    other process suspended.

    Expansion goes through a :class:`TransitionCache` (pass one in to
    share it with other analyses of the same system) and runs over dense
    state ids end to end.  Wait-freedom is decided through a per-process
    *solo-distance* memo: ``dist[pid][sid]`` is the number of pid-only
    steps from sid to the first pid-decided configuration (infinite on
    halt or cycle).  Each solo chain is walked once and back-filled, so
    overlapping solo runs from every BFS node cost amortized O(1) per
    configuration instead of O(solo_bound) — the same verdicts as the
    original per-node walks, in a fraction of the applies.
    """
    protocol = system.protocol
    if cache is None:
        cache = TransitionCache(system)
    interner = cache.interner
    graph = cache.graph
    ensure_expanded = cache.ensure_expanded
    config_of = cache.config_of
    n = system.n
    INF = 1 << 60

    # decisions(config), memoized per state id.
    decisions_memo: List[Optional[Mapping[int, Hashable]]] = []

    def decisions_of(sid: int) -> Mapping[int, Hashable]:
        if sid >= len(decisions_memo):
            decisions_memo.extend([None] * (sid + 1 - len(decisions_memo)))
        out = decisions_memo[sid]
        if out is None:
            out = system.decisions(config_of(sid))
            decisions_memo[sid] = out
        return out

    # dist[pid][sid] = solo steps to pid's first decision (INF = never:
    # the pid-only chain halts undecided or cycles).  -1 = unknown.
    dist: List[IdToValue] = [IdToValue() for _ in range(n)]
    step_events: List[Event] = [("step", pid) for pid in range(n)]

    def solo_distance(sid: int, pid: int) -> int:
        dv = dist[pid]
        known = dv.get(sid)
        if known >= 0:
            return known
        step_event = step_events[pid]
        labels = graph._labels
        succ = graph._succ
        gstart = graph._start
        gend = graph._end
        path: List[int] = []
        on_path: Dict[int, int] = {}
        cur = sid
        base = -1
        while True:
            known = dv.get(cur)
            if known >= 0:
                base = known
                break
            if cur in on_path:
                base = INF  # solo cycle: never decides
                break
            if pid in decisions_of(cur):
                base = 0
                break
            on_path[cur] = len(path)
            path.append(cur)
            ensure_expanded(cur)
            nxt = -1
            for i in range(gstart[cur], gend[cur]):
                if labels[i] == step_event:
                    nxt = succ[i]
                    break
            if nxt < 0:
                base = INF  # halted without deciding
                break
            cur = nxt
        if base >= INF:
            for node in path:
                dv.set(node, INF)
            return INF
        d = base
        for node in reversed(path):
            d += 1
            dv.set(node, d)
        return base if not path else dv.get(sid)

    seen = bytearray()
    seen_count = 0
    succ = graph._succ
    gstart = graph._start
    gend = graph._end
    queue: deque = deque()
    inputs_of: Dict[int, Tuple[Hashable, ...]] = {}
    for inputs in system.input_vectors:
        sid = interner.intern(system.configuration_for(inputs))
        queue.append(sid)
        inputs_of[sid] = inputs

    # BFS over the reachable space, carrying the originating input vector
    # for validity checking.
    while queue:
        sid = queue.popleft()
        if sid < len(seen) and seen[sid]:
            continue
        if sid >= len(seen):
            seen.extend(b"\x00" * (sid + 1 - len(seen)))
        seen[sid] = 1
        seen_count += 1
        if seen_count > max_configurations:
            raise SearchBudgetExceeded(
                f"wait-free verification exceeded {max_configurations} configs"
            )
        inputs = inputs_of[sid]
        decisions = decisions_of(sid)
        if len(set(decisions.values())) > 1:
            return WaitFreeVerdict(
                protocol.name, system.n, seen_count, False, True, True,
                config_of(sid), "agreement",
            )
        for value in decisions.values():
            if value not in inputs:
                return WaitFreeVerdict(
                    protocol.name, system.n, seen_count, True, False, True,
                    config_of(sid), "validity",
                )
        ensure_expanded(sid)
        # Wait-freedom from this configuration.
        for pid in range(n):
            if pid not in decisions and solo_distance(sid, pid) > solo_bound:
                return WaitFreeVerdict(
                    protocol.name, system.n, seen_count, True, True, False,
                    config_of(sid), "wait-freedom",
                )
        for i in range(gstart[sid], gend[sid]):
            child = succ[i]
            if child >= len(seen) or not seen[child]:
                inputs_of[child] = inputs
                queue.append(child)
    return WaitFreeVerdict(protocol.name, system.n, seen_count, True, True, True)


# ---------------------------------------------------------------------------
# The protocol zoo
# ---------------------------------------------------------------------------


class RegisterConsensus(ObjectConsensusProtocol):
    """Write your input, read the others, decide the minimum value seen.

    The natural read/write protocol — and exactly the kind every
    read/write protocol must resemble, all of which fail: the bivalence
    argument of [76, 65] says registers have consensus number 1.
    """

    name = "register-consensus"

    def initial_memory(self, n):
        return {f"r{i}": BOTTOM for i in range(n)}

    def initial_local(self, pid, n, input_value):
        # (pid, n, value, phase, scan index, seen values, decided)
        return (pid, n, input_value, "write", 0, (), None)

    def pending_access(self, local):
        pid, n, value, phase, index, seen, decided = local
        if decided is not None:
            return None
        if phase == "write":
            return write(f"r{pid}", value)
        return read(f"r{index}")

    def after_access(self, local, response):
        pid, n, value, phase, index, seen, decided = local
        if phase == "write":
            return (pid, n, value, "scan", 0, (), None)
        if response != BOTTOM:
            seen = seen + (response,)
        index += 1
        if index == n:
            return (pid, n, value, "done", index, seen, min(seen + (value,)))
        return (pid, n, value, "scan", index, seen, None)

    def decision(self, local):
        return local[6]


class TasConsensus2(ObjectConsensusProtocol):
    """Herlihy's 2-process consensus from one binary test-and-set.

    Write your input; TAS the winner flag; the winner decides its own
    value, the loser adopts the winner's registered value.
    """

    name = "tas-consensus-2"

    def initial_memory(self, n):
        memory = {f"r{i}": BOTTOM for i in range(n)}
        memory["winner"] = 0
        return memory

    def initial_local(self, pid, n, input_value):
        return (pid, n, input_value, "write", None)

    def pending_access(self, local):
        pid, n, value, phase, decided = local
        if decided is not None:
            return None
        if phase == "write":
            return write(f"r{pid}", value)
        if phase == "tas":
            return binary_tas("winner")
        return read(f"r{1 - pid}")

    def after_access(self, local, response):
        pid, n, value, phase, decided = local
        if phase == "write":
            return (pid, n, value, "tas", None)
        if phase == "tas":
            if response == 0:
                return (pid, n, value, "done", value)
            return (pid, n, value, "read-other", None)
        return (pid, n, value, "done", response)

    def decision(self, local):
        return local[4]


class TasConsensus3(ObjectConsensusProtocol):
    """The natural 3-process extension of the TAS protocol: losers decide
    the minimum registered value.  Doomed — the TAS response cannot name
    the winner, so losers guess, and the exhaustive checker finds the
    schedule where the guess disagrees with the winner: test-and-set has
    consensus number exactly 2.
    """

    name = "tas-consensus-3"

    def initial_memory(self, n):
        memory = {f"r{i}": BOTTOM for i in range(n)}
        memory["winner"] = 0
        return memory

    def initial_local(self, pid, n, input_value):
        return (pid, n, input_value, "write", 0, (), None)

    def pending_access(self, local):
        pid, n, value, phase, index, seen, decided = local
        if decided is not None:
            return None
        if phase == "write":
            return write(f"r{pid}", value)
        if phase == "tas":
            return binary_tas("winner")
        return read(f"r{index}")

    def after_access(self, local, response):
        pid, n, value, phase, index, seen, decided = local
        if phase == "write":
            return (pid, n, value, "tas", 0, (), None)
        if phase == "tas":
            if response == 0:
                return (pid, n, value, "done", 0, (), value)
            return (pid, n, value, "scan", 0, (), None)
        if response != BOTTOM:
            seen = seen + (response,)
        index += 1
        if index == n:
            return (pid, n, value, "done", index, seen, min(seen))
        return (pid, n, value, "scan", index, seen, None)

    def decision(self, local):
        return local[6]


class QueueConsensus2(ObjectConsensusProtocol):
    """Herlihy's 2-process consensus from a two-element FIFO queue.

    The queue starts as (WIN, LOSE); each process registers its input and
    dequeues once: WIN decides its own value, LOSE the other's.
    """

    name = "queue-consensus-2"

    def initial_memory(self, n):
        memory = {f"r{i}": BOTTOM for i in range(n)}
        memory["q"] = ("WIN", "LOSE")
        return memory

    @staticmethod
    def _dequeue(queue_value, _arg):
        if not queue_value:
            return queue_value, None
        return queue_value[1:], queue_value[0]

    def initial_local(self, pid, n, input_value):
        return (pid, n, input_value, "write", None)

    def pending_access(self, local):
        pid, n, value, phase, decided = local
        if decided is not None:
            return None
        if phase == "write":
            return write(f"r{pid}", value)
        if phase == "dequeue":
            return tas("q", self._dequeue, name="dequeue")
        return read(f"r{1 - pid}")

    def after_access(self, local, response):
        pid, n, value, phase, decided = local
        if phase == "write":
            return (pid, n, value, "dequeue", None)
        if phase == "dequeue":
            if response == "WIN":
                return (pid, n, value, "done", value)
            return (pid, n, value, "read-other", None)
        return (pid, n, value, "done", response)

    def decision(self, local):
        return local[4]


class CasConsensus(ObjectConsensusProtocol):
    """Consensus for any n from one compare-and-swap: Herlihy's universal
    object.  One access: CAS(bottom -> own input); the response names the
    winner's value for everyone."""

    name = "cas-consensus"

    def initial_memory(self, n):
        return {"d": BOTTOM}

    def initial_local(self, pid, n, input_value):
        return (pid, input_value, "cas", None)

    def pending_access(self, local):
        pid, value, phase, decided = local
        if decided is not None:
            return None
        return cas("d", BOTTOM, value)

    def after_access(self, local, response):
        pid, value, phase, decided = local
        if response == BOTTOM:
            return (pid, value, "done", value)  # our CAS installed the value
        return (pid, value, "done", response)

    def decision(self, local):
        return local[3]


def hierarchy_table() -> List[WaitFreeVerdict]:
    """The measured consensus-hierarchy table:

    ==================  ====  =================
    object / protocol    n    solves consensus?
    ==================  ====  =================
    registers            2    no  (agreement)
    test-and-set         2    yes
    test-and-set         3    no  (agreement)
    FIFO queue           2    yes
    compare-and-swap     2    yes
    compare-and-swap     3    yes
    ==================  ====  =================
    """
    cases = [
        (RegisterConsensus(), 2),
        (TasConsensus2(), 2),
        (TasConsensus3(), 3),
        (QueueConsensus2(), 2),
        (CasConsensus(), 2),
        (CasConsensus(), 3),
    ]
    return [
        wait_free_verdict(ObjectConsensusSystem(protocol, n))
        for protocol, n in cases
    ]
