"""Exhaustive search over small read/write consensus protocols (§2.3).

The hierarchy results in :mod:`repro.registers.herlihy` defeat *given*
protocols; this module quantifies over a whole bounded class, the same
methodology as the Cremers–Hibbard search (E1): enumerate every symmetric
2-process protocol in which each process owns one binary register and
runs a depth-bounded decision-tree program —

* non-branching step: write 0 / 1 / own input to the own register;
* branching step: read the other's register (branch on 0 / 1, with the
  initial value also readable);
* leaf: decide 0 / 1 / own input / last value read.

Every candidate is model-checked exhaustively for agreement, validity and
wait-freedom over all interleavings; the certificate records that **no
candidate solves 2-process wait-free consensus**, which is the
Loui–Abu-Amara / Herlihy impossibility restricted to the stated class —
with the class bound honest in the certificate, and deep enough to
contain the natural write-then-read-then-decide protocols.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.budget import Budget, BudgetExceeded
from ..impossibility.certificate import ImpossibilityCertificate
from ..parallel.pool import WorkerPool, resolve_workers, split_chunks
from ..shared_memory.variables import Access, read, write
from .herlihy import (
    ObjectConsensusProtocol,
    ObjectConsensusSystem,
    wait_free_verdict,
)

# A program tree, as nested tuples (registers start at 0):
#   ("decide", leaf)                 leaf in {"zero", "one", "own", "seen"}
#   ("write", value, subtree)        value in {"zero", "one", "own"}
#   ("read", subtree_if_0, subtree_if_1)
Program = Tuple

LEAVES = ("zero", "one", "own", "seen")
WRITE_VALUES = ("zero", "one", "own")


def enumerate_programs(depth: int) -> Iterator[Program]:
    """Every program of the class with at most ``depth`` accesses."""
    if depth == 0:
        for leaf in LEAVES:
            yield ("decide", leaf)
        return
    for program in enumerate_programs(0):
        yield program
    subprograms = list(enumerate_programs(depth - 1))
    for value in WRITE_VALUES:
        for sub in subprograms:
            yield ("write", value, sub)
    for if0 in subprograms:
        for if1 in subprograms:
            yield ("read", if0, if1)


def count_programs(depth: int) -> int:
    if depth == 0:
        return len(LEAVES)
    inner = count_programs(depth - 1)
    return len(LEAVES) + len(WRITE_VALUES) * inner + inner ** 2


class ProgramConsensus(ObjectConsensusProtocol):
    """A symmetric 2-process protocol defined by one program tree."""

    def __init__(self, program: Program):
        self.program = program
        self.name = f"program-consensus-{hash(program) & 0xFFFF:04x}"

    def initial_memory(self, n):
        return {f"r{i}": 0 for i in range(n)}

    def initial_local(self, pid, n, input_value):
        # (pid, own input, last read value, current subtree)
        return (pid, input_value, None, self.program)

    def _resolve(self, tag, input_value, seen):
        if tag == "zero":
            return 0
        if tag == "one":
            return 1
        if tag == "own":
            return input_value
        # "seen": the last value read; before any read, fall back to own.
        if seen is None:
            return input_value
        return seen

    def pending_access(self, local) -> Optional[Access]:
        pid, input_value, seen, tree = local
        if tree[0] == "decide":
            return None
        if tree[0] == "write":
            return write(f"r{pid}", self._resolve(tree[1], input_value, seen))
        return read(f"r{1 - pid}")

    def after_access(self, local, response):
        pid, input_value, seen, tree = local
        if tree[0] == "write":
            return (pid, input_value, seen, tree[2])
        return (pid, input_value, response, tree[1 + int(bool(response))])

    def decision(self, local):
        pid, input_value, seen, tree = local
        if tree[0] != "decide":
            return None
        return self._resolve(tree[1], input_value, seen)


def _flatten_program(
    program: Program,
) -> Tuple[List[int], List, List[int]]:
    """DFS-number the subtrees of ``program``.

    Returns ``(kinds, args, heights)`` indexed by node id: kind 0 is a
    decide leaf (arg = leaf tag), 1 a write (arg = ``(value_tag,
    sub_nid)``), 2 a read (arg = ``(if0_nid, if1_nid)``).  ``heights``
    is the max accesses remaining below each node, used to discharge
    wait-freedom structurally.
    """
    kinds: List[int] = []
    args: List = []
    heights: List[int] = []

    def visit(tree: Program) -> int:
        nid = len(kinds)
        kinds.append(0)
        args.append(None)
        heights.append(0)
        op = tree[0]
        if op == "write":
            sub = visit(tree[2])
            kinds[nid] = 1
            args[nid] = (tree[1], sub)
            heights[nid] = 1 + heights[sub]
        elif op == "read":
            if0 = visit(tree[1])
            if1 = visit(tree[2])
            kinds[nid] = 2
            args[nid] = (if0, if1)
            heights[nid] = 1 + max(heights[if0], heights[if1])
        else:
            args[nid] = tree[1]
        return nid

    visit(program)
    return kinds, args, heights


def _packed_verdict_kind(program: Program, solo_bound: int) -> str:
    """Classify one candidate over a dense integer state encoding.

    A configuration of :class:`ProgramConsensus` is two local states
    ``(pid, input, seen, subtree)`` plus two binary registers.  ``pid``
    is positional and ``input`` never changes, so a local state packs
    into a small id ``(node, input, seen)`` and a whole configuration
    into one int — the BFS of :func:`wait_free_verdict` then runs as
    integer arithmetic over a bytearray visited-set, with no frozen
    containers, hashing, or per-event object allocation.  Equivalence
    with the generic verdict on the full class is pinned by test.

    Wait-freedom is discharged structurally: a solo run from node ``v``
    decides after at most ``height(v)`` accesses (programs are trees, so
    solo runs neither halt undecided nor cycle), hence it can only fail
    when the tree is deeper than the solo bound — in which case we defer
    to the generic verdict rather than replicate its failure order.
    """
    kinds, node_args, heights = _flatten_program(program)
    if heights[0] > solo_bound:
        system = ObjectConsensusSystem(ProgramConsensus(program), 2)
        verdict = wait_free_verdict(system, solo_bound=solo_bound)
        if verdict.solves_consensus:
            return "solution"
        return verdict.failure_kind or "wait_freedom"

    # Local-state id: lid = (node * 2 + input) * 3 + (seen + 1), with
    # seen = -1 encoding "nothing read yet" (decides fall back to own
    # input, exactly ProgramConsensus._resolve).
    nnodes = len(kinds)
    L = nnodes * 6

    def resolve(tag: str, input_value: int, seen: int) -> int:
        if tag == "zero":
            return 0
        if tag == "one":
            return 1
        if tag == "own":
            return input_value
        return input_value if seen < 0 else seen

    # Per-lid tables: decided value (-1 if still running), written value
    # and successor for writes, successors per read response for reads.
    dec = [-1] * L
    wval = [0] * L
    wnext = [-1] * L
    rnext = [(-1, -1)] * L
    for nid in range(nnodes):
        kind = kinds[nid]
        arg = node_args[nid]
        for input_value in (0, 1):
            for seen in (-1, 0, 1):
                lid = (nid * 2 + input_value) * 3 + (seen + 1)
                if kind == 0:
                    dec[lid] = resolve(arg, input_value, seen)
                elif kind == 1:
                    wval[lid] = resolve(arg[0], input_value, seen)
                    wnext[lid] = (arg[1] * 2 + input_value) * 3 + (seen + 1)
                else:
                    rnext[lid] = (
                        (arg[0] * 2 + input_value) * 3 + 1,  # seen := 0
                        (arg[1] * 2 + input_value) * 3 + 2,  # seen := 1
                    )

    # cfg = ((lid0 * L) + lid1) * 4 + mem0 * 2 + mem1
    seen_configs = bytearray(L * L * 4)
    queue = deque()
    for in0 in (0, 1):
        for in1 in (0, 1):
            lid0 = in0 * 3  # node 0, seen = -1
            lid1 = in1 * 3
            queue.append((lid0 * L + lid1) * 4)
    while queue:
        cfg = queue.popleft()
        if seen_configs[cfg]:
            continue
        seen_configs[cfg] = 1
        mem = cfg & 3
        rest = cfg >> 2
        lid1 = rest % L
        lid0 = rest // L
        d0 = dec[lid0]
        d1 = dec[lid1]
        if d0 >= 0 or d1 >= 0:
            if d0 >= 0 and d1 >= 0 and d0 != d1:
                return "agreement"
            # inputs are positionally encoded and immutable, so the
            # originating input vector is recoverable from the config.
            in0 = (lid0 // 3) & 1
            in1 = (lid1 // 3) & 1
            if d0 >= 0 and d0 != in0 and d0 != in1:
                return "validity"
            if d1 >= 0 and d1 != in0 and d1 != in1:
                return "validity"
        # Wait-freedom cannot fail: height(program) <= solo_bound.
        if d0 < 0:
            nxt = wnext[lid0]
            if nxt >= 0:
                child = ((nxt * L + lid1) * 4) | (wval[lid0] << 1) | (mem & 1)
            else:
                nxt = rnext[lid0][mem & 1]  # read the other's register r1
                child = ((nxt * L + lid1) * 4) | mem
            if not seen_configs[child]:
                queue.append(child)
        if d1 < 0:
            nxt = wnext[lid1]
            if nxt >= 0:
                child = ((lid0 * L + nxt) * 4) | (mem & 2) | wval[lid1]
            else:
                nxt = rnext[lid1][mem >> 1]  # read the other's register r0
                child = ((lid0 * L + nxt) * 4) | mem
            if not seen_configs[child]:
                queue.append(child)
    return "solution"


@dataclass
class RegisterSearchOutcome:
    depth: int
    candidates: int
    solutions: List[Program]
    agreement_failures: int
    validity_failures: int
    wait_freedom_failures: int
    complete: bool = True
    resume_at: int = 0


def _verdict_of(program: Program, depth: int) -> str:
    """Model-check one candidate; classify the outcome."""
    return _packed_verdict_kind(program, solo_bound=depth + 2)


def _check_program_range(args: Tuple) -> Tuple:
    """Worker shard: model-check candidates ``lo <= index < hi``.

    Re-enumerates the (cheap, deterministic) program stream and returns
    an order-preserving census for its contiguous index range, so the
    parent can merge shards by simple concatenation/summing.
    """
    depth, lo, hi = args
    checked = 0
    solutions: List[Program] = []
    census = {"agreement": 0, "validity": 0, "wait_freedom": 0}
    for index, program in enumerate(enumerate_programs(depth)):
        if index < lo:
            continue
        if index >= hi:
            break
        checked += 1
        kind = _verdict_of(program, depth)
        if kind == "solution":
            solutions.append(program)
        elif kind in census:
            census[kind] += 1
        else:
            census["wait_freedom"] += 1
    return (checked, solutions, census)


def _search_register_consensus_sharded(
    depth: int,
    budget: Optional[Budget],
    resume: Optional[RegisterSearchOutcome],
    workers: int,
) -> RegisterSearchOutcome:
    """The ``workers > 1`` search: contiguous index ranges, ordered merge.

    The executed prefix is decided up front by charging the budget meter
    in candidate order (so ``resume_at`` matches serial for step-capped
    budgets); the candidate range is then split into contiguous shards
    whose censuses merge by addition and whose solutions concatenate in
    index order — identical to the serial census.
    """
    start = resume.resume_at if resume is not None else 0
    solutions: List[Program] = list(resume.solutions) if resume else []
    agreement = resume.agreement_failures if resume else 0
    validity = resume.validity_failures if resume else 0
    wait_freedom = resume.wait_freedom_failures if resume else 0
    total = resume.candidates if resume else 0
    meter = budget.meter("register-consensus-search") if budget else None

    stop = count_programs(depth)
    interrupted = False
    end = stop
    if meter is not None:
        for index in range(start, stop):
            try:
                meter.charge_steps()
            except BudgetExceeded:
                end = index
                interrupted = True
                break

    indices = list(range(start, end))
    if indices:
        ranges = [
            (depth, chunk[0], chunk[-1] + 1)
            for chunk in split_chunks(indices, workers * 4)
        ]
        with WorkerPool(workers) as pool:
            shards = pool.map(_check_program_range, ranges, chunksize=1)
        for checked, shard_solutions, census in shards:
            total += checked
            solutions.extend(shard_solutions)
            agreement += census["agreement"]
            validity += census["validity"]
            wait_freedom += census["wait_freedom"]

    return RegisterSearchOutcome(
        depth=depth,
        candidates=total,
        solutions=solutions,
        agreement_failures=agreement,
        validity_failures=validity,
        wait_freedom_failures=wait_freedom,
        complete=not interrupted,
        resume_at=end if interrupted else 0,
    )


def search_register_consensus(
    depth: int = 2,
    budget: Optional[Budget] = None,
    resume: Optional[RegisterSearchOutcome] = None,
    workers=1,
) -> RegisterSearchOutcome:
    """Model-check every program in the class; collect the failure census.

    A :class:`~repro.core.budget.Budget` (one step charged per candidate)
    turns the search into a resumable anytime computation: on overdraft
    it returns the census so far with ``complete=False`` and
    ``resume_at`` set to the first unchecked candidate; pass that outcome
    back as ``resume`` to continue where it stopped, accumulating counts.

    ``workers=N`` shards candidate checking across N worker processes
    (:mod:`repro.parallel`); the census, solutions list and resume
    cursor are identical to a serial search (wall-clock budgets
    excepted — they are timing dependent in any mode).
    """
    nworkers = resolve_workers(workers)
    if nworkers > 1:
        return _search_register_consensus_sharded(
            depth, budget, resume, nworkers
        )
    start = resume.resume_at if resume is not None else 0
    solutions: List[Program] = list(resume.solutions) if resume else []
    agreement = resume.agreement_failures if resume else 0
    validity = resume.validity_failures if resume else 0
    wait_freedom = resume.wait_freedom_failures if resume else 0
    total = resume.candidates if resume else 0
    meter = budget.meter("register-consensus-search") if budget else None
    for index, program in enumerate(enumerate_programs(depth)):
        if index < start:
            continue
        if meter is not None:
            try:
                meter.charge_steps()
            except BudgetExceeded:
                return RegisterSearchOutcome(
                    depth=depth,
                    candidates=total,
                    solutions=solutions,
                    agreement_failures=agreement,
                    validity_failures=validity,
                    wait_freedom_failures=wait_freedom,
                    complete=False,
                    resume_at=index,
                )
        total += 1
        kind = _verdict_of(program, depth)
        if kind == "solution":
            solutions.append(program)
        elif kind == "agreement":
            agreement += 1
        elif kind == "validity":
            validity += 1
        else:
            wait_freedom += 1
    return RegisterSearchOutcome(
        depth=depth,
        candidates=total,
        solutions=solutions,
        agreement_failures=agreement,
        validity_failures=validity,
        wait_freedom_failures=wait_freedom,
    )


def register_consensus_certificate(
    depth: int = 2, store=None, workers=1
) -> ImpossibilityCertificate:
    """Certify: no program in the class solves wait-free 2-consensus.

    ``store=`` (a :class:`~repro.service.store.CertificateStore`) skips
    the exhaustive sweep entirely when a verified census for this depth
    is already stored, and persists a fresh (complete) census otherwise.
    The certificate is built from the payload on both paths, so a store
    hit and a live search certify identically.
    """
    from ..service.service import (
        certificate_from_register_payload,
        register_outcome_payload,
        register_search_key,
    )

    key = payload = None
    if store is not None:
        key = register_search_key(depth)
        payload = store.get(key)
    if payload is None:
        outcome = search_register_consensus(depth, workers=workers)
        payload = register_outcome_payload(outcome)
        if store is not None:
            store.put(key, payload)
    return certificate_from_register_payload(payload)
