"""Exhaustive search over small read/write consensus protocols (§2.3).

The hierarchy results in :mod:`repro.registers.herlihy` defeat *given*
protocols; this module quantifies over a whole bounded class, the same
methodology as the Cremers–Hibbard search (E1): enumerate every symmetric
2-process protocol in which each process owns one binary register and
runs a depth-bounded decision-tree program —

* non-branching step: write 0 / 1 / own input to the own register;
* branching step: read the other's register (branch on 0 / 1, with the
  initial value also readable);
* leaf: decide 0 / 1 / own input / last value read.

Every candidate is model-checked exhaustively for agreement, validity and
wait-freedom over all interleavings; the certificate records that **no
candidate solves 2-process wait-free consensus**, which is the
Loui–Abu-Amara / Herlihy impossibility restricted to the stated class —
with the class bound honest in the certificate, and deep enough to
contain the natural write-then-read-then-decide protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.budget import Budget, BudgetExceeded
from ..core.errors import ModelError
from ..impossibility.certificate import ImpossibilityCertificate
from ..parallel.pool import WorkerPool, resolve_workers, split_chunks
from ..shared_memory.variables import Access, read, write
from .herlihy import (
    ObjectConsensusProtocol,
    ObjectConsensusSystem,
    wait_free_verdict,
)

# A program tree, as nested tuples (registers start at 0):
#   ("decide", leaf)                 leaf in {"zero", "one", "own", "seen"}
#   ("write", value, subtree)        value in {"zero", "one", "own"}
#   ("read", subtree_if_0, subtree_if_1)
Program = Tuple

LEAVES = ("zero", "one", "own", "seen")
WRITE_VALUES = ("zero", "one", "own")


def enumerate_programs(depth: int) -> Iterator[Program]:
    """Every program of the class with at most ``depth`` accesses."""
    if depth == 0:
        for leaf in LEAVES:
            yield ("decide", leaf)
        return
    for program in enumerate_programs(0):
        yield program
    subprograms = list(enumerate_programs(depth - 1))
    for value in WRITE_VALUES:
        for sub in subprograms:
            yield ("write", value, sub)
    for if0 in subprograms:
        for if1 in subprograms:
            yield ("read", if0, if1)


def count_programs(depth: int) -> int:
    if depth == 0:
        return len(LEAVES)
    inner = count_programs(depth - 1)
    return len(LEAVES) + len(WRITE_VALUES) * inner + inner ** 2


class ProgramConsensus(ObjectConsensusProtocol):
    """A symmetric 2-process protocol defined by one program tree."""

    def __init__(self, program: Program):
        self.program = program
        self.name = f"program-consensus-{hash(program) & 0xFFFF:04x}"

    def initial_memory(self, n):
        return {f"r{i}": 0 for i in range(n)}

    def initial_local(self, pid, n, input_value):
        # (pid, own input, last read value, current subtree)
        return (pid, input_value, None, self.program)

    def _resolve(self, tag, input_value, seen):
        if tag == "zero":
            return 0
        if tag == "one":
            return 1
        if tag == "own":
            return input_value
        # "seen": the last value read; before any read, fall back to own.
        if seen is None:
            return input_value
        return seen

    def pending_access(self, local) -> Optional[Access]:
        pid, input_value, seen, tree = local
        if tree[0] == "decide":
            return None
        if tree[0] == "write":
            return write(f"r{pid}", self._resolve(tree[1], input_value, seen))
        return read(f"r{1 - pid}")

    def after_access(self, local, response):
        pid, input_value, seen, tree = local
        if tree[0] == "write":
            return (pid, input_value, seen, tree[2])
        return (pid, input_value, response, tree[1 + int(bool(response))])

    def decision(self, local):
        pid, input_value, seen, tree = local
        if tree[0] != "decide":
            return None
        return self._resolve(tree[1], input_value, seen)


@dataclass
class RegisterSearchOutcome:
    depth: int
    candidates: int
    solutions: List[Program]
    agreement_failures: int
    validity_failures: int
    wait_freedom_failures: int
    complete: bool = True
    resume_at: int = 0


def _verdict_of(program: Program, depth: int) -> str:
    """Model-check one candidate; classify the outcome."""
    system = ObjectConsensusSystem(ProgramConsensus(program), 2)
    verdict = wait_free_verdict(system, solo_bound=depth + 2)
    if verdict.solves_consensus:
        return "solution"
    return verdict.failure_kind or "wait_freedom"


def _check_program_range(args: Tuple) -> Tuple:
    """Worker shard: model-check candidates ``lo <= index < hi``.

    Re-enumerates the (cheap, deterministic) program stream and returns
    an order-preserving census for its contiguous index range, so the
    parent can merge shards by simple concatenation/summing.
    """
    depth, lo, hi = args
    checked = 0
    solutions: List[Program] = []
    census = {"agreement": 0, "validity": 0, "wait_freedom": 0}
    for index, program in enumerate(enumerate_programs(depth)):
        if index < lo:
            continue
        if index >= hi:
            break
        checked += 1
        kind = _verdict_of(program, depth)
        if kind == "solution":
            solutions.append(program)
        elif kind in census:
            census[kind] += 1
        else:
            census["wait_freedom"] += 1
    return (checked, solutions, census)


def _search_register_consensus_sharded(
    depth: int,
    budget: Optional[Budget],
    resume: Optional[RegisterSearchOutcome],
    workers: int,
) -> RegisterSearchOutcome:
    """The ``workers > 1`` search: contiguous index ranges, ordered merge.

    The executed prefix is decided up front by charging the budget meter
    in candidate order (so ``resume_at`` matches serial for step-capped
    budgets); the candidate range is then split into contiguous shards
    whose censuses merge by addition and whose solutions concatenate in
    index order — identical to the serial census.
    """
    start = resume.resume_at if resume is not None else 0
    solutions: List[Program] = list(resume.solutions) if resume else []
    agreement = resume.agreement_failures if resume else 0
    validity = resume.validity_failures if resume else 0
    wait_freedom = resume.wait_freedom_failures if resume else 0
    total = resume.candidates if resume else 0
    meter = budget.meter("register-consensus-search") if budget else None

    stop = count_programs(depth)
    interrupted = False
    end = stop
    if meter is not None:
        for index in range(start, stop):
            try:
                meter.charge_steps()
            except BudgetExceeded:
                end = index
                interrupted = True
                break

    indices = list(range(start, end))
    if indices:
        ranges = [
            (depth, chunk[0], chunk[-1] + 1)
            for chunk in split_chunks(indices, workers * 4)
        ]
        with WorkerPool(workers) as pool:
            shards = pool.map(_check_program_range, ranges, chunksize=1)
        for checked, shard_solutions, census in shards:
            total += checked
            solutions.extend(shard_solutions)
            agreement += census["agreement"]
            validity += census["validity"]
            wait_freedom += census["wait_freedom"]

    return RegisterSearchOutcome(
        depth=depth,
        candidates=total,
        solutions=solutions,
        agreement_failures=agreement,
        validity_failures=validity,
        wait_freedom_failures=wait_freedom,
        complete=not interrupted,
        resume_at=end if interrupted else 0,
    )


def search_register_consensus(
    depth: int = 2,
    budget: Optional[Budget] = None,
    resume: Optional[RegisterSearchOutcome] = None,
    workers=1,
) -> RegisterSearchOutcome:
    """Model-check every program in the class; collect the failure census.

    A :class:`~repro.core.budget.Budget` (one step charged per candidate)
    turns the search into a resumable anytime computation: on overdraft
    it returns the census so far with ``complete=False`` and
    ``resume_at`` set to the first unchecked candidate; pass that outcome
    back as ``resume`` to continue where it stopped, accumulating counts.

    ``workers=N`` shards candidate checking across N worker processes
    (:mod:`repro.parallel`); the census, solutions list and resume
    cursor are identical to a serial search (wall-clock budgets
    excepted — they are timing dependent in any mode).
    """
    nworkers = resolve_workers(workers)
    if nworkers > 1:
        return _search_register_consensus_sharded(
            depth, budget, resume, nworkers
        )
    start = resume.resume_at if resume is not None else 0
    solutions: List[Program] = list(resume.solutions) if resume else []
    agreement = resume.agreement_failures if resume else 0
    validity = resume.validity_failures if resume else 0
    wait_freedom = resume.wait_freedom_failures if resume else 0
    total = resume.candidates if resume else 0
    meter = budget.meter("register-consensus-search") if budget else None
    for index, program in enumerate(enumerate_programs(depth)):
        if index < start:
            continue
        if meter is not None:
            try:
                meter.charge_steps()
            except BudgetExceeded:
                return RegisterSearchOutcome(
                    depth=depth,
                    candidates=total,
                    solutions=solutions,
                    agreement_failures=agreement,
                    validity_failures=validity,
                    wait_freedom_failures=wait_freedom,
                    complete=False,
                    resume_at=index,
                )
        total += 1
        system = ObjectConsensusSystem(ProgramConsensus(program), 2)
        verdict = wait_free_verdict(system, solo_bound=depth + 2)
        if verdict.solves_consensus:
            solutions.append(program)
        elif verdict.failure_kind == "agreement":
            agreement += 1
        elif verdict.failure_kind == "validity":
            validity += 1
        else:
            wait_freedom += 1
    return RegisterSearchOutcome(
        depth=depth,
        candidates=total,
        solutions=solutions,
        agreement_failures=agreement,
        validity_failures=validity,
        wait_freedom_failures=wait_freedom,
    )


def register_consensus_certificate(depth: int = 2) -> ImpossibilityCertificate:
    """Certify: no program in the class solves wait-free 2-consensus."""
    outcome = search_register_consensus(depth)
    if outcome.solutions:
        raise ModelError(
            f"found {len(outcome.solutions)} register consensus programs — "
            "the impossibility claim fails for this class"
        )
    return ImpossibilityCertificate(
        claim=(
            "no symmetric 2-process wait-free consensus protocol exists "
            "over one binary single-writer register per process with at "
            f"most {depth} accesses"
        ),
        scope=(
            f"decision-tree programs, depth <= {depth}, exhaustive over "
            f"{outcome.candidates} candidates"
        ),
        technique="bivalence / exhaustive model checking",
        candidates_checked=outcome.candidates,
        details={
            "agreement_failures": outcome.agreement_failures,
            "validity_failures": outcome.validity_failures,
            "wait_freedom_failures": outcome.wait_freedom_failures,
        },
    )
