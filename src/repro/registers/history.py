"""Concurrent operation histories and a linearizability checker (§2.3).

The register results in the survey are all statements about which
*histories* an implementation can exhibit: an atomic (linearizable) object
must make overlapping operations appear instantaneous.  This module gives
histories a concrete form — operations with invocation/response timestamps
— and decides linearizability by the classic Wing–Gong search: find a
total order of the operations that (a) extends the real-time partial
order and (b) is legal for the object's sequential specification.

Sequential specifications are tiny mutable classes with an ``apply``
method; register, queue and snapshot specs are provided.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)


@dataclass(frozen=True)
class Operation:
    """One completed operation in a history."""

    process: Hashable
    kind: str  # e.g. "read", "write", "enqueue", "snapshot"
    argument: Any
    result: Any
    invoked_at: float
    responded_at: float

    def __post_init__(self):
        if self.responded_at < self.invoked_at:
            raise ValueError("response cannot precede invocation")

    def precedes(self, other: "Operation") -> bool:
        """Real-time order: this op responded before the other was invoked."""
        return self.responded_at < other.invoked_at


class SequentialSpec(ABC):
    """A sequential object: apply operations one at a time."""

    @abstractmethod
    def apply(self, kind: str, argument: Any) -> Any:
        """Perform the operation, returning the result it *should* have."""

    @abstractmethod
    def copy(self) -> "SequentialSpec":
        """An independent copy with the same current state."""


class RegisterSpec(SequentialSpec):
    """A single read/write register."""

    def __init__(self, initial: Any = None):
        self.value = initial

    def apply(self, kind: str, argument: Any) -> Any:
        if kind == "read":
            return self.value
        if kind == "write":
            self.value = argument
            return None
        raise ValueError(f"unknown register operation {kind!r}")

    def copy(self) -> "RegisterSpec":
        return RegisterSpec(self.value)


class QueueSpec(SequentialSpec):
    """A FIFO queue (enqueue / dequeue)."""

    def __init__(self, items: Optional[Sequence[Any]] = None):
        self.items: List[Any] = list(items or [])

    def apply(self, kind: str, argument: Any) -> Any:
        if kind == "enqueue":
            self.items.append(argument)
            return None
        if kind == "dequeue":
            return self.items.pop(0) if self.items else None
        raise ValueError(f"unknown queue operation {kind!r}")

    def copy(self) -> "QueueSpec":
        return QueueSpec(self.items)


class SnapshotSpec(SequentialSpec):
    """An n-segment atomic snapshot object: update own segment, scan all."""

    def __init__(self, n: int, segments: Optional[Tuple[Any, ...]] = None):
        self.n = n
        self.segments: List[Any] = list(segments or [None] * n)

    def apply(self, kind: str, argument: Any) -> Any:
        if kind == "update":
            index, value = argument
            self.segments[index] = value
            return None
        if kind == "scan":
            return tuple(self.segments)
        raise ValueError(f"unknown snapshot operation {kind!r}")

    def copy(self) -> "SnapshotSpec":
        return SnapshotSpec(self.n, tuple(self.segments))


def is_linearizable(
    history: Sequence[Operation],
    spec_factory: Callable[[], SequentialSpec],
    max_nodes: int = 2_000_000,
) -> Optional[List[Operation]]:
    """Search for a linearization of ``history``.

    Returns a witness order (a list of the operations in a legal sequential
    order extending real-time precedence), or None when the history is not
    linearizable.  Backtracking search in the style of Wing & Gong: at each
    step, try every *minimal* pending operation (one not real-time-preceded
    by another pending operation) whose result matches the spec.
    """
    operations = list(history)
    n = len(operations)
    preceded_by: List[List[int]] = [[] for _ in range(n)]
    for i, a in enumerate(operations):
        for j, b in enumerate(operations):
            if i != j and a.precedes(b):
                preceded_by[j].append(i)

    chosen: List[int] = []
    chosen_set: set = set()
    nodes = 0

    def backtrack(spec: SequentialSpec) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("linearizability search budget exceeded")
        if len(chosen) == n:
            return True
        for i in range(n):
            if i in chosen_set:
                continue
            if any(j not in chosen_set for j in preceded_by[i]):
                continue  # a predecessor is still pending
            op = operations[i]
            trial = spec.copy()
            result = trial.apply(op.kind, op.argument)
            if not _results_match(op, result):
                continue
            chosen.append(i)
            chosen_set.add(i)
            if backtrack(trial):
                return True
            chosen.pop()
            chosen_set.remove(i)
        return False

    if backtrack(spec_factory()):
        return [operations[i] for i in chosen]
    return None


def _results_match(op: Operation, spec_result: Any) -> bool:
    """Writes/updates have no observable result; everything else must match."""
    if op.kind in ("write", "update", "enqueue"):
        return True
    return op.result == spec_result


def check_register_history(
    history: Sequence[Operation], initial: Any = None
) -> Optional[List[Operation]]:
    return is_linearizable(history, lambda: RegisterSpec(initial))


@dataclass
class HistoryRecorder:
    """Accumulates operations with a logical clock for harness use."""

    clock: float = 0.0
    operations: List[Operation] = field(default_factory=list)
    _pending: Dict[Hashable, Tuple[str, Any, float]] = field(default_factory=dict)

    def tick(self) -> float:
        self.clock += 1.0
        return self.clock

    def invoke(self, process: Hashable, kind: str, argument: Any) -> None:
        if process in self._pending:
            raise ValueError(f"process {process!r} already has a pending operation")
        self._pending[process] = (kind, argument, self.tick())

    def respond(self, process: Hashable, result: Any) -> Operation:
        kind, argument, invoked = self._pending.pop(process)
        op = Operation(process, kind, argument, result, invoked, self.tick())
        self.operations.append(op)
        return op

    @property
    def history(self) -> List[Operation]:
        return list(self.operations)
