"""Wait-free atomic snapshots from single-writer registers (§2.3).

The atomic snapshot object — update your own segment, scan all segments
atomically — is the survey's showcase of what *can* be built wait-free
from plain registers (in contrast to consensus, which cannot; see
:mod:`repro.registers.herlihy`).  This is the Afek–Attiya–Dolev–Gafni–
Merritt–Shavit construction:

* each segment register holds ``(seq, value, embedded_scan)``;
* ``scan`` repeatedly double-collects; equal collects are a clean snapshot;
* an updater performs a scan itself and embeds the result in its write, so
  a scanner that sees the same updater move *twice* can borrow that
  embedded scan — bounding every scan by O(n) collects: wait-freedom.

Histories produced under seeded adversarial interleavings are checked
against :class:`~repro.registers.history.SnapshotSpec` by the
linearizability checker.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from .concurrent import ScheduledOp
from .history import Operation, SnapshotSpec, is_linearizable

Segment = Tuple[int, Any, Optional[Tuple[Any, ...]]]  # (seq, value, embedded)


def segment_name(i: int) -> str:
    return f"seg{i}"


def initial_registers(n: int, initial_value: Any = None) -> Dict[str, Segment]:
    return {segment_name(i): (0, initial_value, None) for i in range(n)}


class SnapshotObject:
    """Operation implementations for the n-segment snapshot."""

    def __init__(self, n: int):
        self.n = n

    def _collect(self) -> Generator:
        values: List[Segment] = []
        for i in range(self.n):
            seg = yield ("read", segment_name(i))
            values.append(seg)
        return values

    def scan_impl(self, _argument: Any) -> Generator:
        moved = [0] * self.n
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if all(previous[i][0] == current[i][0] for i in range(self.n)):
                return tuple(seg[1] for seg in current)
            for i in range(self.n):
                if previous[i][0] != current[i][0]:
                    moved[i] += 1
                    if moved[i] >= 2 and current[i][2] is not None:
                        # The updater moved twice during our scan; its
                        # embedded scan is linearizable within our window.
                        return current[i][2]
            previous = current

    def update_impl(self, argument: Tuple[int, Any]) -> Generator:
        index, value = argument
        embedded = yield from self.scan_impl(None)
        seg = yield ("read", segment_name(index))
        seq = seg[0] + 1
        yield ("write", segment_name(index), (seq, value, embedded))
        return None

    # -- convenience builders ------------------------------------------------

    def scan_op(self, process) -> ScheduledOp:
        return ScheduledOp(process, "scan", None, self.scan_impl)

    def update_op(self, process, index: int, value: Any) -> ScheduledOp:
        return ScheduledOp(process, "update", (index, value), self.update_impl)


def check_snapshot_history(
    history: Sequence[Operation], n: int, initial_value: Any = None
) -> Optional[List[Operation]]:
    """Linearizability of a snapshot history."""
    return is_linearizable(history, lambda: SnapshotSpec(n, tuple([initial_value] * n)))
