"""Rabin's choice coordination problem (§2.1, [92]).

Processes share a set of variables but *do not share a naming scheme* for
them: each process sees the two option variables in its own order.  The
task is to place a marker in exactly one variable.  Rabin proved an
Omega(n^(1/3)) bound on the value range of deterministic solutions and gave
a celebrated randomized algorithm.

We mechanize the heart of the matter:

* :func:`symmetric_deterministic_failure` — the symmetry argument.  Run
  any deterministic symmetric protocol with two processes whose views of
  the variables are swapped; the round-for-round bisimulation keeps the
  global state mirror-symmetric, so the processes either both mark or
  neither does — never exactly one marker.  This is a *constructive
  adversary*: it takes the protocol and returns the symmetric execution.

* :class:`RabinChoiceCoordination` — the randomized algorithm, which
  escapes the argument precisely by flipping coins to break symmetry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Tuple

from ..core.errors import ModelError
from ..core.runtime import derive_seed
from ..impossibility.certificate import CounterexampleCertificate

# A deterministic, symmetric protocol step: given the process's local state
# and the value of the variable it is currently visiting, return
# (new local state, new variable value, next_variable_relative, done) where
# next_variable_relative is 0/1 in the process's own numbering and done
# means the process halts (it should have marked by then).
StepFn = Callable[
    [Hashable, Hashable], Tuple[Hashable, Hashable, int, bool]
]

MARK = "MARK"


@dataclass
class SymmetricRun:
    """Trace of the mirrored execution of a symmetric protocol."""

    steps: int
    variable_values: Tuple[Hashable, Hashable]
    markers: int  # number of variables containing MARK
    symmetric_throughout: bool


def symmetric_deterministic_failure(
    step: StepFn,
    initial_local: Hashable,
    initial_value: Hashable,
    max_steps: int = 1_000,
) -> CounterexampleCertificate:
    """Defeat any deterministic symmetric choice-coordination protocol.

    Two processes run the identical program; process A visits variables in
    the order (x, y), process B in the order (y, x).  We alternate their
    steps in lockstep.  The induction invariant — A's local state equals
    B's, and x's value equals y's value *after each full round* — is
    checked every round; it implies the protocol can never leave exactly
    one marker.
    """
    values: List[Hashable] = [initial_value, initial_value]
    locals_: List[Hashable] = [initial_local, initial_local]
    # Each process's current variable, in global numbering.  A starts at
    # global 0 (its local 0); B starts at global 1 (its local 0).
    position = [0, 1]
    done = [False, False]
    symmetric = True

    for step_count in range(max_steps):
        if all(done):
            break
        for who in (0, 1):
            if done[who]:
                continue
            var = position[who]
            new_local, new_value, next_rel, finished = step(
                locals_[who], values[var]
            )
            locals_[who] = new_local
            values[var] = new_value
            # Translate the process's relative next-variable choice into
            # global numbering: process A's relative k is global k, process
            # B's relative k is global 1-k.
            position[who] = next_rel if who == 0 else 1 - next_rel
            done[who] = finished
        if locals_[0] != locals_[1] or values[0] != values[1]:
            symmetric = False
            break

    markers = sum(1 for v in values if v == MARK)
    if symmetric and markers == 1:
        raise ModelError(
            "symmetry argument failed: a symmetric run left exactly one "
            "marker — the protocol must be nondeterministic"
        )
    claim = (
        "deterministic symmetric choice coordination fails: the mirrored "
        "execution leaves "
        + ("no marker" if markers == 0 else f"{markers} markers")
        + ", never exactly one"
    )
    return CounterexampleCertificate(
        claim=claim,
        technique="symmetry (mirrored lockstep execution)",
        evidence=SymmetricRun(
            steps=max_steps,
            variable_values=(values[0], values[1]),
            markers=markers,
            symmetric_throughout=symmetric,
        ),
        details={"markers": markers, "symmetric_throughout": symmetric},
    )


class RabinChoiceCoordination:
    """Rabin's randomized choice-coordination algorithm (two options).

    Each variable holds a tuple ``(count, flag)``; a process visiting a
    variable compares the variable's count to its own and either defers,
    marks, or increments the count with a random bit deciding ties.
    Termination with exactly one marker happens with probability 1; the
    value range grows only logarithmically in the number of coin flips
    needed (this is what beats the deterministic Omega(n^(1/3)) bound).
    """

    def __init__(self, n_processes: int, seed: int = 0):
        if n_processes < 2:
            raise ValueError("need at least two processes")
        self.n = n_processes
        self.seed = seed
        self.rng = random.Random(seed)
        # Global variable contents: (count, random_bit) or MARK.
        self.variables: List[Hashable] = [(0, 0), (0, 0)]
        # Per-process: current variable (global index) and own (count, bit).
        self.position = [i % 2 for i in range(n_processes)]
        self.own: List[Tuple[int, int]] = [(0, 0)] * n_processes
        self.done = [False] * n_processes
        self.steps_taken = 0

    def _step_process(self, i: int) -> None:
        var = self.position[i]
        content = self.variables[var]
        if content == MARK:
            self.done[i] = True
            return
        count, bit = content
        my_count, my_bit = self.own[i]
        if count > my_count or (count == my_count and bit == 1 and my_bit == 0):
            # The other side is ahead: this variable is the loser; adopt its
            # state and go mark the other one.
            self.own[i] = (count, bit)
            self.position[i] = 1 - var
            return
        if count < my_count or (count == my_count and bit == 0 and my_bit == 1):
            # We are ahead: mark here.
            self.variables[var] = MARK
            self.done[i] = True
            return
        # Tie: increment with a fresh random bit and cross over.
        new_state = (count + 1, self.rng.randrange(2))
        self.variables[var] = new_state
        self.own[i] = new_state
        self.position[i] = 1 - var

    def run(self, max_steps: int = 100_000,
            scheduler_seed: Optional[int] = None) -> bool:
        """Run to completion under a random fair schedule.

        Returns True when every process halted and exactly one variable is
        marked.
        """
        if scheduler_seed is None:
            # Derive the schedule from the coin seed instead of drawing from
            # the coin RNG: the coin-flip stream must be a pure function of
            # ``seed`` regardless of whether the caller pins the scheduler.
            scheduler_seed = derive_seed(self.seed, "choice-coordination-schedule")
        sched = random.Random(scheduler_seed)
        for _ in range(max_steps):
            live = [i for i in range(self.n) if not self.done[i]]
            if not live:
                break
            self._step_process(sched.choice(live))
            self.steps_taken += 1
        markers = sum(1 for v in self.variables if v == MARK)
        return all(self.done) and markers == 1

    @property
    def marker_count(self) -> int:
        return sum(1 for v in self.variables if v == MARK)
