"""Process interface for asynchronous shared-memory systems.

A shared-memory process is a deterministic local machine.  At any local
state it either

* wants to perform one atomic :class:`~repro.shared_memory.variables.Access`
  to a shared variable (``pending_access``), after which its local state is
  updated with the response (``after_access``);
* wants to emit an output action to its environment (``output_action`` /
  ``after_output``) — e.g. "I am now in my critical region"; or
* is idle (both return None) until an input action arrives.

Input actions (requests from the environment) update the local state via
``on_input``; a process ignores inputs it is not receptive to, which keeps
the composed system input-enabled in the I/O-automaton sense.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable, Optional

from ..core.automaton import Action, State
from .variables import Access


class SharedMemoryProcess(ABC):
    """A deterministic process in an asynchronous shared-memory system."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def initial_local(self) -> State:
        """The process's initial local state (hashable)."""

    @abstractmethod
    def pending_access(self, local: State) -> Optional[Access]:
        """The atomic access the process performs next, or None."""

    @abstractmethod
    def after_access(self, local: State, response: Hashable) -> State:
        """Local state after receiving the access's response."""

    def output_action(self, local: State) -> Optional[Action]:
        """An output the process is ready to emit (takes priority over accesses)."""
        return None

    def after_output(self, local: State) -> State:
        """Local state after emitting the pending output."""
        raise NotImplementedError(f"{self.name} emitted an output it cannot handle")

    def on_input(self, local: State, action: Action) -> Optional[State]:
        """React to an input action; None means "not receptive, ignore"."""
        return None

    def input_actions(self) -> FrozenSet[Action]:
        """The input actions addressed to this process."""
        return frozenset()

    def output_actions(self) -> FrozenSet[Action]:
        """The output actions this process may emit."""
        return frozenset()

    def is_idle(self, local: State) -> bool:
        """True when the process has no step to take."""
        return self.pending_access(local) is None and self.output_action(local) is None
