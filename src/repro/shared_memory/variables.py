"""Shared variables and the atomic operations processes apply to them.

The survey's shared-memory results are parameterized by the *operation
repertoire*: Cremers–Hibbard and Burns et al. assume powerful
test-and-set primitives (one atomic access may read, compute and write);
Burns–Lynch [27] and Loui–Abu-Amara [76] assume separate reads and writes,
which is what makes mutual exclusion need n variables and consensus
impossible.  Each repertoire is an :class:`Operation` here.

An operation maps ``(current value, argument)`` to
``(new value, response)`` atomically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Hashable, Tuple


class Operation(ABC):
    """An atomic operation on a single shared variable."""

    name: str = "op"

    @abstractmethod
    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        """Return ``(new_value, response)``."""

    def __repr__(self) -> str:
        return self.name


class Read(Operation):
    """Atomic read: leaves the value unchanged, responds with it."""

    name = "read"

    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        return value, value


class Write(Operation):
    """Atomic write: overwrites the value with the argument.

    The response is None — and that *obliteration* (a writer destroys
    whatever information was there, learning nothing) is precisely the
    property the Burns–Lynch n-variable lower bound exploits.
    """

    name = "write"

    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        return arg, None


class TestAndSet(Operation):
    """The general read-modify-write of Cremers–Hibbard.

    One atomic access reads the value, computes, and writes back: the
    transformation is ``func(value, arg) -> (new_value, response)``.
    """

    def __init__(self, func: Callable[[Hashable, Hashable], Tuple[Hashable, Hashable]],
                 name: str = "test-and-set"):
        self._func = func
        self.name = name

    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        return self._func(value, arg)


class BinaryTestAndSet(Operation):
    """Classic TAS on a 0/1 variable: set to 1, respond with the old value."""

    name = "binary-tas"

    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        return 1, value


class FetchAndAdd(Operation):
    """Atomically add the argument; respond with the previous value."""

    name = "fetch-and-add"

    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        return value + arg, value


class CompareAndSwap(Operation):
    """CAS(expected, new): install ``new`` iff the value equals ``expected``.

    ``arg`` is the pair ``(expected, new)``; the response is the value seen
    (so success is ``response == expected``).  Herlihy's universal object.
    """

    name = "compare-and-swap"

    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        expected, new = arg
        if value == expected:
            return new, value
        return value, value


class Swap(Operation):
    """Atomically exchange the value with the argument; respond with the old."""

    name = "swap"

    def apply(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        return arg, value


READ = Read()
WRITE = Write()
BINARY_TAS = BinaryTestAndSet()
FETCH_AND_ADD = FetchAndAdd()
CAS = CompareAndSwap()
SWAP = Swap()


@dataclass(frozen=True)
class Access:
    """One pending atomic access: which variable, which operation, what arg.

    Accesses are transient values produced by a process's control logic;
    they never appear inside states, so the operation object need not be
    hashable in any deep sense.
    """

    var: str
    op: Operation
    arg: Hashable = None

    def perform(self, value: Hashable) -> Tuple[Hashable, Hashable]:
        return self.op.apply(value, self.arg)


def read(var: str) -> Access:
    return Access(var, READ)


def write(var: str, value: Hashable) -> Access:
    return Access(var, WRITE, value)


def tas(var: str, func: Callable[[Hashable, Hashable], Tuple[Hashable, Hashable]],
        arg: Hashable = None, name: str = "test-and-set") -> Access:
    return Access(var, TestAndSet(func, name=name), arg)


def binary_tas(var: str) -> Access:
    return Access(var, BINARY_TAS)


def cas(var: str, expected: Hashable, new: Hashable) -> Access:
    return Access(var, CAS, (expected, new))


def fetch_and_add(var: str, delta) -> Access:
    return Access(var, FETCH_AND_ADD, delta)


def swap(var: str, value: Hashable) -> Access:
    return Access(var, SWAP, value)
