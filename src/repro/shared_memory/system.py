"""The asynchronous shared-memory system automaton.

Composes :class:`~repro.shared_memory.process.SharedMemoryProcess`
instances with a set of shared variables into one
:class:`~repro.core.automaton.IOAutomaton`:

* global state = (tuple of process local states, frozendict of variable
  values);
* one internal action ``('step', p)`` per process — performing p's pending
  atomic access;
* each process's output actions are outputs of the system; each process's
  input actions are inputs (ill-formed inputs are ignored, keeping the
  system input-enabled);
* one fairness task per process, so round-robin scheduling of tasks yields
  admissible executions ("every non-failed process keeps taking steps").

Also provides the admissible-liveness checker used by the mutual exclusion
results: a search for *fair starvation cycles*, i.e. infinite admissible
executions in which a victim process remains forever in its trying region.
The proper treatment of admissibility is, as the survey stresses, "one of
the most difficult aspects of this work" — the checker encodes it as three
side conditions on a cycle (every process is serviced, the environment
returns the resource, no vacuous stalls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

from ..core.automaton import Action, IOAutomaton, Signature, State
from ..core.errors import ModelError
from ..core.exploration import explore
from ..core.freeze import frozendict
from ..core.stategraph import state_graph
from .process import SharedMemoryProcess


class SharedMemorySystem(IOAutomaton):
    """Processes plus shared variables, as a single I/O automaton."""

    def __init__(
        self,
        processes: Sequence[SharedMemoryProcess],
        initial_memory: Dict[str, Hashable],
        name: str = "shared-memory-system",
    ):
        if len({p.name for p in processes}) != len(processes):
            raise ModelError("process names must be unique")
        self.processes: Tuple[SharedMemoryProcess, ...] = tuple(processes)
        self.initial_memory = frozendict(initial_memory)
        self.name = name
        self._index = {p.name: i for i, p in enumerate(self.processes)}

        inputs: Set[Action] = set()
        outputs: Set[Action] = set()
        internals: Set[Action] = {("step", p.name) for p in self.processes}
        for p in self.processes:
            inputs |= set(p.input_actions())
            outputs |= set(p.output_actions())
        self._signature = Signature(
            inputs=frozenset(inputs - outputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )

    # -- IOAutomaton interface -------------------------------------------

    @property
    def signature(self) -> Signature:
        return self._signature

    def initial_states(self) -> Iterator[State]:
        locals_ = tuple(p.initial_local() for p in self.processes)
        yield (locals_, self.initial_memory)

    def enabled_actions(self, state: State) -> Iterator[Action]:
        locals_, _memory = state
        for i, p in enumerate(self.processes):
            output = p.output_action(locals_[i])
            if output is not None:
                yield output
            elif p.pending_access(locals_[i]) is not None:
                yield ("step", p.name)

    def apply(self, state: State, action: Action) -> Iterator[State]:
        kind = self._signature.classify(action)
        locals_, memory = state
        if kind == "internal":
            _tag, pname = action
            i = self._index[pname]
            p = self.processes[i]
            if p.output_action(locals_[i]) is not None:
                return  # outputs take priority; the step is not enabled
            access = p.pending_access(locals_[i])
            if access is None:
                return
            if access.var not in memory:
                raise ModelError(f"{pname} accessed unknown variable {access.var!r}")
            new_value, response = access.perform(memory[access.var])
            new_local = p.after_access(locals_[i], response)
            new_locals = locals_[:i] + (new_local,) + locals_[i + 1:]
            yield (new_locals, memory.set(access.var, new_value))
            return
        if kind == "output":
            for i, p in enumerate(self.processes):
                if p.output_action(locals_[i]) == action:
                    new_local = p.after_output(locals_[i])
                    new_locals = locals_[:i] + (new_local,) + locals_[i + 1:]
                    yield (new_locals, memory)
                    return
            return  # not currently enabled
        # Input: deliver to every receptive process; ignore if none.
        new_locals = list(locals_)
        touched = False
        for i, p in enumerate(self.processes):
            if action in p.input_actions():
                reaction = p.on_input(locals_[i], action)
                if reaction is not None:
                    new_locals[i] = reaction
                    touched = True
        yield (tuple(new_locals), memory) if touched else state

    def tasks(self) -> Sequence[FrozenSet[Action]]:
        return [
            frozenset({("step", p.name)} | set(p.output_actions()))
            for p in self.processes
        ]

    # -- convenience -------------------------------------------------------

    def local_state(self, state: State, pname: str) -> State:
        locals_, _memory = state
        return locals_[self._index[pname]]

    def memory(self, state: State) -> frozendict:
        return state[1]

    def process_named(self, pname: str) -> SharedMemoryProcess:
        return self.processes[self._index[pname]]


@dataclass
class StarvationWitness:
    """An admissible infinite execution starving ``victim``.

    ``stem`` is a path of (state, action) pairs from an initial state to
    the cycle entry; ``cycle`` is the repeating segment.  Pumping the cycle
    forever yields an admissible execution in which the victim's predicate
    (e.g. "in trying region") holds at every state.
    """

    victim: str
    stem_states: Tuple[State, ...]
    cycle_states: Tuple[State, ...]
    cycle_actions: Tuple[Action, ...]

    def describe(self) -> str:
        return (
            f"starvation of {self.victim}: stem of {len(self.stem_states)} states "
            f"reaches a fair cycle of {len(self.cycle_actions)} actions"
        )


def _process_of_action(system: SharedMemorySystem, action: Action) -> Optional[str]:
    """Which process an action belongs to (None for pure inputs)."""
    if isinstance(action, tuple) and len(action) == 2 and action[0] == "step":
        return action[1]
    for p in system.processes:
        if action in p.output_actions():
            return p.name
    return None


def run_system(
    system: SharedMemorySystem,
    scheduler=None,
    max_steps: int = 1_000,
    start: Optional[State] = None,
    stop_when: Optional[Callable[[State], bool]] = None,
    meter=None,
):
    """Drive the composed system under a scheduler, in the unified schema.

    A thin adapter over :meth:`repro.core.scheduler.Scheduler.run_traced`
    with ``substrate="shared-memory"`` and each STEP event attributed to
    the process owning the action (via :func:`_process_of_action`), so
    shared-memory runs interleave into the same
    :class:`~repro.core.runtime.Trace` schema as every other substrate.
    Defaults to the fair :class:`~repro.core.scheduler.RoundRobinScheduler`.
    Returns a :class:`~repro.core.scheduler.TracedExecution`.
    """
    from ..core.scheduler import RoundRobinScheduler

    if scheduler is None:
        scheduler = RoundRobinScheduler(system)
    return scheduler.run_traced(
        system,
        max_steps,
        start=start,
        stop_when=stop_when,
        substrate="shared-memory",
        actor_of=lambda action: _process_of_action(system, action) or "environment",
        meter=meter,
    )


def find_starvation_cycle(
    system: SharedMemorySystem,
    victim: str,
    victim_stuck: Callable[[State], bool],
    environment_returns: Optional[Callable[[State], Optional[Action]]] = None,
    forbidden_actions: Optional[Callable[[Action], bool]] = None,
    max_states: int = 100_000,
) -> Optional[StarvationWitness]:
    """Search for an admissible infinite execution starving ``victim``.

    The search explores the reachable graph (environment inputs included),
    restricts to states where ``victim_stuck`` holds, and looks for a
    strongly connected subgraph whose infinite unrolling is *admissible*:

    1. **process fairness** — every process either takes an action inside
       the cycle or has no enabled action at some state of the cycle;
    2. **environment cooperation** — if ``environment_returns(state)``
       names an input owed by a well-behaved environment (e.g. the exit of
       a process sitting in its critical region), that input occurs in the
       cycle;
    3. optionally, no ``forbidden_actions`` occur in the cycle (used to ask
       for deadlock rather than mere lockout).

    Returns a witness or None.  This is the mechanized form of "construct
    an incompatible infinite admissible execution" from [26].
    """
    reach = explore(system, max_states=max_states, include_inputs=True)
    # The exploration above populated the shared state graph; rebuilding
    # the stuck-subgraph edges below is served entirely from its cache.
    shared = state_graph(system)
    inputs = system.signature.inputs

    graph = nx.MultiDiGraph()
    for state in reach.reachable:
        if not victim_stuck(state):
            continue
        graph.add_node(state)
        for action, succ in shared.transitions(state, include_inputs=True):
            if forbidden_actions is not None and forbidden_actions(action):
                continue
            if succ == state and action in inputs:
                continue  # ignored input; not a real step
            if victim_stuck(succ):
                graph.add_edge(state, succ, action=action)

    for component in nx.strongly_connected_components(graph):
        subgraph = graph.subgraph(component)
        edges = list(subgraph.edges(data="action"))
        if not edges:
            continue
        actions_in_cycle = {a for (_u, _v, a) in edges}
        # Condition 1: process fairness.
        fair = True
        for p in system.processes:
            acts_here = any(
                _process_of_action(system, a) == p.name for a in actions_in_cycle
            )
            if acts_here:
                continue
            sometimes_idle = any(
                p.is_idle(system.local_state(state, p.name)) for state in component
            )
            if not sometimes_idle:
                fair = False
                break
        if not fair:
            continue
        # Condition 2: environment cooperation.
        if environment_returns is not None:
            owed = {
                environment_returns(state)
                for state in component
                if environment_returns(state) is not None
            }
            if not owed <= actions_in_cycle:
                continue
        # Build a concrete cycle through the component covering one edge per
        # required action (any closed walk through all of them).
        witness_cycle = _closed_walk_covering(subgraph, actions_in_cycle)
        if witness_cycle is None:
            continue
        cycle_states, cycle_actions = witness_cycle
        stem = reach.path_to(cycle_states[0])
        return StarvationWitness(
            victim=victim,
            stem_states=stem.states,
            cycle_states=tuple(cycle_states),
            cycle_actions=tuple(cycle_actions),
        )
    return None


def _closed_walk_covering(
    graph: "nx.MultiDiGraph", required_actions: Set[Action]
) -> Optional[Tuple[List[State], List[Action]]]:
    """A closed walk in a strongly connected multigraph covering every
    required action at least once."""
    # Pick, for each required action, one edge carrying it; then stitch the
    # edges together with shortest paths (the graph is strongly connected).
    chosen: List[Tuple[State, State, Action]] = []
    remaining = set(required_actions)
    for u, v, a in graph.edges(data="action"):
        if a in remaining:
            chosen.append((u, v, a))
            remaining.discard(a)
        if not remaining:
            break
    if remaining or not chosen:
        return None
    walk_states: List[State] = [chosen[0][0]]
    walk_actions: List[Action] = []
    current = chosen[0][0]
    for u, v, a in chosen:
        if current != u:
            path = nx.shortest_path(graph, current, u)
            for i in range(len(path) - 1):
                edge_action = next(
                    iter(graph.get_edge_data(path[i], path[i + 1]).values())
                )["action"]
                walk_states.append(path[i + 1])
                walk_actions.append(edge_action)
            current = u
        walk_states.append(v)
        walk_actions.append(a)
        current = v
    if current != walk_states[0]:
        path = nx.shortest_path(graph, current, walk_states[0])
        for i in range(len(path) - 1):
            edge_action = next(
                iter(graph.get_edge_data(path[i], path[i + 1]).values())
            )["action"]
            walk_states.append(path[i + 1])
            walk_actions.append(edge_action)
    return walk_states, walk_actions
