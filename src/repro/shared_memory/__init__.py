"""Asynchronous shared-memory systems (survey §2.1 and §2.3 substrate).

Processes communicating through shared variables accessed by atomic
operations — the model in which the survey's earliest impossibility proofs
(Cremers–Hibbard, Burns et al., Burns–Lynch) live.
"""

from .choice_coordination import (
    MARK,
    RabinChoiceCoordination,
    symmetric_deterministic_failure,
)
from .kexclusion import (
    CountingSemaphoreProcess,
    KExclusionSystem,
    counting_semaphore_system,
)
from .lower_bounds import (
    CandidateVerdict,
    NaiveSpinLockProcess,
    ProtocolTable,
    SyntheticTasProcess,
    burns_lynch_attack,
    check_candidate,
    cremers_hibbard_certificate,
    enumerate_protocol_tables,
    naive_spin_lock_system,
    search_two_process_protocols,
)
from .process import SharedMemoryProcess
from .system import (
    SharedMemorySystem,
    StarvationWitness,
    find_starvation_cycle,
    run_system,
)
from .variables import (
    BINARY_TAS,
    CAS,
    FETCH_AND_ADD,
    READ,
    SWAP,
    WRITE,
    Access,
    BinaryTestAndSet,
    CompareAndSwap,
    FetchAndAdd,
    Operation,
    Read,
    Swap,
    TestAndSet,
    Write,
    binary_tas,
    cas,
    fetch_and_add,
    read,
    swap,
    tas,
    write,
)

__all__ = [
    "SharedMemoryProcess",
    "SharedMemorySystem",
    "StarvationWitness",
    "find_starvation_cycle",
    "run_system",
    "Access",
    "Operation",
    "Read",
    "Write",
    "TestAndSet",
    "BinaryTestAndSet",
    "FetchAndAdd",
    "CompareAndSwap",
    "Swap",
    "READ",
    "WRITE",
    "BINARY_TAS",
    "FETCH_AND_ADD",
    "CAS",
    "SWAP",
    "read",
    "write",
    "tas",
    "binary_tas",
    "cas",
    "fetch_and_add",
    "swap",
    "CountingSemaphoreProcess",
    "KExclusionSystem",
    "counting_semaphore_system",
    "ProtocolTable",
    "SyntheticTasProcess",
    "CandidateVerdict",
    "enumerate_protocol_tables",
    "search_two_process_protocols",
    "check_candidate",
    "cremers_hibbard_certificate",
    "burns_lynch_attack",
    "naive_spin_lock_system",
    "NaiveSpinLockProcess",
    "RabinChoiceCoordination",
    "symmetric_deterministic_failure",
    "MARK",
]
