"""k-exclusion: allocation of k interchangeable resources (§2.1, [57, 53]).

The generalization of mutual exclusion the survey discusses via Fischer,
Lynch, Burns and Borodin: up to ``k`` processes may simultaneously occupy
the critical region.  We provide a fetch-and-add counter algorithm — the
modern counting-semaphore idiom — whose k-exclusion safety property the
model checker verifies, along with the framework hooks for expressing the
problem (the region protocol is inherited from the mutex framework; only
the safety predicate changes).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..core.execution import Execution
from ..core.exploration import check_invariant
from ..core.freeze import frozendict
from .mutex.base import CRITICAL, MutexProcess, MutexSystem, REMAINDER
from .variables import Access, fetch_and_add


class CountingSemaphoreProcess(MutexProcess):
    """Acquire one of ``k`` units via fetch-and-add on a shared counter.

    Trying: FAA(+1); a response < k means a unit was free — enter.
    Otherwise FAA(-1) to back out, then retry.  Exit: FAA(-1).
    """

    VAR = "units"

    def __init__(self, name: str, k: int):
        super().__init__(name)
        self.k = k

    def initial_fields(self):
        return {"pc": "inc"}

    def trying_access(self, local: frozendict) -> Optional[Access]:
        if local["pc"] == "inc":
            return fetch_and_add(self.VAR, 1)
        return fetch_and_add(self.VAR, -1)

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        if local["pc"] == "inc":
            if response < self.k:
                return local.set("region", CRITICAL).set("pc", "inc")
            return local.set("pc", "dec")
        return local.set("pc", "inc")

    def start_exit(self, local: frozendict) -> frozendict:
        return local.set("pc", "release")

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return fetch_and_add(self.VAR, -1)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER).set("pc", "inc")


class CasSemaphoreProcess(MutexProcess):
    """Acquire one of ``k`` units with a read / compare-and-swap loop.

    Read the counter; if it is below ``k``, attempt CAS(count, count+1) and
    enter on success.  Unlike the blind fetch-and-add of
    :class:`CountingSemaphoreProcess`, a failed attempt changes nothing, so
    whenever a unit is free *some* process's CAS succeeds — the algorithm
    is deadlock-free (though still not lockout-free).
    """

    VAR = "units"

    def __init__(self, name: str, k: int):
        super().__init__(name)
        self.k = k

    def initial_fields(self):
        return {"pc": "read", "seen": 0}

    def trying_access(self, local: frozendict) -> Optional[Access]:
        from .variables import cas, read

        if local["pc"] == "read":
            return read(self.VAR)
        return cas(self.VAR, local["seen"], local["seen"] + 1)

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        if local["pc"] == "read":
            if response < self.k:
                return local.set("pc", "cas").set("seen", response)
            return local  # full; re-read
        # CAS: response is the value seen; success iff it matched.
        if response == local["seen"]:
            return local.set("region", CRITICAL).set("pc", "read").set("seen", 0)
        return local.set("pc", "read").set("seen", 0)

    def start_exit(self, local: frozendict) -> frozendict:
        return local.set("pc", "release")

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return fetch_and_add(self.VAR, -1)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER).set("pc", "read").set("seen", 0)


class KExclusionSystem(MutexSystem):
    """A mutex-framework system checked against the k-exclusion property."""

    def __init__(self, processes, initial_memory, k: int, name: str):
        super().__init__(processes, initial_memory, name=name)
        self.k = k

    def check_k_exclusion(self, max_states: int = 200_000) -> Optional[Execution]:
        """Search for a state with more than k processes in the critical
        region; returns a counterexample or None."""
        return check_invariant(
            self,
            invariant=lambda s: len(self.critical_processes(s)) <= self.k,
            max_states=max_states,
            include_inputs=True,
        )


def counting_semaphore_system(n: int, k: int) -> KExclusionSystem:
    """``n`` processes sharing ``k`` units through one FAA counter.

    Safe (k-exclusion holds) but **livelocked** under adversarial
    scheduling: two colliding increments can back out and retry forever.
    The starvation-cycle checker finds the livelock; see
    tests/test_kexclusion.py, which asserts its existence.
    """
    processes = [CountingSemaphoreProcess(f"p{i}", k) for i in range(n)]
    return KExclusionSystem(
        processes,
        initial_memory={CountingSemaphoreProcess.VAR: 0},
        k=k,
        name=f"counting-semaphore-{n}-of-{k}",
    )


def cas_semaphore_system(n: int, k: int) -> KExclusionSystem:
    """``n`` processes sharing ``k`` units through a read/CAS loop.

    Safe and deadlock-free (a failed CAS changes nothing, so a free unit is
    always claimable), but not lockout-free.
    """
    processes = [CasSemaphoreProcess(f"p{i}", k) for i in range(n)]
    return KExclusionSystem(
        processes,
        initial_memory={CasSemaphoreProcess.VAR: 0},
        k=k,
        name=f"cas-semaphore-{n}-of-{k}",
    )
