"""Mechanized shared-memory lower bounds (survey §2.1).

Two results are mechanized here.

**Cremers–Hibbard values bound (E1).**  "Two values of a single
test-and-set variable are insufficient for fair 2-process mutual
exclusion."  We enumerate *every* protocol in two bounded classes —
memoryless single-variable TAS protocols, and symmetric protocols with one
bit of trying-region memory — model-check each candidate for mutual
exclusion, deadlock-freedom and lockout-freedom, and certify that no
candidate achieves all three with a 2-valued variable, while semaphore-like
candidates do achieve the first two (the paper's "a 2-valued semaphore is
plenty if there are no fairness requirements").

**Burns–Lynch register bound, n = 2 case (E2).**  "Mutual exclusion for n
processes requires at least n read/write registers."  Rather than
enumerate protocols, we implement the proof itself as an *adversary*: a
procedure that takes an arbitrary 2-process algorithm using a single
read/write register and constructs a violating execution, by the covering
argument — (1) a process must write before entering its critical region
(or it is invisible), and (2) a write to the only register obliterates all
evidence that the other process ever ran.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import ModelError
from ..core.execution import Execution
from ..core.freeze import frozendict
from ..impossibility.certificate import (
    CounterexampleCertificate,
    ImpossibilityCertificate,
)
from .mutex.base import CRITICAL, MutexProcess, MutexSystem, REMAINDER
from .variables import Access, Read, Write, tas

# --------------------------------------------------------------------------
# E1: exhaustive search over single-TAS-variable protocol classes
# --------------------------------------------------------------------------

# A trying-table entry is either ("enter", w) — move to the critical region
# writing w — or ("stay", m, w) — remain trying, switch to mode m, write w.
TryEntry = Tuple
TryTable = Dict[Tuple[int, int], TryEntry]  # (mode, value) -> entry
ExitTable = Dict[int, int]  # value -> written value


@dataclass(frozen=True)
class ProtocolTable:
    """One synthesized single-variable TAS protocol for one process."""

    values: int
    modes: int
    try_table: Tuple[TryEntry, ...]  # indexed by mode * values + value
    exit_table: Tuple[int, ...]  # indexed by value

    def try_entry(self, mode: int, value: int) -> TryEntry:
        return self.try_table[mode * self.values + value]


class SyntheticTasProcess(MutexProcess):
    """A mutex participant driven by a :class:`ProtocolTable`.

    Every trying step and the single exit step are one atomic test-and-set
    access, exactly the Cremers–Hibbard model.
    """

    VAR = "v"

    def __init__(self, name: str, table: ProtocolTable):
        super().__init__(name)
        self.table = table

    def initial_fields(self):
        return {"mode": 0}

    def _try_step(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        entry = self.table.try_entry(arg, value)
        if entry[0] == "enter":
            return entry[1], ("enter",)
        return entry[2], ("stay", entry[1])

    def trying_access(self, local: frozendict) -> Optional[Access]:
        return tas(self.VAR, self._try_step, arg=local["mode"], name="synthetic-try")

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        if response[0] == "enter":
            return local.set("region", CRITICAL).set("mode", 0)
        return local.set("mode", response[1])

    def _exit_step(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        return self.table.exit_table[value], None

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return tas(self.VAR, self._exit_step, name="synthetic-exit")

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER).set("mode", 0)


def enumerate_protocol_tables(values: int, modes: int) -> Iterator[ProtocolTable]:
    """Every protocol table over ``values`` shared values and ``modes``
    trying modes.

    Entry options per (mode, value): ``values`` ways to enter plus
    ``modes * values`` ways to stay.
    """
    entry_options: List[TryEntry] = [("enter", w) for w in range(values)]
    entry_options += [
        ("stay", m, w) for m in range(modes) for w in range(values)
    ]
    slots = modes * values
    exit_options = list(itertools.product(range(values), repeat=values))
    for try_choice in itertools.product(entry_options, repeat=slots):
        for exit_choice in exit_options:
            yield ProtocolTable(values, modes, tuple(try_choice), tuple(exit_choice))


@dataclass
class CandidateVerdict:
    """Model-checking outcome for one candidate protocol pair."""

    tables: Tuple[ProtocolTable, ...]
    mutual_exclusion: bool
    deadlock_free: bool
    lockout_free: bool

    @property
    def fair_solution(self) -> bool:
        return self.mutual_exclusion and self.deadlock_free and self.lockout_free

    @property
    def unfair_solution(self) -> bool:
        return self.mutual_exclusion and self.deadlock_free and not self.lockout_free


def build_synthetic_system(tables: Iterable[ProtocolTable], initial_value: int = 0
                           ) -> MutexSystem:
    processes = [
        SyntheticTasProcess(f"p{i}", table) for i, table in enumerate(tables)
    ]
    return MutexSystem(
        processes,
        initial_memory={SyntheticTasProcess.VAR: initial_value},
        name="synthetic-tas",
    )


def check_candidate(tables: Tuple[ProtocolTable, ...],
                    max_states: int = 20_000) -> CandidateVerdict:
    """Model-check one candidate protocol pair for all three properties."""
    system = build_synthetic_system(tables)
    mutex_ok = system.check_mutual_exclusion(max_states=max_states) is None
    if not mutex_ok:
        return CandidateVerdict(tables, False, False, False)
    deadlock_ok = all(
        system.check_deadlock_freedom(p.name, max_states=max_states) is None
        for p in system.processes
    )
    if not deadlock_ok:
        return CandidateVerdict(tables, True, False, False)
    lockout_ok = all(
        system.check_lockout_freedom(p.name, max_states=max_states) is None
        for p in system.processes
    )
    return CandidateVerdict(tables, True, True, lockout_ok)


def search_two_process_protocols(
    values: int,
    modes: int = 1,
    symmetric: bool = False,
    max_candidates: Optional[int] = None,
) -> List[CandidateVerdict]:
    """Model-check every candidate 2-process protocol in the class.

    With ``symmetric=True`` both processes run the same table (the class is
    then linear rather than quadratic in the table count).  Returns the
    verdict list; see :func:`cremers_hibbard_certificate` for the certified
    conclusion.
    """
    tables = list(enumerate_protocol_tables(values, modes))
    verdicts: List[CandidateVerdict] = []
    if symmetric:
        candidates: Iterable[Tuple[ProtocolTable, ...]] = ((t, t) for t in tables)
        total = len(tables)
    else:
        candidates = itertools.product(tables, repeat=2)
        total = len(tables) ** 2
    if max_candidates is not None and total > max_candidates:
        raise ModelError(
            f"protocol class has {total} candidates, above the limit "
            f"{max_candidates}; narrow the class"
        )
    for pair in candidates:
        verdicts.append(check_candidate(pair))
    return verdicts


def cremers_hibbard_certificate(
    values: int = 2, modes: int = 1, symmetric: bool = False
) -> ImpossibilityCertificate:
    """Certify: no candidate with ``values`` shared values is a *fair*
    mutual exclusion protocol, though unfair (semaphore-like) ones exist.

    Raises if a fair candidate is found — which would refute the claim for
    this class (and would be a library bug for values=2, or a discovery for
    values=3).
    """
    verdicts = search_two_process_protocols(values, modes, symmetric)
    fair = [v for v in verdicts if v.fair_solution]
    unfair = [v for v in verdicts if v.unfair_solution]
    if fair:
        raise ModelError(
            f"found {len(fair)} fair protocols with {values} values — "
            "the impossibility claim fails for this class"
        )
    shape = "symmetric" if symmetric else "asymmetric"
    return ImpossibilityCertificate(
        claim=(
            f"no 2-process mutual exclusion protocol over a single "
            f"{values}-valued test-and-set variable is lockout-free"
        ),
        scope=(
            f"{shape} protocols, {modes} trying mode(s), one TAS access per "
            f"step, exhaustive over {len(verdicts)} candidates"
        ),
        technique="pigeonhole / exhaustive model checking",
        candidates_checked=len(verdicts),
        details={
            "mutual_exclusion_holders": sum(
                1 for v in verdicts if v.mutual_exclusion
            ),
            "unfair_solutions": len(unfair),
            "fair_solutions": 0,
        },
    )


# --------------------------------------------------------------------------
# E2: the Burns–Lynch covering adversary for a single read/write register
# --------------------------------------------------------------------------


@dataclass
class SoloRun:
    """A process's solo behaviour: inputs + steps until critical entry.

    ``actions`` replays against the full system; ``first_write_index``
    locates the process's first write step within them (None if it enters
    its critical region without writing).  ``enters`` is False when the
    solo run cycles without entering (a progress violation on its own).
    """

    victim: str
    actions: Tuple
    first_write_index: Optional[int]
    enters: bool


def _classify_access(access: Access) -> str:
    if isinstance(access.op, Read):
        return "read"
    if isinstance(access.op, Write):
        return "write"
    raise ModelError(
        "the Burns–Lynch adversary applies to read/write algorithms only; "
        f"found operation {access.op!r}"
    )


def _solo_run(system: MutexSystem, victim: str, budget: int = 10_000) -> SoloRun:
    """Simulate ``victim`` running alone from the initial state."""
    state = next(iter(system.initial_states()))
    proc = system.process_named(victim)
    actions: List = [("try", victim)]
    state = next(iter(system.apply(state, ("try", victim))))
    first_write: Optional[int] = None
    seen = {state}
    for _ in range(budget):
        local = system.local_state(state, victim)
        output = proc.output_action(local)
        if output is not None:
            actions.append(output)
            state = next(iter(system.apply(state, output)))
            if output == ("crit", victim):
                return SoloRun(victim, tuple(actions), first_write, True)
            continue
        access = proc.pending_access(local)
        if access is None:
            break
        if _classify_access(access) == "write" and first_write is None:
            first_write = len(actions)
        actions.append(("step", victim))
        state = next(iter(system.apply(state, ("step", victim))))
        if state in seen and first_write is None:
            # Cycling on reads alone: never enters, never writes.
            return SoloRun(victim, tuple(actions), None, False)
        seen.add(state)
    return SoloRun(victim, tuple(actions), first_write, False)


def burns_lynch_attack(system: MutexSystem) -> CounterexampleCertificate:
    """Defeat any 2-process mutex algorithm over one read/write register.

    Implements the covering argument of [27] constructively: returns a
    certificate whose evidence is a concrete execution of ``system`` that
    either puts both processes in their critical regions simultaneously or
    exhibits a solo progress failure.  Raises :class:`ModelError` if the
    system does not match the theorem's hypotheses (two processes, one
    shared variable, read/write accesses only).
    """
    if len(system.processes) != 2:
        raise ModelError("the attack is stated for exactly two processes")
    if len(system.initial_memory) != 1:
        raise ModelError(
            "the attack applies to algorithms using a single shared register; "
            f"this system has {len(system.initial_memory)}"
        )
    p0, p1 = (p.name for p in system.processes)
    run0 = _solo_run(system, p0)
    run1 = _solo_run(system, p1)

    for run in (run0, run1):
        if not run.enters and run.first_write_index is None:
            execution = Execution.run(system, run.actions)
            return CounterexampleCertificate(
                claim=(
                    f"{system.name}: {run.victim} running alone never enters "
                    "its critical region — progress violation"
                ),
                technique="covering argument (solo run)",
                evidence=execution,
                details={"solo_steps": len(run.actions)},
            )

    # Interleave: p0 up to (but excluding) its first write — all reads, so
    # memory still looks initial to p1; p1's full solo run to its critical
    # region; then p0's continuation, whose first step *obliterates* the
    # register, hiding p1 entirely.
    if run0.first_write_index is None:
        prefix0 = list(run0.actions)  # p0 entered without ever writing
        suffix0: List = []
    else:
        prefix0 = list(run0.actions[: run0.first_write_index])
        suffix0 = list(run0.actions[run0.first_write_index:])
    actions = prefix0 + list(run1.actions) + suffix0
    execution = Execution.run(system, actions)
    final = execution.last_state
    both_critical = len(system.critical_processes(final)) == 2
    if not both_critical:
        raise ModelError(
            f"covering attack failed to violate mutual exclusion on "
            f"{system.name}; the system may not satisfy the theorem's "
            "hypotheses (e.g. nondeterministic or non-register operations)"
        )
    return CounterexampleCertificate(
        claim=(
            f"{system.name}: both processes simultaneously critical — "
            "mutual exclusion is impossible with a single read/write register"
        ),
        technique="covering argument (obliterated write)",
        evidence=execution,
        replay=lambda: len(
            system.critical_processes(Execution.run(system, actions).last_state)
        ) == 2,
        details={
            "p0_reads_before_first_write": len(prefix0) - 1,
            "schedule_length": len(actions),
        },
    )


# --------------------------------------------------------------------------
# A deliberately plausible single-register algorithm for the adversary to eat
# --------------------------------------------------------------------------


class NaiveSpinLockProcess(MutexProcess):
    """Read the register until it is 0, then write 1 and enter.

    The natural first attempt at a lock with one read/write register; the
    Burns–Lynch adversary finds its race in four moves.
    """

    VAR = "lock"

    def initial_fields(self):
        return {"pc": "read"}

    def trying_access(self, local: frozendict) -> Optional[Access]:
        from .variables import read as read_access, write as write_access

        if local["pc"] == "read":
            return read_access(self.VAR)
        return write_access(self.VAR, 1)

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        if local["pc"] == "read":
            if response == 0:
                return local.set("pc", "write")
            return local
        return local.set("region", CRITICAL).set("pc", "read")

    def start_exit(self, local: frozendict) -> frozendict:
        return local.set("pc", "release")

    def exit_access(self, local: frozendict) -> Optional[Access]:
        from .variables import write as write_access

        return write_access(self.VAR, 0)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER).set("pc", "read")


def naive_spin_lock_system() -> MutexSystem:
    processes = [NaiveSpinLockProcess("p0"), NaiveSpinLockProcess("p1")]
    return MutexSystem(
        processes,
        initial_memory={NaiveSpinLockProcess.VAR: 0},
        name="naive-spin-lock",
    )
