"""Peterson's two-process mutual exclusion algorithm (read/write registers).

The classic demonstration that the Burns–Lynch bound (§2.1: n processes
need at least n read/write variables) is tight for n = 2 up to a constant:
Peterson uses three single-writer/multi-reader... in fact two flags plus a
turn variable.  Mutual exclusion, deadlock-freedom and lockout-freedom all
hold, and the model checker verifies each over the full reachable space.

Per-process program (process i, other = 1-i)::

    trying:  flag[i] := 1
             turn    := other
             repeat: read flag[other]; if 0 -> enter
                     read turn;        if i -> enter
    exit:    flag[i] := 0
"""

from __future__ import annotations

from typing import Hashable, Optional

from ...core.freeze import frozendict
from ..variables import Access, read, write
from .base import CRITICAL, MutexProcess, REMAINDER


class PetersonProcess(MutexProcess):
    """Participant i (0 or 1) of Peterson's algorithm."""

    def __init__(self, name: str, index: int):
        super().__init__(name)
        if index not in (0, 1):
            raise ValueError("Peterson's algorithm is a 2-process algorithm")
        self.index = index
        self.other = 1 - index

    def initial_fields(self):
        return {"pc": "idle"}

    def doorway_complete(self, local: frozendict) -> bool:
        # The doorway is flag := 1; turn := other.  After it, the other
        # process can enter at most once more before we do.
        return local["pc"] in ("read_flag", "read_turn")

    def start_trying(self, local: frozendict) -> frozendict:
        return local.set("pc", "set_flag")

    def trying_access(self, local: frozendict) -> Optional[Access]:
        pc = local["pc"]
        if pc == "set_flag":
            return write(f"flag{self.index}", 1)
        if pc == "set_turn":
            return write("turn", self.other)
        if pc == "read_flag":
            return read(f"flag{self.other}")
        if pc == "read_turn":
            return read("turn")
        raise AssertionError(f"unexpected pc {pc!r} in trying region")

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        pc = local["pc"]
        if pc == "set_flag":
            return local.set("pc", "set_turn")
        if pc == "set_turn":
            return local.set("pc", "read_flag")
        if pc == "read_flag":
            if response == 0:
                return local.set("region", CRITICAL).set("pc", "idle")
            return local.set("pc", "read_turn")
        if pc == "read_turn":
            if response == self.index:
                return local.set("region", CRITICAL).set("pc", "idle")
            return local.set("pc", "read_flag")
        raise AssertionError(f"unexpected pc {pc!r}")

    def start_exit(self, local: frozendict) -> frozendict:
        return local.set("pc", "clear_flag")

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return write(f"flag{self.index}", 0)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER).set("pc", "idle")


def peterson_system():
    """The two-process Peterson system (flags initially 0, turn 0)."""
    from .base import MutexSystem

    processes = [PetersonProcess("p0", 0), PetersonProcess("p1", 1)]
    return MutexSystem(
        processes,
        initial_memory={"flag0": 0, "flag1": 0, "turn": 0},
        name="peterson",
    )
