"""The 2-valued test-and-set semaphore.

The positive half of Cremers–Hibbard's observation (§2.1): *"A 2-valued
semaphore is plenty if there are no fairness requirements."*  This
algorithm guarantees mutual exclusion and deadlock-freedom with a single
binary variable, but admits lockout — the model checker exhibits the
admissible execution in which one process's test-and-set always loses.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ...core.freeze import frozendict
from ..variables import Access, binary_tas, write
from .base import CRITICAL, MutexProcess, REMAINDER


class TasSemaphoreProcess(MutexProcess):
    """Spin on ``binary-tas(lock)``; release by writing 0.

    The shared variable ``lock`` takes exactly two values: 0 (free) and
    1 (held).
    """

    VAR = "lock"

    def trying_access(self, local: frozendict) -> Optional[Access]:
        return binary_tas(self.VAR)

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        if response == 0:
            return local.set("region", CRITICAL)
        return local  # lost the race; keep spinning

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return write(self.VAR, 0)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER)


def tas_semaphore_system(n: int = 2):
    """A system of ``n`` processes sharing one binary test-and-set lock."""
    from .base import MutexSystem

    processes = [TasSemaphoreProcess(f"p{i}") for i in range(n)]
    return MutexSystem(processes, initial_memory={TasSemaphoreProcess.VAR: 0},
                       name=f"tas-semaphore-{n}")
