"""A 4-valued test-and-set lock with direct handoff: fair 2-process mutex.

This is the library's *counterexample algorithm* for the fairness side of
the Cremers–Hibbard story (§2.1): with a single shared variable taking
four values, two processes achieve mutual exclusion with bounded bypass
(in fact bypass at most once), which the 2-valued semaphore provably
cannot (see :mod:`repro.shared_memory.lower_bounds`).

Variable values:

* ``F`` — free;
* ``L`` — locked, no waiter registered;
* ``W0`` / ``Wi`` — locked, with process i registered as waiting.

Protocol for process i (each arm is one atomic test-and-set):

* trying, not registered:
  ``F -> L`` acquire; ``L -> Wi`` register and wait;
  ``W(1-i)`` cannot occur (the owner would have to be i itself).
* trying, registered:  seeing ``Wi`` means the owner is still inside;
  seeing ``L`` means the owner exited and handed the lock to me (only the
  owner's handoff rewrites ``Wi`` to ``L``); seeing ``W(1-i)`` means I was
  handed the lock *and* the other process has queued behind me.  In the
  latter two cases, enter without changing the value.
* exit: ``L -> F`` (nobody waiting) or ``W(1-i) -> L`` (hand the lock
  directly to the registered waiter — the step a 2-valued variable has no
  room to express).

Model checking (tests/test_mutex.py) confirms mutual exclusion,
deadlock-freedom and lockout-freedom over the full reachable space.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ...core.freeze import frozendict
from ..variables import Access, tas
from .base import CRITICAL, MutexProcess, REMAINDER

F, L, W0, W1 = 0, 1, 2, 3


class HandoffLockProcess(MutexProcess):
    """Participant i of the 4-valued handoff lock (i must be 0 or 1)."""

    VAR = "lock"

    def __init__(self, name: str, index: int):
        super().__init__(name)
        if index not in (0, 1):
            raise ValueError("the handoff lock is a 2-process algorithm")
        self.index = index

    def initial_fields(self):
        return {"registered": False}

    def doorway_complete(self, local: frozendict) -> bool:
        # The doorway is the registering TAS: once registered, at most one
        # more entry by the other process can precede ours.
        return local["region"] == "try" and local["registered"]

    # -- trying protocol ----------------------------------------------------

    def _try_step(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        registered = arg
        mine = W0 if self.index == 0 else W1
        theirs = W1 if self.index == 0 else W0
        if not registered:
            if value == F:
                return L, "acquired"
            if value == L:
                return mine, "registered"
            # value == theirs cannot be reached while I am unregistered and
            # trying (the owner would have to be me); value == mine likewise.
            return value, "wait"
        # Registered: L or theirs means the owner handed the lock to me.
        if value == L:
            return L, "granted"
        if value == theirs:
            return theirs, "granted"
        return value, "wait"

    def trying_access(self, local: frozendict) -> Optional[Access]:
        return tas(self.VAR, self._try_step, arg=local["registered"],
                   name=f"handoff-try-{self.index}")

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        if response in ("acquired", "granted"):
            return local.set("region", CRITICAL).set("registered", False)
        if response == "registered":
            return local.set("registered", True)
        return local

    # -- exit protocol --------------------------------------------------------

    def _exit_step(self, value: Hashable, arg: Hashable) -> Tuple[Hashable, Hashable]:
        theirs = W1 if self.index == 0 else W0
        if value == theirs:
            return L, "handed-off"
        return F, "released"

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return tas(self.VAR, self._exit_step, name=f"handoff-exit-{self.index}")

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER)


def handoff_lock_system():
    """The standard two-process handoff-lock system."""
    from .base import MutexSystem

    processes = [HandoffLockProcess("p0", 0), HandoffLockProcess("p1", 1)]
    return MutexSystem(processes, initial_memory={HandoffLockProcess.VAR: F},
                       name="handoff-lock")
