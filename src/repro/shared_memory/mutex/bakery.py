"""Lamport's bakery algorithm: n-process FIFO mutual exclusion.

The bakery algorithm achieves the strongest fairness in the mutual
exclusion family — first-come-first-served by doorway order — using only
single-writer read/write registers, at the cost of unbounded ticket
numbers.  Because tickets grow without bound, its state space is infinite:
the test suite verifies it by bounded exploration and long scheduled
simulations rather than full reachability (the survey's point about
counterexample algorithms cuts both ways — some correct algorithms are
simply not finite-state).

Shared variables per process i: ``choosing_i`` (0/1) and ``number_i``
(ticket, 0 = not competing).
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ...core.freeze import frozendict
from ..variables import Access, read, write
from .base import CRITICAL, MutexProcess, REMAINDER


class BakeryProcess(MutexProcess):
    """Participant i of the bakery algorithm among ``n`` processes."""

    def __init__(self, name: str, index: int, n: int):
        super().__init__(name)
        self.index = index
        self.n = n
        self.others: Tuple[int, ...] = tuple(j for j in range(n) if j != index)

    def initial_fields(self):
        return {"pc": "idle", "scan": 0, "max": 0, "my_number": 0}

    def doorway_complete(self, local):
        # The bakery's doorway is ticket-taking; after it, service is FIFO.
        return local["pc"] in ("wait_choosing", "wait_number")

    def start_trying(self, local: frozendict) -> frozendict:
        return local.set("pc", "set_choosing")

    def trying_access(self, local: frozendict) -> Optional[Access]:
        pc = local["pc"]
        if pc == "set_choosing":
            return write(f"choosing{self.index}", 1)
        if pc == "scan_numbers":
            return read(f"number{local['scan']}")
        if pc == "take_number":
            return write(f"number{self.index}", local["max"] + 1)
        if pc == "clear_choosing":
            return write(f"choosing{self.index}", 0)
        if pc == "wait_choosing":
            return read(f"choosing{self.others[local['scan']]}")
        if pc == "wait_number":
            return read(f"number{self.others[local['scan']]}")
        raise AssertionError(f"unexpected pc {pc!r} in trying region")

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        pc = local["pc"]
        if pc == "set_choosing":
            return local.set("pc", "scan_numbers").set("scan", 0).set("max", 0)
        if pc == "scan_numbers":
            new_max = max(local["max"], response)
            nxt = local["scan"] + 1
            if nxt == self.n:
                return local.set("pc", "take_number").set("max", new_max)
            return local.set("scan", nxt).set("max", new_max)
        if pc == "take_number":
            return local.set("pc", "clear_choosing").set(
                "my_number", local["max"] + 1
            )
        if pc == "clear_choosing":
            return local.set("pc", "wait_choosing").set("scan", 0)
        if pc == "wait_choosing":
            if response == 0:
                return local.set("pc", "wait_number")
            return local  # spin until j finishes choosing
        if pc == "wait_number":
            j = self.others[local["scan"]]
            mine = (local["my_number"], self.index)
            theirs = (response, j)
            if response == 0 or theirs > mine:
                nxt = local["scan"] + 1
                if nxt == len(self.others):
                    return local.set("region", CRITICAL).set("pc", "idle")
                return local.set("pc", "wait_choosing").set("scan", nxt)
            return local  # j is ahead of us; spin
        raise AssertionError(f"unexpected pc {pc!r}")

    def start_exit(self, local: frozendict) -> frozendict:
        return local.set("pc", "clear_number")

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return write(f"number{self.index}", 0)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER).set("pc", "idle").set("my_number", 0)


def bakery_system(n: int = 2):
    """An ``n``-process bakery system."""
    from .base import MutexSystem

    processes = [BakeryProcess(f"p{i}", i, n) for i in range(n)]
    memory = {}
    for i in range(n):
        memory[f"choosing{i}"] = 0
        memory[f"number{i}"] = 0
    return MutexSystem(processes, initial_memory=memory, name=f"bakery-{n}")
