"""The mutual exclusion problem: framework, environment and checkers.

Mutual exclusion is where the survey's story starts (§2.1): Cremers and
Hibbard's model of processes cycling through **remainder → trying →
critical → exit** regions, with the crucial modelling points the paper
dwells on —

* the *requests are not under the algorithm's control*: ``('try', p)`` and
  ``('exit', p)`` are input actions of the system;
* *progress is conditional on the environment cooperating*: the
  environment must eventually issue ``exit`` for a process it has seen
  enter its critical region, but is never obliged to issue ``try``;
* *admissibility*: a process engaged in the protocol keeps taking steps,
  a process in its remainder region takes none.

:class:`MutexProcess` packages the region protocol; algorithms subclass it
and implement only their trying/exit protocols.  :class:`MutexSystem`
wires processes and shared variables together and exposes the three
property checkers the literature's results are stated in terms of:
mutual exclusion (safety), deadlock-freedom (progress) and
lockout-freedom (fairness).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Sequence

from ...core.automaton import Action, State
from ...core.errors import InvariantViolation
from ...core.exploration import check_invariant, explore
from ...core.execution import Execution
from ...core.freeze import frozendict
from ..process import SharedMemoryProcess
from ..system import SharedMemorySystem, StarvationWitness, find_starvation_cycle
from ..variables import Access

REMAINDER = "rem"
TRYING = "try"
CRITICAL = "crit"
EXIT = "exit"

REGIONS = (REMAINDER, TRYING, CRITICAL, EXIT)


class MutexProcess(SharedMemoryProcess):
    """Base class for mutual-exclusion participants.

    The local state is a :class:`~repro.core.freeze.frozendict` carrying at
    least ``region`` (one of rem/try/crit/exit) and ``announce`` (a pending
    output: 'crit' after winning entry, 'rem' after finishing exit, or
    None).  Subclasses implement:

    * :meth:`start_trying` — initialise the trying protocol's bookkeeping;
    * :meth:`trying_access` / :meth:`after_trying` — the trying protocol;
      ``after_trying`` signals entry by returning a state with
      ``region=CRITICAL`` (the framework adds the announcement);
    * :meth:`start_exit`, :meth:`exit_access` / :meth:`after_exit` — the
      exit protocol; ``after_exit`` returns ``region=REMAINDER`` when done.
    """

    def initial_local(self) -> frozendict:
        return frozendict(region=REMAINDER, announce=None, **self.initial_fields())

    def initial_fields(self) -> Dict[str, Hashable]:
        """Algorithm-specific local fields (default none)."""
        return {}

    # -- hooks for subclasses ---------------------------------------------

    def start_trying(self, local: frozendict) -> frozendict:
        """Local state when the trying protocol begins."""
        return local

    def trying_access(self, local: frozendict) -> Optional[Access]:
        raise NotImplementedError

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        raise NotImplementedError

    def start_exit(self, local: frozendict) -> frozendict:
        """Local state when the exit protocol begins."""
        return local

    def doorway_complete(self, local: frozendict) -> bool:
        """Has the trying protocol passed its *doorway*?

        Bounded-waiting guarantees are stated from the end of the doorway
        (the wait-free prefix of the trying protocol — e.g. taking a
        ticket in the bakery, registering in the handoff lock): before
        that, an arbitrarily slow process can of course be lapped.  The
        default says the doorway is the try transition itself.
        """
        return local["region"] == TRYING

    def exit_access(self, local: frozendict) -> Optional[Access]:
        """The exit protocol's next access; None means exit is complete."""
        return None

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        raise NotImplementedError(f"{self.name}: after_exit not implemented")

    # -- SharedMemoryProcess plumbing --------------------------------------

    def pending_access(self, local: frozendict) -> Optional[Access]:
        if local["announce"] is not None:
            return None
        if local["region"] == TRYING:
            return self.trying_access(local)
        if local["region"] == EXIT:
            access = self.exit_access(local)
            if access is None:
                # Exit protocol with no memory accesses: finish immediately
                # via an internal no-op step is not possible here, so
                # subclasses with empty exit protocols override start_exit
                # to land directly in the remainder region.
                return None
            return access
        return None

    def after_access(self, local: frozendict, response: Hashable) -> frozendict:
        if local["region"] == TRYING:
            new_local = self.after_trying(local, response)
            if new_local["region"] == CRITICAL:
                new_local = new_local.set("announce", "crit")
            return new_local
        if local["region"] == EXIT:
            new_local = self.after_exit(local, response)
            if new_local["region"] == REMAINDER:
                new_local = new_local.set("announce", "rem")
            return new_local
        raise InvariantViolation(
            f"{self.name} performed an access in region {local['region']!r}"
        )

    def output_action(self, local: frozendict) -> Optional[Action]:
        if local["announce"] == "crit":
            return ("crit", self.name)
        if local["announce"] == "rem":
            return ("rem", self.name)
        return None

    def after_output(self, local: frozendict) -> frozendict:
        return local.set("announce", None)

    def on_input(self, local: frozendict, action: Action) -> Optional[frozendict]:
        if action == ("try", self.name):
            if local["region"] != REMAINDER or local["announce"] is not None:
                return None  # ill-formed request; ignore
            return self.start_trying(local.set("region", TRYING))
        if action == ("exit", self.name):
            if local["region"] != CRITICAL or local["announce"] is not None:
                return None
            new_local = self.start_exit(local.set("region", EXIT))
            if new_local["region"] == EXIT and self.exit_access(new_local) is None:
                # Empty exit protocol: return to the remainder immediately.
                new_local = new_local.set("region", REMAINDER).set("announce", "rem")
            return new_local
        return None

    def input_actions(self) -> FrozenSet[Action]:
        return frozenset({("try", self.name), ("exit", self.name)})

    def output_actions(self) -> FrozenSet[Action]:
        return frozenset({("crit", self.name), ("rem", self.name)})


def region_of(local: frozendict) -> str:
    return local["region"]


def _owner_of(system: "MutexSystem", action: Action) -> Optional[str]:
    """Which process an action belongs to (None for environment inputs)."""
    if isinstance(action, tuple) and len(action) == 2:
        tag, name = action
        if tag in ("step", "crit", "rem"):
            return name
    return None


class MutexSystem(SharedMemorySystem):
    """A shared-memory system of :class:`MutexProcess` participants."""

    def regions(self, state: State) -> Dict[str, str]:
        """Map each process name to its current region."""
        return {
            p.name: region_of(self.local_state(state, p.name))
            for p in self.processes
        }

    def critical_processes(self, state: State) -> Sequence[str]:
        return [name for name, r in self.regions(state).items() if r == CRITICAL]

    # -- property checkers --------------------------------------------------

    def check_mutual_exclusion(self, max_states: int = 200_000) -> Optional[Execution]:
        """Search for a reachable state with two processes in their critical
        regions.  Returns a counterexample execution or None (safe)."""
        return check_invariant(
            self,
            invariant=lambda s: len(self.critical_processes(s)) <= 1,
            max_states=max_states,
            include_inputs=True,
        )

    def _environment_owes(self, state: State) -> Optional[Action]:
        """The exit input a well-behaved environment owes in this state.

        A process that has *announced* its critical entry (announce cleared,
        region still critical) is waiting on the environment to return the
        resource; admissibility requires that exit eventually arrive.
        """
        for p in self.processes:
            local = self.local_state(state, p.name)
            if local["region"] == CRITICAL and local["announce"] is None:
                return ("exit", p.name)
        return None

    def check_lockout_freedom(
        self, victim: str, max_states: int = 100_000
    ) -> Optional[StarvationWitness]:
        """Search for an admissible execution locking ``victim`` out.

        Returns a starvation witness (fair cycle with the victim forever in
        its trying region) or None.
        """
        return find_starvation_cycle(
            self,
            victim=victim,
            victim_stuck=lambda s: region_of(self.local_state(s, victim)) == TRYING,
            environment_returns=self._environment_owes,
            max_states=max_states,
        )

    def check_deadlock_freedom(
        self, victim: str, max_states: int = 100_000
    ) -> Optional[StarvationWitness]:
        """Search for an admissible execution in which ``victim`` is stuck in
        its trying region *and nobody ever enters the critical region*.

        This is the progress property even unfair algorithms must satisfy.
        """
        return find_starvation_cycle(
            self,
            victim=victim,
            victim_stuck=lambda s: region_of(self.local_state(s, victim)) == TRYING,
            environment_returns=self._environment_owes,
            forbidden_actions=lambda a: isinstance(a, tuple) and a[0] == "crit",
            max_states=max_states,
        )

    def reachable_state_count(self, max_states: int = 200_000) -> int:
        return len(explore(self, max_states=max_states, include_inputs=True).reachable)

    def measure_bypass(
        self,
        victim: str,
        steps: int = 20_000,
        seeds: Sequence[int] = range(8),
    ) -> int:
        """The worst observed *bounded-waiting* count for ``victim``.

        Burns et al. state their value bounds in terms of bounded waiting:
        how many times other processes enter their critical regions while
        the victim sits in its trying region.  Bypass is a property of
        admissible executions (every enabled process keeps stepping), so
        the exact bound is not a plain longest-path question; this method
        measures the maximum over long runs under seeded fair schedulers
        with a greedy anti-victim bias (others' steps preferred), which
        empirically saturates the true bound for the bundled algorithms
        (0/1 for the fair ones) and grows with the step budget for the
        unfair ones.
        """
        import random

        worst = 0
        for seed in seeds:
            rng = random.Random(seed)
            state = next(iter(self.initial_states()))
            current_wait = 0
            starvation = {p.name: 0 for p in self.processes}
            for _ in range(steps):
                # Environment churn: request for idle, release critical.
                for p in self.processes:
                    local = self.local_state(state, p.name)
                    if local["region"] == REMAINDER and local["announce"] is None:
                        state = next(iter(self.apply(state, ("try", p.name))))
                    elif local["region"] == CRITICAL and local["announce"] is None:
                        state = next(iter(self.apply(state, ("exit", p.name))))
                enabled = sorted(self.enabled_actions(state), key=repr)
                if not enabled:
                    break
                # Fairness floor: a process starved for too long must step.
                overdue = [
                    a for a in enabled
                    if starvation.get(_owner_of(self, a), 0) >= 50
                ]
                pool = overdue or [
                    a for a in enabled if _owner_of(self, a) != victim
                ] or enabled
                action = pool[rng.randrange(len(pool))]
                owner = _owner_of(self, action)
                for name in starvation:
                    starvation[name] += 1
                if owner is not None:
                    starvation[owner] = 0
                state = next(iter(self.apply(state, action)))
                if isinstance(action, tuple) and action[0] == "crit":
                    victim_local = self.local_state(state, victim)
                    victim_proc = self.process_named(victim)
                    if action[1] == victim:
                        current_wait = 0
                    elif (
                        region_of(victim_local) == TRYING
                        and victim_proc.doorway_complete(victim_local)
                    ):
                        current_wait += 1
                        worst = max(worst, current_wait)
                    else:
                        current_wait = 0
            # The final in-progress wait also counts.
            worst = max(worst, current_wait)
        return worst
