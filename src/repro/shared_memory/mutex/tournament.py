"""Tournament mutual exclusion: n processes from 2-process building blocks.

The standard generalization of Peterson's algorithm (§2.1's upper-bound
side): processes are leaves of a binary tree; each internal node is a
2-process Peterson instance played between the winners of its subtrees.
A process works its way to the root, holds the critical section, then
releases its path in reverse.

Uses 3 registers per internal node = 3(n-1) registers for n processes —
comfortably above the Burns–Lynch lower bound of n, and lockout-free,
which the starvation-cycle checker verifies over the full state space for
n = 4 (a ~10^5-state exploration).
"""

from __future__ import annotations

import math
from typing import Hashable, Optional

from ...core.freeze import frozendict
from ..variables import Access, read, write
from .base import CRITICAL, MutexProcess, MutexSystem, REMAINDER


def _tree_levels(n: int) -> int:
    levels = math.ceil(math.log2(n))
    if 2 ** levels != n:
        raise ValueError("tournament mutex needs a power-of-two process count")
    return levels


class TournamentProcess(MutexProcess):
    """Participant ``index`` of the n-process tournament.

    At level k (leaves = level 0), the process plays the Peterson instance
    at node ``node = (index >> (k+1))`` of that level, with role
    ``side = (index >> k) & 1``.  Registers of instance (k, node):
    ``f{k}.{node}.0``, ``f{k}.{node}.1`` and ``t{k}.{node}``.
    """

    def __init__(self, name: str, index: int, n: int):
        super().__init__(name)
        self.index = index
        self.n = n
        self.levels = _tree_levels(n)

    def initial_fields(self):
        return {"level": 0, "pc": "idle"}

    def _node(self, level: int) -> int:
        return self.index >> (level + 1)

    def _side(self, level: int) -> int:
        return (self.index >> level) & 1

    def _flag(self, level: int, side: int) -> str:
        return f"f{level}.{self._node(level)}.{side}"

    def _turn(self, level: int) -> str:
        return f"t{level}.{self._node(level)}"

    # -- trying: climb the tree ---------------------------------------------

    def start_trying(self, local: frozendict) -> frozendict:
        return local.set("level", 0).set("pc", "set_flag")

    def trying_access(self, local: frozendict) -> Optional[Access]:
        level, pc = local["level"], local["pc"]
        side = self._side(level)
        if pc == "set_flag":
            return write(self._flag(level, side), 1)
        if pc == "set_turn":
            return write(self._turn(level), 1 - side)
        if pc == "read_flag":
            return read(self._flag(level, 1 - side))
        if pc == "read_turn":
            return read(self._turn(level))
        raise AssertionError(f"unexpected pc {pc!r}")

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        level, pc = local["level"], local["pc"]
        side = self._side(level)
        if pc == "set_flag":
            return local.set("pc", "set_turn")
        if pc == "set_turn":
            return local.set("pc", "read_flag")
        won = False
        if pc == "read_flag":
            if response == 0:
                won = True
            else:
                return local.set("pc", "read_turn")
        if pc == "read_turn" and not won:
            if response == side:
                won = True
            else:
                return local.set("pc", "read_flag")
        # Won this level: climb, or enter the critical region at the root.
        if level + 1 == self.levels:
            return local.set("region", CRITICAL).set("pc", "idle")
        return local.set("level", level + 1).set("pc", "set_flag")

    # -- exit: release the path top-down --------------------------------------

    def start_exit(self, local: frozendict) -> frozendict:
        return local.set("level", self.levels - 1).set("pc", "clear")

    def exit_access(self, local: frozendict) -> Optional[Access]:
        level = local["level"]
        return write(self._flag(level, self._side(level)), 0)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        level = local["level"]
        if level == 0:
            return local.set("region", REMAINDER).set("pc", "idle").set("level", 0)
        return local.set("level", level - 1)


def tournament_system(n: int = 4) -> MutexSystem:
    """An n-process tournament mutex system (n a power of two)."""
    levels = _tree_levels(n)
    memory = {}
    for level in range(levels):
        for node in range(n >> (level + 1)):
            memory[f"f{level}.{node}.0"] = 0
            memory[f"f{level}.{node}.1"] = 0
            memory[f"t{level}.{node}"] = 0
    processes = [TournamentProcess(f"p{i}", i, n) for i in range(n)]
    return MutexSystem(processes, initial_memory=memory,
                       name=f"tournament-{n}")
