"""Dijkstra's original n-process mutual exclusion algorithm [38].

The 1965 algorithm the survey's §2.1 story begins with: the first shared
memory mutual exclusion algorithm, guaranteeing mutual exclusion and
deadlock-freedom with read/write registers — but *not* lockout-freedom.
The starvation-cycle checker mechanically rediscovers the unfairness the
later literature fixed (an admissible execution in which one process's
requests are bypassed forever).

Shared variables: ``turn`` and one three-valued flag per process
(0 = passive, 1 = contending for turn, 2 = in the doorway).

Per-process program (process i)::

    start:  flag[i] := 1
    loop:   read turn; if turn == i -> doorway
            read flag[turn]; if 0 -> turn := i; goto loop  else goto loop
    doorway: flag[i] := 2
             for each j != i: read flag[j]; if 2 -> goto start
             enter critical region
    exit:   flag[i] := 0
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ...core.freeze import frozendict
from ..variables import Access, read, write
from .base import CRITICAL, MutexProcess, REMAINDER


class DijkstraProcess(MutexProcess):
    """Participant i of Dijkstra's algorithm among ``n`` processes."""

    def __init__(self, name: str, index: int, n: int):
        super().__init__(name)
        self.index = index
        self.n = n
        self.others: Tuple[int, ...] = tuple(j for j in range(n) if j != index)

    def initial_fields(self):
        return {"pc": "idle", "t": None, "check": 0}

    def start_trying(self, local: frozendict) -> frozendict:
        return local.set("pc", "set_flag1")

    def trying_access(self, local: frozendict) -> Optional[Access]:
        pc = local["pc"]
        if pc == "set_flag1":
            return write(f"flag{self.index}", 1)
        if pc == "read_turn":
            return read("turn")
        if pc == "read_flag_of_turn":
            return read(f"flag{local['t']}")
        if pc == "write_turn":
            return write("turn", self.index)
        if pc == "set_flag2":
            return write(f"flag{self.index}", 2)
        if pc == "check":
            j = self.others[local["check"]]
            return read(f"flag{j}")
        raise AssertionError(f"unexpected pc {pc!r} in trying region")

    def after_trying(self, local: frozendict, response: Hashable) -> frozendict:
        pc = local["pc"]
        if pc == "set_flag1":
            return local.set("pc", "read_turn")
        if pc == "read_turn":
            if response == self.index:
                return local.set("pc", "set_flag2")
            return local.set("pc", "read_flag_of_turn").set("t", response)
        if pc == "read_flag_of_turn":
            if response == 0:
                return local.set("pc", "write_turn").set("t", None)
            return local.set("pc", "read_turn").set("t", None)
        if pc == "write_turn":
            return local.set("pc", "read_turn")
        if pc == "set_flag2":
            return local.set("pc", "check").set("check", 0)
        if pc == "check":
            if response == 2:
                return local.set("pc", "set_flag1").set("check", 0)
            nxt = local["check"] + 1
            if nxt == len(self.others):
                return (
                    local.set("region", CRITICAL).set("pc", "idle").set("check", 0)
                )
            return local.set("check", nxt)
        raise AssertionError(f"unexpected pc {pc!r}")

    def start_exit(self, local: frozendict) -> frozendict:
        return local.set("pc", "clear_flag")

    def exit_access(self, local: frozendict) -> Optional[Access]:
        return write(f"flag{self.index}", 0)

    def after_exit(self, local: frozendict, response: Hashable) -> frozendict:
        return local.set("region", REMAINDER).set("pc", "idle")


def dijkstra_system(n: int = 2):
    """An ``n``-process Dijkstra system (flags 0, turn 0)."""
    from .base import MutexSystem

    processes = [DijkstraProcess(f"p{i}", i, n) for i in range(n)]
    memory = {f"flag{i}": 0 for i in range(n)}
    memory["turn"] = 0
    return MutexSystem(processes, initial_memory=memory, name=f"dijkstra-{n}")
