"""Mutual exclusion: framework, algorithms and checkers (survey §2.1)."""

from .bakery import BakeryProcess, bakery_system
from .base import (
    CRITICAL,
    EXIT,
    MutexProcess,
    MutexSystem,
    REGIONS,
    REMAINDER,
    TRYING,
    region_of,
)
from .dijkstra import DijkstraProcess, dijkstra_system
from .handoff_lock import HandoffLockProcess, handoff_lock_system
from .peterson import PetersonProcess, peterson_system
from .tas_semaphore import TasSemaphoreProcess, tas_semaphore_system
from .tournament import TournamentProcess, tournament_system

__all__ = [
    "MutexProcess",
    "MutexSystem",
    "REMAINDER",
    "TRYING",
    "CRITICAL",
    "EXIT",
    "REGIONS",
    "region_of",
    "TasSemaphoreProcess",
    "tas_semaphore_system",
    "HandoffLockProcess",
    "handoff_lock_system",
    "PetersonProcess",
    "peterson_system",
    "DijkstraProcess",
    "dijkstra_system",
    "BakeryProcess",
    "bakery_system",
    "TournamentProcess",
    "tournament_system",
]
