"""The sessions problem: a provable time gap between sync and async (§2.2.6).

Arjomandi–Fischer–Lynch [8]: performing s *sessions* — periods in which
every process produces at least one output ("flash") — takes time about
``s`` in a synchronous network but time about ``s * diam`` in an
asynchronous one, where message delay is the time unit.  This was the
survey's flagship "lower bounds on time can be proved even for
asynchronous networks".

We build both sides of the gap on a bidirectional ring:

* :func:`run_sync_sessions` — the synchronous system flashes everywhere
  every round: s rounds, time s.
* :func:`run_async_sessions` — an asynchronous barrier algorithm
  (coordinator circulates a go-token, collects completions, separates
  sessions); a discrete-event simulation with unit message delay measures
  the real completion time, which grows like s * diam.
* :func:`stretching_lower_bound` — the paper's bound (s-1) * diam for
  comparison: any faster algorithm could be "stretched" so that some
  interval contains no causal path across the ring, merging two sessions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass
class SessionsOutcome:
    """Measured behaviour of a sessions algorithm."""

    n: int
    sessions: int
    total_time: float
    messages: int
    flashes_per_session: List[Dict[int, int]]

    def sessions_completed(self) -> int:
        return sum(
            1
            for flashes in self.flashes_per_session
            if all(count >= 1 for count in flashes.values())
        )


def ring_diameter(n: int) -> int:
    return n // 2


def run_sync_sessions(n: int, sessions: int) -> SessionsOutcome:
    """The synchronous system: every process flashes every round."""
    flashes = [{pid: 1 for pid in range(n)} for _ in range(sessions)]
    return SessionsOutcome(
        n=n,
        sessions=sessions,
        total_time=float(sessions),
        messages=0,
        flashes_per_session=flashes,
    )


def run_async_sessions(n: int, sessions: int) -> SessionsOutcome:
    """A correct asynchronous sessions algorithm on a bidirectional ring.

    Node 0 coordinates: for each session it floods a ``go`` token both ways
    around the ring; every node flashes on receipt and sends a ``done``
    back along the path; when the coordinator has collected all dones, the
    next session begins.  Messages take exactly one time unit per hop
    (the worst case the adversary can impose, and the case the lower bound
    is stated for).
    """
    # Discrete-event simulation: heap of (time, seq, dest, msg).
    heap: List[Tuple[float, int, int, Tuple]] = []
    seq = 0
    messages = 0
    flashes: List[Dict[int, int]] = [
        {pid: 0 for pid in range(n)} for _ in range(sessions)
    ]

    def send(time: float, dest: int, msg: Tuple) -> None:
        nonlocal seq, messages
        seq += 1
        messages += 1
        heapq.heappush(heap, (time + 1.0, seq, dest % n, msg))

    def start_session(k: int, time: float) -> None:
        flashes[k][0] += 1  # the coordinator flashes immediately
        if n == 1:
            finish_or_next(k, time)
            return
        # Flood both directions; each token carries its direction and the
        # remaining hop budget so the two waves cover the whole ring.
        right_hops = ring_diameter(n)
        left_hops = n - 1 - right_hops
        if right_hops > 0:
            send(time, 1, ("go", k, +1, right_hops))
        if left_hops > 0:
            send(time, n - 1, ("go", k, -1, left_hops))

    done_counts = {k: 0 for k in range(sessions)}
    expected_dones = 2 if n > 2 else (1 if n == 2 else 0)
    finished_at: Dict[int, float] = {}

    def finish_or_next(k: int, time: float) -> None:
        finished_at[k] = time
        if k + 1 < sessions:
            start_session(k + 1, time)

    start_session(0, 0.0)
    current_time = 0.0
    while heap:
        time, _seq, node, msg = heapq.heappop(heap)
        current_time = max(current_time, time)
        kind = msg[0]
        if kind == "go":
            _tag, k, direction, hops = msg
            flashes[k][node] += 1
            if hops > 1:
                send(time, node + direction, ("go", k, direction, hops - 1))
            else:
                # End of this wave: report completion back to node 0 the
                # short way (retrace the path).
                send(time, node - direction, ("done", k, -direction))
        elif kind == "done":
            _tag, k, direction = msg
            if node == 0:
                done_counts[k] += 1
                if done_counts[k] >= expected_dones:
                    finish_or_next(k, time)
            else:
                send(time, node + direction, ("done", k, direction))

    total = max(finished_at.values()) if finished_at else 0.0
    return SessionsOutcome(
        n=n,
        sessions=sessions,
        total_time=total,
        messages=messages,
        flashes_per_session=flashes,
    )


def stretching_lower_bound(n: int, sessions: int) -> float:
    """The Arjomandi–Fischer–Lynch bound on a ring: about (s-1) * diam.

    Between consecutive sessions, information must cross the ring's
    diameter (otherwise the diagram-stretching argument reorders the two
    halves and merges the sessions), costing diam time per boundary.
    """
    return float(max(0, sessions - 1) * ring_diameter(n))
