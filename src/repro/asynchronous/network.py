"""The FLP asynchronous message-passing model (§2.2.4).

Configurations are (process states, message buffer); the buffer is an
unordered multiset of (destination, message) pairs; an *event* delivers
one buffered message (or the null message) to its destination, which then
takes one deterministic step — updating its state and sending finitely
many messages.  The adversary chooses the event order; admissibility says
every process keeps taking steps and every buffered message is eventually
delivered.

Protocols are written state-passing style so configurations are hashable
and the valency machinery of :mod:`repro.impossibility.bivalence` applies
directly — :class:`AsyncConsensusSystem` is the
:class:`~repro.impossibility.bivalence.DecisionSystem` instantiation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from dataclasses import dataclass, field

from ..core.budget import BudgetMeter
from ..core.freeze import frozendict
from ..core.runtime import FaultAdversary, Trace
from ..impossibility.bivalence import DecisionSystem

Pid = int
Message = Hashable
NULL = ("__null__",)  # the null delivery of the FLP model
START = ("__start__",)  # self-addressed wake-up delivered as a first event


class AsyncProtocol(ABC):
    """A deterministic asynchronous protocol in state-passing style."""

    name: str = "async-protocol"
    uses_null_steps: bool = False

    @abstractmethod
    def initial_state(self, pid: Pid, n: int, input_value: Hashable) -> Hashable:
        """The initial local state (hashable).  Initial sends are modeled by
        :meth:`initial_messages`."""

    def initial_messages(
        self, pid: Pid, n: int, input_value: Hashable
    ) -> Iterable[Tuple[Pid, Message]]:
        """Messages in flight before any event.

        The default is a self-addressed START wake-up, so a process's
        opening broadcast happens as a *step* (deliver START, send) — which
        is what makes "crash at time zero" (never schedule the process)
        genuinely withhold its input from the others.
        """
        return ((pid, START),)

    @abstractmethod
    def transition(
        self, pid: Pid, state: Hashable, message: Message
    ) -> Tuple[Hashable, Tuple[Tuple[Pid, Message], ...]]:
        """Deliver ``message`` (possibly NULL): new state plus sends."""

    @abstractmethod
    def decision(self, state: Hashable) -> Optional[Hashable]:
        """The decided value, or None.  Decisions must be irrevocable."""


# The buffer is a frozendict {(dest, message): count}.
Buffer = frozendict
Configuration = Tuple[Tuple[Hashable, ...], Buffer]
Event = Tuple[str, Pid, Message]  # ("deliver", dest, message)


@dataclass
class FairRun:
    """Outcome of :meth:`AsyncConsensusSystem.run_fair_traced`."""

    config: Configuration
    steps: int
    trace: Optional[Trace] = field(repr=False, default=None, compare=False)


def _buffer_add(buffer: Buffer, items: Iterable[Tuple[Pid, Message]]) -> Buffer:
    contents = dict(buffer._data)
    for dest, msg in items:
        key = (dest, msg)
        contents[key] = contents.get(key, 0) + 1
    return frozendict._from_data(contents)

def _buffer_remove(buffer: Buffer, dest: Pid, msg: Message) -> Buffer:
    contents = dict(buffer._data)
    key = (dest, msg)
    if contents.get(key, 0) <= 0:
        raise KeyError(f"message {key} not in buffer")
    contents[key] -= 1
    if contents[key] == 0:
        del contents[key]
    return frozendict._from_data(contents)


# (dest, message) -> repr memo for the deterministic buffer sort in
# events()/fair_events().  Message vocabularies are tiny (protocol
# constants x pids), so this stays small while saving a deep repr per
# buffered message per expansion.
_REPR_KEYS: Dict[Hashable, str] = {}


def _repr_key(key: Hashable) -> str:
    r = _REPR_KEYS.get(key)
    if r is None:
        r = repr(key)
        _REPR_KEYS[key] = r
    return r


class AsyncConsensusSystem(DecisionSystem):
    """An asynchronous protocol under adversarial scheduling, as a
    :class:`DecisionSystem` for valency analysis.

    ``input_vectors`` defaults to all binary vectors, one initial
    configuration each — the domain of FLP Lemma 2.
    """

    def __init__(
        self,
        protocol: AsyncProtocol,
        n: int,
        input_vectors: Optional[Sequence[Sequence[Hashable]]] = None,
        values: Sequence[Hashable] = (0, 1),
    ):
        self.protocol = protocol
        self.n = n
        self._values = tuple(values)
        if input_vectors is None:
            import itertools

            input_vectors = list(itertools.product(self._values, repeat=n))
        self.input_vectors = [tuple(v) for v in input_vectors]
        # Per-local-state memos: protocols are deterministic, so both
        # decision(state) and transition(pid, state, message) are pure
        # functions of their (frozen, hashable) arguments.
        self._decisions: Dict[Hashable, Optional[Hashable]] = {}
        self._transitions: Dict[
            Tuple[Pid, Hashable, Message],
            Tuple[Hashable, Tuple[Tuple[Pid, Message], ...]],
        ] = {}

    # -- DecisionSystem interface ------------------------------------------

    @property
    def processes(self) -> Sequence[Pid]:
        return list(range(self.n))

    @property
    def values(self) -> Sequence[Hashable]:
        return self._values

    def initial_configurations(self) -> Iterator[Configuration]:
        for inputs in self.input_vectors:
            yield self.configuration_for(inputs)

    def configuration_for(self, inputs: Sequence[Hashable]) -> Configuration:
        states = tuple(
            self.protocol.initial_state(pid, self.n, inputs[pid])
            for pid in range(self.n)
        )
        buffer = _buffer_add(
            frozendict(),
            (
                (dest, msg)
                for pid in range(self.n)
                for dest, msg in self.protocol.initial_messages(
                    pid, self.n, inputs[pid]
                )
            ),
        )
        return (states, buffer)

    def events(self, config: Configuration) -> Iterator[Event]:
        _states, buffer = config
        for (dest, msg) in sorted(buffer._data, key=_repr_key):
            yield ("deliver", dest, msg)
        if self.protocol.uses_null_steps:
            for pid in range(self.n):
                yield ("deliver", pid, NULL)

    def owner(self, event: Event) -> Pid:
        return event[1]

    def apply(self, config: Configuration, event: Event) -> Configuration:
        states, buffer = config
        _tag, dest, msg = event
        local = states[dest]
        key = (dest, local, msg)
        try:
            new_state, sends = self._transitions[key]
        except KeyError:
            new_state, sends = self.protocol.transition(dest, local, msg)
            self._transitions[key] = (new_state, sends)
        # Remove the delivered message and fold in the sends in one pass
        # over a single buffer copy (the hot loop of every expansion).
        contents = dict(buffer._data)
        if msg != NULL:
            bkey = (dest, msg)
            count = contents.get(bkey, 0)
            if count <= 0:
                raise KeyError(f"message {bkey} not in buffer")
            if count == 1:
                del contents[bkey]
            else:
                contents[bkey] = count - 1
        for skey in sends:
            contents[skey] = contents.get(skey, 0) + 1
        new_states = states[:dest] + (new_state,) + states[dest + 1:]
        return (new_states, frozendict._from_data(contents))

    def sweep_transitions(
        self, config: Configuration
    ) -> "list[Tuple[Event, Configuration]]":
        """Every ``(event, successor)`` pair out of ``config``, sharing the
        per-configuration setup (sorted deliverables, memo lookups) across
        the row.  Same event order as :meth:`events`; used by the packed
        transition cache to expand a whole CSR row in one call.
        """
        states, buffer = config
        data = buffer._data
        memo = self._transitions
        transition = self.protocol.transition
        from_data = frozendict._from_data
        out = []
        for key in sorted(data, key=_repr_key):
            dest, msg = key
            local = states[dest]
            tkey = (dest, local, msg)
            try:
                new_state, sends = memo[tkey]
            except KeyError:
                new_state, sends = transition(dest, local, msg)
                memo[tkey] = (new_state, sends)
            contents = dict(data)
            count = contents[key]
            if count == 1:
                del contents[key]
            else:
                contents[key] = count - 1
            for skey in sends:
                contents[skey] = contents.get(skey, 0) + 1
            out.append((
                ("deliver", dest, msg),
                (
                    states[:dest] + (new_state,) + states[dest + 1:],
                    from_data(contents),
                ),
            ))
        if self.protocol.uses_null_steps:
            for pid in range(self.n):
                event = ("deliver", pid, NULL)
                out.append((event, self.apply(config, event)))
        return out

    def decisions(self, config: Configuration) -> Mapping[Pid, Hashable]:
        states, _buffer = config
        out: Dict[Pid, Hashable] = {}
        memo = self._decisions
        decision = self.protocol.decision
        for pid, state in enumerate(states):
            try:
                value = memo[state]
            except KeyError:
                value = decision(state)
                memo[state] = value
            if value is not None:
                out[pid] = value
        return out

    def decided_values(self, config: Configuration) -> FrozenSet[Hashable]:
        states, _buffer = config
        memo = self._decisions
        decision = self.protocol.decision
        out = set()
        for state in states:
            try:
                value = memo[state]
            except KeyError:
                value = decision(state)
                memo[state] = value
            if value is not None:
                out.add(value)
        return frozenset(out)

    def fair_events(self, config: Configuration) -> Mapping[Pid, Event]:
        """The oldest-ish pending delivery per process (deterministic pick);
        null steps are owed only to processes with empty queues (when the
        protocol uses them)."""
        _states, buffer = config
        owed: Dict[Pid, Event] = {}
        for (dest, msg) in sorted(buffer._data, key=_repr_key):
            if dest not in owed:
                owed[dest] = ("deliver", dest, msg)
        if self.protocol.uses_null_steps:
            for pid in range(self.n):
                owed.setdefault(pid, ("deliver", pid, NULL))
        return owed

    # -- simulation helpers --------------------------------------------------

    def run_fair(
        self,
        inputs: Sequence[Hashable],
        max_steps: int = 10_000,
        exclude: Iterable[Pid] = (),
        seed: Optional[int] = None,
    ) -> Tuple[Configuration, int]:
        """Run a fair schedule (round-robin over processes' owed events),
        optionally *crashing* the processes in ``exclude`` (they take no
        steps; messages to them rot in the buffer, which the FLP
        admissibility notion permits for faulty processes).

        Returns (final configuration, steps taken).  Stops when every
        non-excluded process has decided or nothing is deliverable.  For a
        unified-schema trace of the same schedule use
        :meth:`run_fair_traced`.
        """
        run = self.run_fair_traced(
            inputs, max_steps=max_steps, exclude=exclude, seed=seed,
            record_trace=False,
        )
        return run.config, run.steps

    def run_fair_traced(
        self,
        inputs: Sequence[Hashable],
        max_steps: int = 10_000,
        exclude: Iterable[Pid] = (),
        seed: Optional[int] = None,
        record_trace: bool = True,
        adversary: Optional[FaultAdversary] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> "FairRun":
        """:meth:`run_fair`, recorded in the unified trace schema.

        Each scheduling step emits a DELIVER event (actor = the stepping
        process, payload = the delivered message); CRASH events for the
        ``exclude`` set open the trace.  The trace replays through
        :func:`repro.core.runtime.replay` — the whole schedule is a
        deterministic function of ``(protocol, inputs, exclude, adversary,
        seed)``.

        An ``adversary`` wields the *scheduling* power of the unified
        :class:`~repro.core.runtime.FaultAdversary`: each step it picks
        which live process (sorted pid order) is served its owed event —
        the delivery-order control every FLP-style argument quantifies
        over, and what the chaos fuzzer's scripted schedulers drive.  A
        ``meter`` charges one step per delivery.
        """
        from ..core.runtime import CRASH, DELIVER, SimulationRuntime

        excluded = set(exclude)
        runtime = SimulationRuntime(
            substrate="async-network",
            protocol=self.protocol.name,
            seed=seed,
            adversary=adversary,
            record=record_trace,
        )
        record = record_trace
        rng = runtime.rng if seed is not None else None
        if record:
            for pid in sorted(excluded):
                runtime.emit(CRASH, pid)
        config = self.configuration_for(tuple(inputs))
        steps = 0
        order = [p for p in range(self.n) if p not in excluded]
        cursor = 0
        while steps < max_steps:
            if meter is not None:
                meter.charge_steps()
            live = {
                pid: event
                for pid, event in self.fair_events(config).items()
                if pid not in excluded
            }
            undecided = [
                p for p in order if p not in self.decisions(config)
            ]
            if not undecided or not live:
                break
            if adversary is not None:
                pids = sorted(live)
                pid = pids[adversary.schedule(pids, rng)]
                if record:
                    runtime.emit(DELIVER, pid, live[pid][2])
                config = self.apply(config, live[pid])
            elif rng is None:
                # Round-robin over processes with pending events.
                for offset in range(len(order)):
                    pid = order[(cursor + offset) % len(order)]
                    if pid in live:
                        cursor = (cursor + offset + 1) % len(order)
                        if record:
                            runtime.emit(DELIVER, pid, live[pid][2])
                        config = self.apply(config, live[pid])
                        break
                else:
                    break
            else:
                pid = rng.choice(sorted(live))
                if record:
                    runtime.emit(DELIVER, pid, live[pid][2])
                config = self.apply(config, live[pid])
            steps += 1

        trace: Optional[Trace] = None
        if record:
            def replayer(
                _self=self, _inputs=tuple(inputs), _max=max_steps,
                _exclude=frozenset(excluded), _seed=seed,
                _adversary=adversary,
            ) -> Trace:
                if _adversary is not None:
                    _adversary.reset()
                return _self.run_fair_traced(
                    _inputs, max_steps=_max, exclude=_exclude, seed=_seed,
                    adversary=_adversary,
                ).trace

            trace = runtime.finish(
                outcome={
                    "steps": steps,
                    "decisions": tuple(sorted(self.decisions(config).items())),
                },
                replayer=replayer,
            )
        return FairRun(config=config, steps=steps, trace=trace)
