"""Consensus under partial synchrony (§2.2.4, Dwork–Lynch–Stockmeyer [46]).

FLP kills asynchronous consensus; DLS showed how little synchrony revives
it: if message delays are bounded *eventually* (after an unknown global
stabilization time, GST), consensus with t < n/2 crash faults is solvable
— safety holds under arbitrary asynchrony, and termination is guaranteed
once the network stabilizes.  The survey lists "what are the exact time
bounds required for consensus" in this model as open question 2.

The engine lives in :mod:`repro.circumvention.gst`, on the unified
runtime: synchrony itself is a schedule of first-class adversary atoms —
``("gst", g)`` stabilization, ``("delay", r, link, d)`` per-round link
delays, ``("down", r, pid)`` crashes — and every run is a deterministic,
replayable function of ``(atoms, seed)``.  This module is the stable
experiment-facing API: :func:`run_dls` compiles the seed-era surface
(pre-GST messages dropped with probability 1/2, seeded) into delay
atoms via a :func:`~repro.core.runtime.derive_seed`-keyed RNG and hands
it to the traced engine; phases stay 1-based (engine round ``r`` is
phase ``r + 1``); ``gst_phase=None`` means the network never stabilizes
(safety only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..circumvention.gst import DELAY_ATOM, DOWN_ATOM, run_gst_consensus
from ..core.errors import ModelError
from ..core.runtime import derive_seed

__all__ = ["DLSResult", "run_dls", "safety_sweep"]


@dataclass
class DLSResult:
    n: int
    t: int
    gst_phase: Optional[int]
    decisions: Dict[int, Optional[int]]
    phases_run: int
    crashed: Set[int]

    @property
    def live(self) -> List[int]:
        return [p for p in range(self.n) if p not in self.crashed]

    @property
    def agreement(self) -> bool:
        decided = {
            self.decisions[p] for p in self.live
            if self.decisions[p] is not None
        }
        return len(decided) <= 1

    @property
    def all_live_decided(self) -> bool:
        return all(self.decisions[p] is not None for p in self.live)


def _lossy_atoms(
    n: int, seed: int, lossy_rounds: int, loss: float = 0.5
):
    """Seed-era pre-GST loss as delay atoms: each directed link's message
    in each lossy round is dropped with probability ``loss``, seeded
    through :func:`derive_seed` so ``PYTHONHASHSEED`` cannot touch it."""
    rng = random.Random(derive_seed(seed, "dls-lossy", n, lossy_rounds))
    atoms = []
    for r in range(lossy_rounds):
        for src in range(n):
            for dst in range(n):
                if src != dst and rng.random() < loss:
                    atoms.append((DELAY_ATOM, r, (src, dst), 1))
    return atoms


def run_dls(
    n: int,
    t: int,
    inputs: Sequence[int],
    gst_phase: Optional[int] = 3,
    seed: int = 0,
    max_phases: int = 40,
    crashed: Sequence[int] = (),
) -> DLSResult:
    """Run the rotating-coordinator algorithm phase by phase.

    Before ``gst_phase`` every individual message is dropped with
    probability 1/2 (seeded); from ``gst_phase`` on, delivery is perfect.
    ``gst_phase=None`` means the network never stabilizes (safety only).
    Crashed processes send nothing at all.
    """
    if 2 * t >= n:
        raise ModelError("DLS requires t < n/2")
    if len(crashed) > t:
        raise ModelError(f"{len(crashed)} crashes exceeds t={t}")
    if len(inputs) != n:
        raise ModelError("need one input per process")
    if gst_phase is None:
        gst = None
        lossy_rounds = max_phases
    else:
        gst = max(gst_phase - 1, 0)
        lossy_rounds = gst
    atoms = _lossy_atoms(n, seed, lossy_rounds)
    atoms.extend((DOWN_ATOM, 0, pid) for pid in sorted(set(crashed)))
    run = run_gst_consensus(
        tuple(atoms),
        seed,
        inputs=tuple(inputs),
        t=t,
        max_rounds=max_phases,
        default_gst=gst,
    )
    return DLSResult(
        n=n,
        t=t,
        gst_phase=gst_phase,
        decisions=run.decisions,
        phases_run=run.rounds,
        crashed=set(crashed),
    )


def safety_sweep(
    n: int = 4, t: int = 1, seeds: Sequence[int] = range(30)
) -> Dict[str, int]:
    """Safety under hostile asynchrony: never two different decisions,
    with and without stabilization."""
    violations = 0
    decided_without_gst = 0
    for seed in seeds:
        inputs = [(seed + i) % 2 for i in range(n)]
        forever_async = run_dls(n, t, inputs, gst_phase=None, seed=seed)
        if not forever_async.agreement:
            violations += 1
        if any(v is not None for v in forever_async.decisions.values()):
            decided_without_gst += 1
        stabilized = run_dls(n, t, inputs, gst_phase=4, seed=seed)
        if not stabilized.agreement:
            violations += 1
    return {
        "runs": 2 * len(list(seeds)),
        "agreement_violations": violations,
        "lucky_decisions_without_gst": decided_without_gst,
    }
