"""Consensus under partial synchrony (§2.2.4, Dwork–Lynch–Stockmeyer [46]).

FLP kills asynchronous consensus; DLS showed how little synchrony revives
it: if message delays are bounded *eventually* (after an unknown global
stabilization time, GST), consensus with t < n/2 crash faults is solvable
— safety holds under arbitrary asynchrony, and termination is guaranteed
once the network stabilizes.  The survey lists "what are the exact time
bounds required for consensus" in this model as open question 2.

This module implements the rotating-coordinator algorithm with locks:

* phases rotate a coordinator; each phase: processes report their values,
  the coordinator proposes the majority report, processes lock and
  acknowledge the proposal, and the coordinator decides on n - t acks,
  then broadcasts the decision;
* a process reports its locked value when it has one, so any decided
  value is locked by a majority — two different decisions would need two
  majorities, which intersect: safety with t < n/2, whatever the network
  does;
* the adversary drops any messages it likes before GST and nothing after,
  so some post-GST phase has a live coordinator and completes.

:func:`run_dls` is a deterministic, seeded simulation; the tests sweep
hostile pre-GST schedules for safety and check termination shortly after
GST.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import ModelError


@dataclass
class DLSResult:
    n: int
    t: int
    gst_phase: Optional[int]
    decisions: Dict[int, Optional[int]]
    phases_run: int
    crashed: Set[int]

    @property
    def live(self) -> List[int]:
        return [p for p in range(self.n) if p not in self.crashed]

    @property
    def agreement(self) -> bool:
        decided = {
            self.decisions[p] for p in self.live
            if self.decisions[p] is not None
        }
        return len(decided) <= 1

    @property
    def all_live_decided(self) -> bool:
        return all(self.decisions[p] is not None for p in self.live)


class _DLSProcess:
    def __init__(self, pid: int, n: int, input_value: int):
        self.pid = pid
        self.n = n
        self.value = 1 if input_value else 0
        self.lock: Optional[Tuple[int, int]] = None  # (phase, value)
        self.decided: Optional[int] = None

    def report(self) -> Tuple[int, int]:
        """(lock phase, value) — phase 0 when never locked."""
        if self.lock is not None:
            return self.lock
        return (0, self.value)

    def on_propose(self, phase: int, value: int) -> None:
        """Accept a proposal from a quorum-anchored coordinator.

        Overwriting an older lock is safe precisely because the proposal
        was computed from a quorum of reports containing the highest lock
        (the Paxos-style invariant the safety test sweeps for).
        """
        if self.lock is None or phase >= self.lock[0]:
            self.lock = (phase, value)
            self.value = value


def run_dls(
    n: int,
    t: int,
    inputs: Sequence[int],
    gst_phase: Optional[int] = 3,
    seed: int = 0,
    max_phases: int = 40,
    crashed: Sequence[int] = (),
) -> DLSResult:
    """Run the rotating-coordinator algorithm phase by phase.

    Before ``gst_phase`` every individual message is dropped with
    probability 1/2 (seeded); from ``gst_phase`` on, delivery is perfect.
    ``gst_phase=None`` means the network never stabilizes (safety only).
    Crashed processes send nothing at all.
    """
    if 2 * t >= n:
        raise ModelError("DLS requires t < n/2")
    if len(crashed) > t:
        raise ModelError(f"{len(crashed)} crashes exceeds t={t}")
    rng = random.Random(seed)
    crashed_set = set(crashed)
    processes = [_DLSProcess(pid, n, inputs[pid]) for pid in range(n)]

    def delivered(phase: int, src: int, dest: int) -> bool:
        if src in crashed_set:
            return False
        if gst_phase is not None and phase >= gst_phase:
            return True
        return rng.random() < 0.5

    phases_run = 0
    for phase in range(1, max_phases + 1):
        phases_run = phase
        if all(
            p.decided is not None or p.pid in crashed_set for p in processes
        ):
            break
        coordinator = (phase - 1) % n

        # Round 1: everyone reports (lock phase, value) to the coordinator.
        coord = processes[coordinator]
        if coordinator in crashed_set:
            continue
        reports: Dict[int, Tuple[int, int]] = {coordinator: coord.report()}
        for proc in processes:
            if proc.pid != coordinator and delivered(phase, proc.pid, coordinator):
                reports[proc.pid] = proc.report()
        # Quorum read: without n - t reports the phase is abandoned — this
        # is what anchors safety under arbitrary pre-GST loss.
        if len(reports) < n - t:
            continue
        highest_phase = max(lock_phase for (lock_phase, _v) in reports.values())
        if highest_phase > 0:
            proposal = next(
                v for (lock_phase, v) in reports.values()
                if lock_phase == highest_phase
            )
        else:
            ones = sum(1 for (_p, v) in reports.values() if v == 1)
            proposal = 1 if 2 * ones >= len(reports) else 0

        # Round 2: proposal goes out; processes lock and ack.
        acks = 0
        for proc in processes:
            if proc.pid in crashed_set:
                continue
            if delivered(phase, coordinator, proc.pid):
                proc.on_propose(phase, proposal)
                if delivered(phase, proc.pid, coordinator):
                    acks += 1

        # Round 3: enough acks -> decide and broadcast the decision.
        if acks >= n - t and coord.decided is None:
            coord.decided = proposal
        if coord.decided is not None:
            for proc in processes:
                if proc.pid in crashed_set or proc.decided is not None:
                    continue
                if delivered(phase, coordinator, proc.pid):
                    proc.decided = coord.decided

    return DLSResult(
        n=n,
        t=t,
        gst_phase=gst_phase,
        decisions={p.pid: p.decided for p in processes},
        phases_run=phases_run,
        crashed=crashed_set,
    )


def safety_sweep(
    n: int = 4, t: int = 1, seeds: Sequence[int] = range(30)
) -> Dict[str, int]:
    """Safety under hostile asynchrony: never two different decisions,
    with and without stabilization."""
    violations = 0
    decided_without_gst = 0
    for seed in seeds:
        inputs = [(seed + i) % 2 for i in range(n)]
        forever_async = run_dls(n, t, inputs, gst_phase=None, seed=seed)
        if not forever_async.agreement:
            violations += 1
        if any(v is not None for v in forever_async.decisions.values()):
            decided_without_gst += 1
        stabilized = run_dls(n, t, inputs, gst_phase=4, seed=seed)
        if not stabilized.agreement:
            violations += 1
    return {
        "runs": 2 * len(list(seeds)),
        "agreement_violations": violations,
        "lucky_decisions_without_gst": decided_without_gst,
    }
