"""Ben-Or's randomized consensus: circumventing FLP with coin flips (§2.2.4).

The survey's first-cited escape hatch [19]: FLP rules out *deterministic*
1-resilient async consensus, but Ben-Or's protocol decides with
probability 1 against any crash adversary when n > 2t, never violating
safety.  Each phase has a report round (broadcast your value, collect
n-t), a proposal round (propose w if a strict majority reported w), and a
coin flip for processes left without a proposal.

The engine lives in :mod:`repro.circumvention.randomized`, on the
unified runtime: every run is a deterministic, replayable function of
``(atoms, seed)`` with a full :class:`~repro.core.runtime.Trace`.  This
module is the stable experiment-facing API — the seed-era surface
(:func:`run_ben_or`, :func:`termination_statistics`) expressed as a thin
adapter over the traced engine: a ``crash_plan`` becomes ``("crash",
event, pid)`` adversary atoms, the seeded scheduler is the engine's
derive_seed-keyed RNG, and the contract checks (one input per process,
at most ``t`` crashes) stay exactly where they were.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from ..circumvention.randomized import (
    CRASH_ATOM,
    BenOrProcess,
    run_ben_or_traced,
)
from ..core.errors import ModelError

Pid = int
QUESTION = "?"

__all__ = [
    "BenOrProcess",
    "BenOrResult",
    "run_ben_or",
    "termination_statistics",
]


@dataclass
class BenOrResult:
    decisions: Dict[Pid, Optional[int]]
    phases: Dict[Pid, int]
    crashed: Set[Pid]
    events: int
    agreement: bool
    validity: bool


def run_ben_or(
    n: int,
    t: int,
    inputs: Sequence[int],
    seed: int = 0,
    crash_plan: Optional[Dict[Pid, int]] = None,
    max_events: int = 200_000,
) -> BenOrResult:
    """Run Ben-Or under a seeded random scheduler.

    ``crash_plan`` maps pid -> event index at which it crashes (its queued
    messages are discarded, it takes no further steps).  Raises
    :class:`ModelError` when |crash_plan| > t — the caller asked for an
    adversary stronger than the protocol's contract.
    """
    if len(inputs) != n:
        raise ModelError("need one input per process")
    crash_plan = dict(crash_plan or {})
    if len(crash_plan) > t:
        raise ModelError(
            f"crash plan kills {len(crash_plan)} > t={t} processes"
        )
    atoms = tuple(
        (CRASH_ATOM, when, pid) for pid, when in sorted(crash_plan.items())
    )
    run = run_ben_or_traced(
        atoms, seed, n=n, t=t, inputs=inputs, max_events=max_events
    )
    return BenOrResult(
        decisions=run.decisions,
        phases=run.phases,
        crashed=set(run.crashed),
        events=run.events,
        agreement=run.agreement,
        validity=run.validity,
    )


def termination_statistics(
    n: int, t: int, trials: int = 50, seed_base: int = 0
) -> Dict[str, float]:
    """Empirical support for "decides with probability 1": run many seeded
    trials with mixed inputs and adversarial-ish crashes, report the
    decision rate and phase distribution."""
    decided = 0
    total_phases = 0
    worst_phase = 0
    for trial in range(trials):
        inputs = [(trial + i) % 2 for i in range(n)]
        crash_plan = {n - 1: 10 * (trial % 5)} if t >= 1 else None
        result = run_ben_or(
            n, t, inputs, seed=seed_base + trial, crash_plan=crash_plan
        )
        live = [p for p in range(n) if p not in result.crashed]
        if all(result.decisions[p] is not None for p in live):
            decided += 1
            phases = max(result.phases[p] for p in live)
            total_phases += phases
            worst_phase = max(worst_phase, phases)
    return {
        "trials": trials,
        "decided_fraction": decided / trials,
        "mean_phases": total_phases / max(decided, 1),
        "worst_phases": worst_phase,
    }
