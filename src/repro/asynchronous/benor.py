"""Ben-Or's randomized consensus: circumventing FLP with coin flips (§2.2.4).

The survey's first-cited escape hatch [19]: FLP rules out *deterministic*
1-resilient async consensus, but Ben-Or's protocol decides with
probability 1 against any crash adversary when n > 2t, never violating
safety.  Each phase has a report round (broadcast your value, collect
n-t), a proposal round (propose w if a strict majority reported w), and a
coin flip for processes left without a proposal.

The simulation is event-driven and seeded: the message scheduler and the
coins are both deterministic functions of their seeds, so every run in the
tests replays.  The adversary may crash up to t processes at scheduled
event counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ModelError

Pid = int
QUESTION = "?"


class BenOrProcess:
    """One Ben-Or participant (binary values)."""

    def __init__(self, pid: Pid, n: int, t: int, input_value: int, seed: int):
        self.pid = pid
        self.n = n
        self.t = t
        self.value = 1 if input_value else 0
        self.phase = 1
        self.stage = "report"  # or "propose"
        self.decided: Optional[int] = None
        self.rng = random.Random(seed * 1_000_003 + pid)
        # Buffered messages: (stage, phase) -> {sender: value}.
        self.inbox: Dict[Tuple[str, int], Dict[Pid, Hashable]] = {}
        self.outbox: List[Tuple[Pid, Hashable]] = []
        self._broadcast(("report", self.phase, self.value))

    def _broadcast(self, msg: Hashable) -> None:
        for dest in range(self.n):
            if dest != self.pid:
                self.outbox.append((dest, msg))
        # Self-delivery is immediate.
        self._store(self.pid, msg)

    def _store(self, src: Pid, msg: Hashable) -> None:
        stage, phase, value = msg
        self.inbox.setdefault((stage, phase), {})[src] = value

    def handle(self, src: Pid, msg: Hashable) -> None:
        """Deliver one message; may advance the phase machine."""
        if not (isinstance(msg, tuple) and len(msg) == 3):
            return
        self._store(src, msg)
        self._advance()

    def _advance(self) -> None:
        progressed = True
        while progressed and self.decided is None:
            progressed = False
            key = (self.stage, self.phase)
            arrived = self.inbox.get(key, {})
            if len(arrived) < self.n - self.t:
                return
            if self.stage == "report":
                ones = sum(1 for v in arrived.values() if v == 1)
                zeros = sum(1 for v in arrived.values() if v == 0)
                if ones * 2 > self.n:
                    proposal = 1
                elif zeros * 2 > self.n:
                    proposal = 0
                else:
                    proposal = QUESTION
                self.stage = "propose"
                self._broadcast(("propose", self.phase, proposal))
                progressed = True
            else:
                proposals = [v for v in arrived.values() if v != QUESTION]
                if proposals:
                    # All real proposals of a phase are equal (majority
                    # intersection); adopt it.
                    w = proposals[0]
                    if len(proposals) > self.t:
                        self.decided = w
                        return
                    self.value = w
                else:
                    self.value = self.rng.randrange(2)
                self.phase += 1
                self.stage = "report"
                self._broadcast(("report", self.phase, self.value))
                progressed = True


@dataclass
class BenOrResult:
    decisions: Dict[Pid, Optional[int]]
    phases: Dict[Pid, int]
    crashed: Set[Pid]
    events: int
    agreement: bool
    validity: bool


def run_ben_or(
    n: int,
    t: int,
    inputs: Sequence[int],
    seed: int = 0,
    crash_plan: Optional[Dict[Pid, int]] = None,
    max_events: int = 200_000,
) -> BenOrResult:
    """Run Ben-Or under a seeded random scheduler.

    ``crash_plan`` maps pid -> event index at which it crashes (its queued
    messages are discarded, it takes no further steps).  Raises
    :class:`ModelError` when |crash_plan| > t — the caller asked for an
    adversary stronger than the protocol's contract.
    """
    if len(inputs) != n:
        raise ModelError("need one input per process")
    crash_plan = dict(crash_plan or {})
    if len(crash_plan) > t:
        raise ModelError(f"crash plan kills {len(crash_plan)} > t={t} processes")
    rng = random.Random(seed)
    processes = [BenOrProcess(pid, n, t, inputs[pid], seed) for pid in range(n)]
    crashed: Set[Pid] = set()
    # In-flight messages: list of (src, dest, msg).
    flight: List[Tuple[Pid, Pid, Hashable]] = []

    def drain_outboxes() -> None:
        for proc in processes:
            if proc.pid in crashed:
                proc.outbox.clear()
                continue
            for dest, msg in proc.outbox:
                flight.append((proc.pid, dest, msg))
            proc.outbox.clear()

    drain_outboxes()
    events = 0
    while events < max_events:
        for pid, when in list(crash_plan.items()):
            if events >= when and pid not in crashed:
                crashed.add(pid)
                flight[:] = [
                    (s, d, m) for (s, d, m) in flight if s != pid
                ]
        live_undecided = [
            p for p in range(n)
            if p not in crashed and processes[p].decided is None
        ]
        if not live_undecided:
            break
        deliverable = [
            i for i, (s, d, m) in enumerate(flight) if d not in crashed
        ]
        if not deliverable:
            break
        index = deliverable[rng.randrange(len(deliverable))]
        src, dest, msg = flight.pop(index)
        processes[dest].handle(src, msg)
        drain_outboxes()
        events += 1

    decisions = {p.pid: p.decided for p in processes}
    live = [p for p in range(n) if p not in crashed]
    decided_values = {decisions[p] for p in live if decisions[p] is not None}
    agreement = len(decided_values) <= 1
    validity = True
    if len(set(inputs)) == 1:
        (v,) = set(inputs)
        validity = all(
            decisions[p] in (None, v) for p in live
        )
    return BenOrResult(
        decisions=decisions,
        phases={p.pid: p.phase for p in processes},
        crashed=crashed,
        events=events,
        agreement=agreement,
        validity=validity,
    )


def termination_statistics(
    n: int, t: int, trials: int = 50, seed_base: int = 0
) -> Dict[str, float]:
    """Empirical support for "decides with probability 1": run many seeded
    trials with mixed inputs and adversarial-ish crashes, report the
    decision rate and phase distribution."""
    decided = 0
    total_phases = 0
    worst_phase = 0
    for trial in range(trials):
        inputs = [(trial + i) % 2 for i in range(n)]
        crash_plan = {n - 1: 10 * (trial % 5)} if t >= 1 else None
        result = run_ben_or(
            n, t, inputs, seed=seed_base + trial, crash_plan=crash_plan
        )
        live = [p for p in range(n) if p not in result.crashed]
        if all(result.decisions[p] is not None for p in live):
            decided += 1
            phases = max(result.phases[p] for p in live)
            total_phases += phases
            worst_phase = max(worst_phase, phases)
    return {
        "trials": trials,
        "decided_fraction": decided / trials,
        "mean_phases": total_phases / max(decided, 1),
        "worst_phases": worst_phase,
    }
