"""FLP mechanized: every async consensus attempt fails (§2.2.4).

Fischer–Lynch–Paterson: no deterministic asynchronous consensus protocol
tolerates even one stopping fault.  The proof machinery — valency,
bivalent initial configurations, deciders, bivalence-preserving schedules
— lives generically in :mod:`repro.impossibility.bivalence`; this module
instantiates it on the asynchronous network model and runs the complete
analysis against concrete candidate protocols.

FLP partitions every candidate's fate: a protocol either

* ``agreement-violation`` — some schedule makes two processes decide
  differently (unsafe); or
* ``blocks-under-crash`` — excluding one process from the schedule leaves
  a nonfaulty process undecided forever (safe, not 1-resilient).

There is no third option — that *is* the theorem — and
:func:`flp_certificate` verifies the dichotomy by exhaustive valency
analysis over all schedules.  Additionally, wherever a bivalent initial
configuration exists (Lemma 2's hypothesis for would-be-correct
protocols), :func:`flp_analysis` runs the :class:`StallingAdversary` to
demonstrate Lemma 3's machinery: a fair, bivalence-preserving schedule
extended stage by stage.

Every process's opening broadcast happens as a step (triggered by a
self-addressed START delivery), so "crash at time zero" genuinely keeps a
process's input out of the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Optional, Tuple

from ..core.errors import ModelError
from ..impossibility.bivalence import (
    StallResult,
    StallingAdversary,
    ValencyAnalyzer,
)
from ..impossibility.certificate import ImpossibilityCertificate
from .network import START, AsyncConsensusSystem, AsyncProtocol, Pid

# ---------------------------------------------------------------------------
# Candidate protocols (all finite-state, all doomed — per FLP, necessarily)
# ---------------------------------------------------------------------------


class WaitForAll(AsyncProtocol):
    """Broadcast your input; decide min once you hold all n values.

    Safe and live when nobody crashes — and hopelessly blocking when
    anybody does: the textbook non-resilient protocol.
    """

    name = "wait-for-all"

    def initial_state(self, pid, n, input_value):
        return (pid, n, input_value, frozenset(), None)

    def transition(self, pid, state, message):
        own_pid, n, value, seen, decided = state
        sends: Tuple = ()
        if message == START:
            seen = seen | {(own_pid, value)}
            sends = tuple(
                (dest, ("val", own_pid, value)) for dest in range(n) if dest != own_pid
            )
        elif isinstance(message, tuple) and message[0] == "val":
            seen = seen | {(message[1], message[2])}
        if decided is None and len(seen) == n:
            decided = min(v for (_p, v) in seen)
        return (own_pid, n, value, seen, decided), sends

    def decision(self, state):
        return state[4]


class FirstMessageWins(AsyncProtocol):
    """Broadcast your input; decide on the first value you hear.

    Fast, nonblocking — and unsafe: an easy agreement violation.
    """

    name = "first-message-wins"

    def initial_state(self, pid, n, input_value):
        return (pid, n, input_value, None)

    def transition(self, pid, state, message):
        own_pid, n, value, decided = state
        sends: Tuple = ()
        if message == START:
            sends = tuple(
                (dest, ("val", value)) for dest in range(n) if dest != own_pid
            )
        elif isinstance(message, tuple) and message[0] == "val":
            if decided is None:
                decided = message[1]
        return (own_pid, n, value, decided), sends

    def decision(self, state):
        return state[3]


class QuorumVote(AsyncProtocol):
    """Broadcast your input; decide the min of the first n-1 values you
    hold (your own included).

    The natural "don't wait for the possibly-dead process" fix — which
    restores liveness and sacrifices agreement: two processes can assemble
    different quorums.
    """

    name = "quorum-vote"

    def initial_state(self, pid, n, input_value):
        return (pid, n, input_value, frozenset(), None)

    def transition(self, pid, state, message):
        own_pid, n, value, seen, decided = state
        sends: Tuple = ()
        if message == START:
            seen = seen | {(own_pid, value)}
            sends = tuple(
                (dest, ("val", own_pid, value)) for dest in range(n) if dest != own_pid
            )
        elif isinstance(message, tuple) and message[0] == "val":
            seen = seen | {(message[1], message[2])}
        if decided is None and len(seen) >= n - 1:
            decided = min(v for (_p, v) in seen)
        return (own_pid, n, value, seen, decided), sends

    def decision(self, state):
        return state[4]


ALL_CANDIDATES = (WaitForAll, FirstMessageWins, QuorumVote)


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


@dataclass
class FLPReport:
    """Full FLP analysis of one candidate protocol."""

    protocol_name: str
    n: int
    initial_valencies: List[Tuple[Tuple[Hashable, ...], FrozenSet[Hashable]]]
    bivalent_initial_inputs: Optional[Tuple[Hashable, ...]]
    agreement_violation: Optional[object]
    blocking_crash: Optional[Pid]
    stall: Optional[StallResult]
    failure_mode: str

    def summary(self) -> str:
        lines = [
            f"FLP analysis of {self.protocol_name} (n={self.n}):",
            f"  failure mode: {self.failure_mode}",
        ]
        for inputs, valency in self.initial_valencies:
            lines.append(f"  inputs {inputs}: valency {sorted(valency)}")
        if self.stall is not None:
            lines.append(
                f"  stalling adversary: {self.stall.stages} fairness stages, "
                f"{len(self.stall.schedule)} events, still bivalent: "
                f"{self.stall.stayed_bivalent}"
            )
        return "\n".join(lines)


def flp_analysis(
    protocol: AsyncProtocol,
    n: int = 2,
    stall_stages: int = 24,
    max_configurations: int = 400_000,
) -> FLPReport:
    """Run the complete FLP analysis against one protocol."""
    system = AsyncConsensusSystem(protocol, n)
    analyzer = ValencyAnalyzer(system, max_configurations=max_configurations)

    # Valency of every initial configuration (Lemma 2 territory).  One
    # batched labelling pass covers the union of all the initial cones.
    labelled = dict(analyzer.classify_initial())
    initial_valencies = []
    bivalent_inputs = None
    for inputs in system.input_vectors:
        valency = labelled[system.configuration_for(inputs)]
        initial_valencies.append((inputs, valency))
        if len(valency) >= 2 and bivalent_inputs is None:
            bivalent_inputs = inputs

    # Lemma 3 demonstration: from a bivalent configuration, bivalence can
    # be preserved while honouring fairness obligations.
    stall = None
    if bivalent_inputs is not None:
        adversary = StallingAdversary(analyzer)
        stall = adversary.run(
            system.configuration_for(bivalent_inputs), stall_stages
        )

    # Safety: reachable agreement violation anywhere?
    violation = analyzer.find_disagreement()
    if violation is not None:
        return FLPReport(
            protocol.name, n, initial_valencies, bivalent_inputs,
            violation, None, stall, "agreement-violation",
        )

    # Resilience: does excluding one process block the rest?
    for crashed in range(n):
        for inputs in system.input_vectors:
            config, _steps = system.run_fair(inputs, exclude={crashed})
            decided = system.decisions(config)
            undecided = [
                p for p in range(n) if p != crashed and p not in decided
            ]
            if undecided:
                return FLPReport(
                    protocol.name, n, initial_valencies, bivalent_inputs,
                    None, crashed, stall, "blocks-under-crash",
                )

    # Safe and 1-resilient would contradict the theorem.
    raise ModelError(
        f"{protocol.name}: exhaustive analysis found neither an agreement "
        "violation nor crash-blocking — this contradicts FLP; check the model"
    )


def flp_certificate(
    protocol: AsyncProtocol,
    n: int = 2,
    stall_stages: int = 24,
    store=None,
) -> ImpossibilityCertificate:
    """Certify that this protocol is not a 1-resilient consensus protocol.

    ``store=`` (a :class:`~repro.service.store.CertificateStore`) answers
    from a previously stored analysis when a verified entry exists and
    persists a fresh analysis otherwise; the certificate is built from
    the payload either way, so hit and miss produce identical
    certificates.  The analysis is a pure function of ``(protocol, n,
    stall_stages)``, which is what makes the cached answer *the* answer.
    """
    # Lazy import: the service package imports this module's engines for
    # its live handlers; the store-backed path here is the other half of
    # that handshake.
    from ..service.service import (
        certificate_from_flp_payload,
        flp_key,
        flp_report_payload,
    )

    key = payload = None
    if store is not None:
        key = flp_key(protocol.name, n=n, stall_stages=stall_stages)
        payload = store.get(key)
    if payload is None:
        payload = flp_report_payload(flp_analysis(protocol, n, stall_stages))
        if store is not None:
            store.put(key, payload)
    return certificate_from_flp_payload(payload)
