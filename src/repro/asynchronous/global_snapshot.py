"""Chandy–Lamport global snapshots: consistent cuts of a live system.

The survey's closing unification remark groups "global snapshots" with
mutual exclusion, consensus and leader election as problems with "similar
inherent limitations".  The positive side is the Chandy–Lamport marker
algorithm: on FIFO channels, an initiator records its state and floods
markers; each process records its state at its first marker, and records
a channel's in-flight contents between its own recording and that
channel's marker.  The recorded cut is *consistent* — it conserves every
conservation law of the computation, even though no instant of real time
may ever have looked like it.

The demonstration workload is token banking: processes randomly wire
tokens to each other.  The invariant "total tokens = initial total" holds
in the snapshot; a naive unsynchronized dump of process balances (also
measured) misses the tokens in flight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

Channel = Tuple[int, int]


@dataclass
class SnapshotOutcome:
    n: int
    initial_total: int
    recorded_states: Dict[int, int]
    recorded_channels: Dict[Channel, List[int]]
    snapshot_total: int
    naive_total: int
    markers_sent: int
    steps: int

    @property
    def consistent(self) -> bool:
        """Token conservation: the cut sees every token exactly once."""
        return self.snapshot_total == self.initial_total

    @property
    def tokens_in_flight_at_cut(self) -> int:
        return sum(sum(v) for v in self.recorded_channels.values())


def run_token_snapshot(
    n: int = 4,
    tokens_per_process: int = 5,
    seed: int = 0,
    snapshot_at_step: int = 25,
    max_steps: int = 20_000,
) -> SnapshotOutcome:
    """Run the token workload, trigger a Chandy–Lamport snapshot mid-run,
    and return the recorded cut plus a naive balance dump for contrast."""
    rng = random.Random(seed)
    balance = [tokens_per_process] * n
    initial_total = sum(balance)
    channels: Dict[Channel, List] = {
        (i, j): [] for i in range(n) for j in range(n) if i != j
    }
    all_channels = set(channels)

    recorded_state: Dict[int, int] = {}
    channel_log: Dict[Channel, List[int]] = {}
    closed: Set[Channel] = set()
    markers_sent = 0
    snapshot_started = False
    naive_total = -1

    def start_recording(pid: int) -> None:
        nonlocal markers_sent
        if pid in recorded_state:
            return
        recorded_state[pid] = balance[pid]
        for src in range(n):
            if src != pid:
                channel_log.setdefault((src, pid), [])
        for dest in range(n):
            if dest != pid:
                channels[(pid, dest)].append(("marker",))
                markers_sent += 1

    steps = 0
    while steps < max_steps:
        steps += 1
        if steps == snapshot_at_step and not snapshot_started:
            snapshot_started = True
            naive_total = sum(balance)  # the flawed instantaneous dump
            start_recording(0)
        nonempty = [key for key, queue in channels.items() if queue]
        deliver = nonempty and (rng.random() < 0.6 or snapshot_started)
        if deliver:
            key = nonempty[rng.randrange(len(nonempty))]
            src, dest = key
            message = channels[key].pop(0)
            if message[0] == "marker":
                start_recording(dest)  # no-op if already recording
                closed.add(key)        # FIFO: nothing after the marker counts
            else:
                _tag, amount = message
                balance[dest] += amount
                if (
                    snapshot_started
                    and dest in recorded_state
                    and key not in closed
                ):
                    channel_log.setdefault(key, []).append(amount)
        else:
            src = rng.randrange(n)
            if balance[src] > 0:
                dest = rng.randrange(n)
                if dest != src:
                    balance[src] -= 1
                    channels[(src, dest)].append(("tokens", 1))
        if snapshot_started and closed == all_channels:
            break

    snapshot_total = sum(recorded_state.values()) + sum(
        sum(v) for v in channel_log.values()
    )
    return SnapshotOutcome(
        n=n,
        initial_total=initial_total,
        recorded_states=dict(recorded_state),
        recorded_channels={k: list(v) for k, v in channel_log.items()},
        snapshot_total=snapshot_total,
        naive_total=naive_total,
        markers_sent=markers_sent,
        steps=steps,
    )


def conservation_series(seeds: range = range(12), n: int = 4
                        ) -> List[Tuple[int, int, int]]:
    """(initial, snapshot, naive) totals per seed — snapshot always equals
    initial; the naive dump undercounts whenever tokens were in flight."""
    out = []
    for seed in seeds:
        result = run_token_snapshot(n=n, seed=seed)
        out.append((result.initial_total, result.snapshot_total,
                    result.naive_total))
    return out
