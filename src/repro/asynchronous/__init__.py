"""Asynchronous message-passing systems (survey §2.2.4, §2.2.6).

The FLP model and its valency analysis, the Two Generals chain argument,
Ben-Or's randomized escape, the sessions time bound, and network
synchronizers.
"""

from .benor import BenOrProcess, BenOrResult, run_ben_or, termination_statistics
from .flp import (
    ALL_CANDIDATES,
    FirstMessageWins,
    FLPReport,
    QuorumVote,
    WaitForAll,
    flp_analysis,
    flp_certificate,
)
from .network import (
    NULL,
    START,
    AsyncConsensusSystem,
    AsyncProtocol,
)
from .sessions import (
    SessionsOutcome,
    ring_diameter,
    run_async_sessions,
    run_sync_sessions,
    stretching_lower_bound,
)
from .synchronizer import (
    SynchronizerOutcome,
    run_alpha_synchronizer,
    run_beta_synchronizer,
    tradeoff_comparison,
)
from .partial_synchrony import (
    DLSResult,
    run_dls,
    safety_sweep,
)
from .global_snapshot import (
    SnapshotOutcome,
    conservation_series,
    run_token_snapshot,
)
from .termination import (
    TerminationResult,
    message_bound_series,
    run_dijkstra_scholten,
)
from .tasks import (
    DecisionTask,
    SolvabilityVerdict,
    analyze_task,
    binary_consensus_task,
    decision_graph,
    epsilon_agreement_task,
    identity_task,
    input_graph,
    leader_task,
    moran_wolfstahl_certificate,
)
from .two_generals import (
    ATTACK,
    RETREAT,
    HandshakeProtocol,
    RecklessProtocol,
    TimidProtocol,
    TwoGeneralsProtocol,
    TwoGeneralsRun,
    delivery_chain,
    run_with_losses,
    two_generals_certificate,
    validate_chain_links,
)

__all__ = [
    "AsyncProtocol",
    "AsyncConsensusSystem",
    "NULL",
    "START",
    "WaitForAll",
    "FirstMessageWins",
    "QuorumVote",
    "ALL_CANDIDATES",
    "FLPReport",
    "flp_analysis",
    "flp_certificate",
    "BenOrProcess",
    "BenOrResult",
    "run_ben_or",
    "termination_statistics",
    "TwoGeneralsProtocol",
    "TwoGeneralsRun",
    "HandshakeProtocol",
    "TimidProtocol",
    "RecklessProtocol",
    "ATTACK",
    "RETREAT",
    "run_with_losses",
    "delivery_chain",
    "validate_chain_links",
    "two_generals_certificate",
    "SessionsOutcome",
    "run_sync_sessions",
    "run_async_sessions",
    "stretching_lower_bound",
    "ring_diameter",
    "SynchronizerOutcome",
    "run_alpha_synchronizer",
    "run_beta_synchronizer",
    "tradeoff_comparison",
    "DecisionTask",
    "SolvabilityVerdict",
    "analyze_task",
    "input_graph",
    "decision_graph",
    "binary_consensus_task",
    "leader_task",
    "identity_task",
    "epsilon_agreement_task",
    "moran_wolfstahl_certificate",
    "TerminationResult",
    "run_dijkstra_scholten",
    "message_bound_series",
    "SnapshotOutcome",
    "run_token_snapshot",
    "conservation_series",
    "DLSResult",
    "run_dls",
    "safety_sweep",
]
