"""Termination detection and the Chandy–Misra message bound (§2.6).

Chandy and Misra [29] proved that detecting the termination of an
underlying computation requires at least as many control messages as the
computation itself sent — every basic message must be "covered", or the
detector can be fooled by a still-live corner of the system.

Dijkstra–Scholten is the matching algorithm for diffusing computations:
an engagement tree grows from the root; every basic message is answered
by exactly one signal (ack); a process leaves the tree when it is idle
with no outstanding signals; the root declares termination when its own
deficit clears.  Control messages = basic messages, exactly — the bound
is tight, and the simulation below measures it.

The workload is a seeded random diffusing computation with a decreasing
activity budget (guaranteeing termination), run under a seeded
adversarial scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import ModelError


@dataclass
class TerminationResult:
    n: int
    basic_messages: int
    control_messages: int
    detected: bool
    detection_was_correct: bool
    steps: int

    @property
    def chandy_misra_holds(self) -> bool:
        """control >= basic: the lower bound, met with equality by DS."""
        return self.control_messages >= self.basic_messages


class _DSProcess:
    """One Dijkstra–Scholten participant over a random workload."""

    def __init__(self, pid: int, n: int, rng: random.Random,
                 fanout: int, budget: int):
        self.pid = pid
        self.n = n
        self.rng = rng
        self.fanout = fanout
        self.engaged = False
        self.parent: Optional[int] = None
        self.deficit = 0          # signals we are owed for messages we sent
        self.pending_work: List[int] = []  # activity budget per activation

    def activate(self, budget: int) -> None:
        self.pending_work.append(budget)

    def work_step(self) -> List[Tuple[int, int]]:
        """Perform one unit of local work: possibly send basic messages.

        Returns (dest, child_budget) pairs.
        """
        if not self.pending_work:
            return []
        budget = self.pending_work.pop()
        sends = []
        if budget > 0:
            for _ in range(self.rng.randrange(self.fanout + 1)):
                dest = self.rng.randrange(self.n)
                if dest != self.pid:
                    sends.append((dest, budget - 1))
        return sends

    @property
    def quiet(self) -> bool:
        """Idle (no pending work) and owed nothing."""
        return not self.pending_work and self.deficit == 0


def run_dijkstra_scholten(
    n: int = 5,
    fanout: int = 2,
    budget: int = 4,
    seed: int = 0,
    max_steps: int = 100_000,
) -> TerminationResult:
    """Run a random diffusing computation under Dijkstra–Scholten detection.

    Message kinds: ("basic", budget) and ("signal",).  Every basic message
    is eventually answered by exactly one signal — immediately if the
    receiver is already engaged, or when the receiver disengages.
    """
    rng = random.Random(seed)
    processes = [
        _DSProcess(pid, n, random.Random(seed * 7919 + pid), fanout, budget)
        for pid in range(n)
    ]
    root = 0
    processes[root].engaged = True
    processes[root].activate(budget)

    in_flight: List[Tuple[int, int, Tuple]] = []  # (src, dest, message)
    basic = 0
    control = 0
    detected = False
    detection_correct = True
    steps = 0

    def send_basic(src: int, dest: int, child_budget: int) -> None:
        nonlocal basic
        in_flight.append((src, dest, ("basic", child_budget)))
        processes[src].deficit += 1
        basic += 1

    def send_signal(src: int, dest: int) -> None:
        nonlocal control
        in_flight.append((src, dest, ("signal",)))
        control += 1

    def maybe_disengage(pid: int) -> None:
        nonlocal detected
        proc = processes[pid]
        if not proc.engaged or not proc.quiet:
            return
        if pid == root:
            detected = True
            return
        proc.engaged = False
        assert proc.parent is not None
        send_signal(pid, proc.parent)
        proc.parent = None

    while steps < max_steps:
        steps += 1
        # Choose: deliver a message or let an active process work.
        workers = [p.pid for p in processes if p.pending_work]
        options: List[Tuple[str, int]] = [("work", w) for w in workers]
        options += [("deliver", i) for i in range(len(in_flight))]
        if not options:
            break
        kind, index = options[rng.randrange(len(options))]
        if kind == "work":
            proc = processes[index]
            for dest, child_budget in proc.work_step():
                send_basic(proc.pid, dest, child_budget)
            maybe_disengage(proc.pid)
            continue
        src, dest, message = in_flight.pop(index)
        proc = processes[dest]
        if message[0] == "basic":
            _tag, child_budget = message
            if proc.engaged:
                send_signal(dest, src)  # already in the tree: ack at once
            else:
                proc.engaged = True
                proc.parent = src
            proc.activate(child_budget)
        else:  # signal
            proc.deficit -= 1
            if proc.deficit < 0:
                raise ModelError("signal accounting went negative")
            maybe_disengage(dest)
        if detected:
            # Verify the claim: nothing is active and nothing is in flight.
            still_active = any(p.pending_work for p in processes)
            still_flying = any(m[2][0] == "basic" for m in in_flight)
            detection_correct = not (still_active or still_flying)
            break

    return TerminationResult(
        n=n,
        basic_messages=basic,
        control_messages=control,
        detected=detected,
        detection_was_correct=detection_correct,
        steps=steps,
    )


def message_bound_series(
    seeds: range = range(10), n: int = 5
) -> List[Tuple[int, int]]:
    """(basic, control) pairs across seeds — control == basic for DS."""
    out = []
    for seed in seeds:
        result = run_dijkstra_scholten(n=n, seed=seed)
        if not (result.detected and result.detection_was_correct):
            raise ModelError(f"detection failed for seed {seed}")
        out.append((result.basic_messages, result.control_messages))
    return out
