"""Decision tasks and the graph characterization of 1-fault solvability.

Moran–Wolfstahl [85] and Biran–Moran–Zaks [20] (§2.2.4): represent a
decision task by two graphs — the *input graph* on its input vectors and
the *decision graph* on its allowed output vectors, with edges between
vectors differing in exactly one coordinate.  Their theorem: a task whose
input graph is connected but whose reachable decision graph is
disconnected cannot be solved in an asynchronous system with one faulty
process (the generalization of FLP; consensus is the special case where
the decision graph is the two isolated points all-0 and all-1).

This module implements the representation and the checker, and bundles
the canonical examples on both sides of the line.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

import networkx as nx

from ..core.errors import ModelError
from ..impossibility.certificate import ImpossibilityCertificate

Vector = Tuple[Hashable, ...]


@dataclass(frozen=True)
class DecisionTask:
    """A task: input vectors and, per input, the allowed output vectors."""

    name: str
    inputs: FrozenSet[Vector]
    allowed: Mapping[Vector, FrozenSet[Vector]]

    def __post_init__(self):
        if not self.inputs:
            raise ModelError("a task needs at least one input vector")
        lengths = {len(v) for v in self.inputs}
        if len(lengths) != 1:
            raise ModelError("all input vectors must have the same arity")
        for vector in self.inputs:
            if vector not in self.allowed or not self.allowed[vector]:
                raise ModelError(
                    f"input {vector} has no allowed outputs — the task is "
                    "unsatisfiable"
                )

    @property
    def arity(self) -> int:
        return len(next(iter(self.inputs)))

    @property
    def outputs(self) -> FrozenSet[Vector]:
        out: Set[Vector] = set()
        for vectors in self.allowed.values():
            out |= set(vectors)
        return frozenset(out)


def _adjacency_graph(vectors: Iterable[Vector]) -> nx.Graph:
    """The graph with an edge between vectors differing in one coordinate."""
    graph = nx.Graph()
    vectors = list(vectors)
    graph.add_nodes_from(vectors)
    for a, b in itertools.combinations(vectors, 2):
        if sum(1 for x, y in zip(a, b) if x != y) == 1:
            graph.add_edge(a, b)
    return graph


def input_graph(task: DecisionTask) -> nx.Graph:
    return _adjacency_graph(task.inputs)


def decision_graph(task: DecisionTask) -> nx.Graph:
    return _adjacency_graph(task.outputs)


@dataclass
class SolvabilityVerdict:
    task_name: str
    input_connected: bool
    decision_connected: bool

    @property
    def provably_unsolvable(self) -> bool:
        """The Moran–Wolfstahl sufficient condition for impossibility."""
        return self.input_connected and not self.decision_connected


def analyze_task(task: DecisionTask) -> SolvabilityVerdict:
    return SolvabilityVerdict(
        task_name=task.name,
        input_connected=nx.is_connected(input_graph(task)),
        decision_connected=nx.is_connected(decision_graph(task)),
    )


def moran_wolfstahl_certificate(task: DecisionTask) -> ImpossibilityCertificate:
    """Certify 1-fault unsolvability via the graph condition.

    Raises :class:`ModelError` when the condition does not apply (the
    theorem is one-directional; a connected decision graph proves
    nothing by itself).
    """
    verdict = analyze_task(task)
    if not verdict.provably_unsolvable:
        raise ModelError(
            f"task {task.name!r} does not meet the condition "
            f"(input connected: {verdict.input_connected}, decision "
            f"connected: {verdict.decision_connected})"
        )
    components = [
        sorted(c) for c in nx.connected_components(decision_graph(task))
    ]
    return ImpossibilityCertificate(
        claim=(
            f"task {task.name!r} is unsolvable in an asynchronous system "
            "with one faulty process: its input graph is connected but its "
            "decision graph is disconnected"
        ),
        scope=(
            f"{len(task.inputs)} input vectors, {len(task.outputs)} output "
            f"vectors, arity {task.arity}"
        ),
        technique="bivalence (graph characterization)",
        details={
            "decision_components": len(components),
            "component_sizes": [len(c) for c in components],
        },
    )


# ---------------------------------------------------------------------------
# Canonical tasks
# ---------------------------------------------------------------------------


def binary_consensus_task(n: int) -> DecisionTask:
    """Consensus: connected inputs, two isolated unanimous outputs."""
    inputs = frozenset(itertools.product((0, 1), repeat=n))
    allowed: Dict[Vector, FrozenSet[Vector]] = {}
    for vector in inputs:
        outs: Set[Vector] = set()
        for v in set(vector):  # validity: decide some present input
            outs.add(tuple([v] * n))
        allowed[vector] = frozenset(outs)
    return DecisionTask("binary-consensus", inputs, allowed)


def leader_task(n: int) -> DecisionTask:
    """Exactly one process outputs 1: every two distinct leader vectors
    differ in two coordinates, so the decision graph is fully
    disconnected — unsolvable with one fault."""
    inputs = frozenset({tuple([0] * n)})
    leaders = frozenset(
        tuple(1 if i == k else 0 for i in range(n)) for k in range(n)
    )
    return DecisionTask("leader-election", inputs, {tuple([0] * n): leaders})


def identity_task(n: int) -> DecisionTask:
    """Output your own input: no coordination at all; the decision graph
    spans everything — the condition (rightly) does not fire."""
    inputs = frozenset(itertools.product((0, 1), repeat=n))
    allowed = {vector: frozenset({vector}) for vector in inputs}
    return DecisionTask("identity", inputs, allowed)


def epsilon_agreement_task(n: int, grid: int = 4) -> DecisionTask:
    """Outputs within one grid step of each other, inside the input range:
    the discrete cousin of approximate agreement.  Its decision graph is
    connected, consistent with the task being solvable (§2.2.2, [36])."""
    inputs = frozenset(itertools.product((0, grid), repeat=n))
    levels = range(grid + 1)
    all_outputs = [
        v for v in itertools.product(levels, repeat=n)
        if max(v) - min(v) <= 1
    ]
    allowed: Dict[Vector, FrozenSet[Vector]] = {}
    for vector in inputs:
        low, high = min(vector), max(vector)
        allowed[vector] = frozenset(
            v for v in all_outputs if all(low <= x <= high for x in v)
        )
    return DecisionTask("epsilon-agreement", inputs, allowed)
