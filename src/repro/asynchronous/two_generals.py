"""The Two Generals problem: no consensus over a lossy channel (§2.2.4).

Gray's result [61], the first asynchronous-flavoured impossibility: two
processes connected by a channel that may lose any suffix of messages
cannot guarantee coordinated attack.  The proof is a chain argument —
start from the all-delivered execution and remove the last delivery; the
non-receiver's view is unchanged, so its decision is unchanged, and
agreement drags the partner along; induction marches the "attack" decision
all the way down to the empty execution, where attacking is forbidden.

Mechanized as a constructive adversary: :func:`two_generals_certificate`
takes an arbitrary deterministic protocol, builds the full delivery chain
``e_0 .. e_K``, validates every indistinguishability link, and returns the
concrete loss pattern on which the protocol breaks one of its
requirements (decide-under-loss, agreement, or the two validity ends).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from ..core.errors import ModelError
from ..impossibility.certificate import CounterexampleCertificate

ATTACK = "attack"
RETREAT = "retreat"

# Received history: tuple of (slot, message) pairs, in slot order.
History = Tuple[Tuple[int, Hashable], ...]


class TwoGeneralsProtocol(ABC):
    """A deterministic protocol for the coordinated attack problem.

    General 0 holds the order (ATTACK or RETREAT); the two alternate
    message slots — general 0 sends in odd slots, general 1 in even slots
    — for ``slots`` total slots.  Every message may be lost; whatever
    happens, both must decide.
    """

    name = "two-generals-protocol"

    @property
    @abstractmethod
    def slots(self) -> int:
        """Total number of alternating message slots."""

    @abstractmethod
    def message(self, pid: int, slot: int, input_value: str,
                received: History) -> Hashable:
        """The message sent in ``slot`` (pid 0 on odd slots, 1 on even)."""

    @abstractmethod
    def decide(self, pid: int, input_value: str, received: History) -> str:
        """ATTACK or RETREAT, from everything the general saw."""


@dataclass
class TwoGeneralsRun:
    """One execution: the first ``delivered`` slots arrive, the rest are lost."""

    delivered: int
    histories: Tuple[History, History]
    decisions: Tuple[str, str]

    @property
    def agreement(self) -> bool:
        return self.decisions[0] == self.decisions[1]


def sender_of(slot: int) -> int:
    """General 0 sends in odd slots, general 1 in even slots."""
    return 0 if slot % 2 == 1 else 1


def run_with_losses(protocol: TwoGeneralsProtocol, order: str,
                    delivered: int) -> TwoGeneralsRun:
    """Execute with exactly the first ``delivered`` slots arriving."""
    inputs = {0: order, 1: RETREAT}  # general 1 has no independent order
    received: Dict[int, List[Tuple[int, Hashable]]] = {0: [], 1: []}
    for slot in range(1, protocol.slots + 1):
        src = sender_of(slot)
        dst = 1 - src
        msg = protocol.message(src, slot, inputs[src], tuple(received[src]))
        if slot <= delivered and msg is not None:
            received[dst].append((slot, msg))
    histories = (tuple(received[0]), tuple(received[1]))
    decisions = (
        protocol.decide(0, inputs[0], histories[0]),
        protocol.decide(1, inputs[1], histories[1]),
    )
    return TwoGeneralsRun(delivered, histories, decisions)


def delivery_chain(protocol: TwoGeneralsProtocol, order: str
                   ) -> List[TwoGeneralsRun]:
    """The chain e_K, e_{K-1}, ..., e_0 (descending delivered counts)."""
    return [
        run_with_losses(protocol, order, k)
        for k in range(protocol.slots, -1, -1)
    ]


def validate_chain_links(chain: Sequence[TwoGeneralsRun]) -> None:
    """Re-check the argument's engine: dropping slot k leaves the slot-k
    *sender* (the non-receiver) with an identical history."""
    for left, right in zip(chain, chain[1:]):
        dropped_slot = left.delivered  # right.delivered == left.delivered - 1
        keeper = sender_of(dropped_slot)
        if left.histories[keeper] != right.histories[keeper]:
            raise ModelError(
                f"chain link broken at slot {dropped_slot}: general "
                f"{keeper} distinguishes the two runs"
            )


def two_generals_certificate(
    protocol: TwoGeneralsProtocol,
) -> CounterexampleCertificate:
    """Defeat any deterministic coordinated-attack protocol.

    Requirements checked, in the order the chain argument uses them:

    1. e_K (everything delivered, order=ATTACK): both attack;
    2. every e_k: agreement;
    3. e_0 (nothing delivered): both retreat (general 1 knows nothing).

    Returns the certificate naming the first requirement that fails, with
    the concrete loss count as evidence.  Raises if none fails — which the
    chain argument proves cannot happen.
    """
    chain = delivery_chain(protocol, ATTACK)
    validate_chain_links(chain)

    full = chain[0]
    if full.decisions != (ATTACK, ATTACK):
        return CounterexampleCertificate(
            claim=(
                f"{protocol.name}: with every message delivered and the "
                f"order ATTACK, the generals decide {full.decisions} — "
                "the protocol never coordinates the attack at all"
            ),
            technique="chain (message removal)",
            evidence=full,
            details={"delivered": full.delivered},
        )
    for run in chain:
        if not run.agreement:
            return CounterexampleCertificate(
                claim=(
                    f"{protocol.name}: losing all but the first "
                    f"{run.delivered} messages makes the generals decide "
                    f"{run.decisions} — uncoordinated attack"
                ),
                technique="chain (message removal)",
                evidence=run,
                details={"delivered": run.delivered},
            )
    empty = chain[-1]
    if empty.decisions != (RETREAT, RETREAT):
        return CounterexampleCertificate(
            claim=(
                f"{protocol.name}: with no messages delivered the generals "
                f"decide {empty.decisions} — attacking on no information"
            ),
            technique="chain (message removal)",
            evidence=empty,
            details={"delivered": 0},
        )
    raise ModelError(
        f"{protocol.name} satisfied every requirement along the chain — "
        "impossible by the Two Generals theorem; check the harness"
    )


# ---------------------------------------------------------------------------
# Candidate protocols for the adversary to defeat
# ---------------------------------------------------------------------------


class HandshakeProtocol(TwoGeneralsProtocol):
    """The k-way handshake: attack once you have seen depth-k confirmation.

    General 0 sends the order; each side acknowledges; a side attacks when
    it has received at least ``confirmations`` messages.  Every choice of
    k fails somewhere — the certificate pinpoints the loss count.
    """

    def __init__(self, rounds: int = 2, confirmations: int = 1):
        self.rounds = rounds
        self.confirmations = confirmations
        self.name = f"handshake-{rounds}-need-{confirmations}"

    @property
    def slots(self) -> int:
        return self.rounds

    def message(self, pid, slot, input_value, received):
        if pid == 0:
            if input_value != ATTACK:
                return None
            return ("order", ATTACK) if slot == 1 else ("ack", len(received))
        if not received:
            return None  # nothing to acknowledge yet
        return ("ack", len(received))

    def decide(self, pid, input_value, received):
        if pid == 0:
            if input_value != ATTACK:
                return RETREAT
            if self.confirmations == 0:
                return ATTACK
            return ATTACK if len(received) >= self.confirmations else RETREAT
        return ATTACK if len(received) >= self.confirmations else RETREAT


class TimidProtocol(TwoGeneralsProtocol):
    """Never attacks: trivially coordinated, trivially useless — fails the
    'full delivery means attack' requirement."""

    name = "timid"

    @property
    def slots(self) -> int:
        return 2

    def message(self, pid, slot, input_value, received):
        return ("note", slot)

    def decide(self, pid, input_value, received):
        return RETREAT


class RecklessProtocol(TwoGeneralsProtocol):
    """General 1 attacks no matter what — fails the empty-run requirement."""

    name = "reckless"

    @property
    def slots(self) -> int:
        return 2

    def message(self, pid, slot, input_value, received):
        return ("order", input_value) if pid == 0 else ("ack", 1)

    def decide(self, pid, input_value, received):
        if pid == 0:
            return ATTACK if input_value == ATTACK else RETREAT
        return ATTACK
