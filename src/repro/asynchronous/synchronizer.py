"""Network synchronizers and Awerbuch's communication/time tradeoff (§2.2.6).

A synchronizer adapts synchronous algorithms to reliable asynchronous
networks.  Awerbuch [16] proved the tradeoff the survey cites: per
simulated pulse, the alpha synchronizer pays O(|E|) messages for O(1)
time, the beta synchronizer O(n) messages for O(tree depth) time — and no
synchronizer beats both at once.

This module runs both synchronizers in a discrete-event simulation with
unit hop delay over an arbitrary networkx graph, counting overhead
messages and elapsed time per pulse, so the E9 bench can plot the
tradeoff's two corners.

Mechanics (classic):

* every node, on entering pulse p, sends its payload to all neighbours,
  which acknowledge; a node is *safe* when all its payloads are acked;
* **alpha**: a safe node tells its neighbours; a node enters pulse p+1
  when it and all neighbours are safe (messages ~ 3*2|E| per pulse, time
  ~ 3);
* **beta**: safety reports convergecast up a BFS spanning tree to the
  root, which broadcasts the next-pulse signal down (extra messages
  ~ 2(n-1) per pulse, time ~ 2*depth + 3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx


@dataclass
class SynchronizerOutcome:
    name: str
    n: int
    edges: int
    pulses: int
    total_time: float
    payload_messages: int
    overhead_messages: int

    @property
    def overhead_per_pulse(self) -> float:
        return self.overhead_messages / self.pulses

    @property
    def time_per_pulse(self) -> float:
        return self.total_time / self.pulses


class _EventSim:
    """A tiny discrete-event kernel with unit hop delay."""

    def __init__(self):
        self.heap: List[Tuple[float, int, int, Tuple]] = []
        self.seq = 0
        self.now = 0.0

    def send(self, dest: int, msg: Tuple, delay: float = 1.0) -> None:
        self.seq += 1
        heapq.heappush(self.heap, (self.now + delay, self.seq, dest, msg))

    def pop(self) -> Optional[Tuple[int, Tuple]]:
        if not self.heap:
            return None
        time, _seq, dest, msg = heapq.heappop(self.heap)
        self.now = max(self.now, time)
        return dest, msg


def run_alpha_synchronizer(graph: nx.Graph, pulses: int) -> SynchronizerOutcome:
    """Simulate ``pulses`` pulses of a broadcast payload under alpha."""
    nodes = list(graph.nodes)
    neighbors = {v: sorted(graph.neighbors(v)) for v in nodes}
    sim = _EventSim()
    payload = 0
    overhead = 0

    pulse = {v: 0 for v in nodes}
    acks_pending = {v: 0 for v in nodes}
    safe_neighbors: Dict[int, Set[int]] = {v: set() for v in nodes}
    self_safe = {v: False for v in nodes}

    def enter_pulse(v: int) -> None:
        nonlocal payload
        acks_pending[v] = len(neighbors[v])
        safe_neighbors[v] = set()
        self_safe[v] = False
        for u in neighbors[v]:
            sim.send(u, ("payload", v, pulse[v]))

    def maybe_advance(v: int) -> None:
        if (
            self_safe[v]
            and len(safe_neighbors[v]) == len(neighbors[v])
            and pulse[v] + 1 < pulses
        ):
            pulse[v] += 1
            enter_pulse(v)

    for v in nodes:
        enter_pulse(v)

    while True:
        item = sim.pop()
        if item is None:
            break
        v, msg = item
        kind = msg[0]
        if kind == "payload":
            payload += 1
            _tag, src, _p = msg
            sim.send(src, ("ack", v))
        elif kind == "ack":
            overhead += 1
            acks_pending[v] -= 1
            if acks_pending[v] == 0:
                self_safe[v] = True
                for u in neighbors[v]:
                    sim.send(u, ("safe", v))
                maybe_advance(v)
        elif kind == "safe":
            overhead += 1
            safe_neighbors[v].add(msg[1])
            maybe_advance(v)

    return SynchronizerOutcome(
        name="alpha",
        n=len(nodes),
        edges=graph.number_of_edges(),
        pulses=pulses,
        total_time=sim.now,
        payload_messages=payload,
        overhead_messages=overhead,
    )


def run_beta_synchronizer(
    graph: nx.Graph, pulses: int, root: int = 0
) -> SynchronizerOutcome:
    """Simulate ``pulses`` pulses under beta (BFS spanning tree)."""
    nodes = list(graph.nodes)
    neighbors = {v: sorted(graph.neighbors(v)) for v in nodes}
    tree = nx.bfs_tree(graph, root)
    children = {v: sorted(tree.successors(v)) for v in nodes}
    parent = {
        v: next(iter(tree.predecessors(v)), None) for v in nodes
    }
    sim = _EventSim()
    payload = 0
    overhead = 0

    pulse = {v: 0 for v in nodes}
    acks_pending = {v: 0 for v in nodes}
    subtree_safe: Dict[int, Set[int]] = {v: set() for v in nodes}
    self_safe = {v: False for v in nodes}

    def enter_pulse(v: int) -> None:
        acks_pending[v] = len(neighbors[v])
        subtree_safe[v] = set()
        self_safe[v] = False
        for u in neighbors[v]:
            sim.send(u, ("payload", v, pulse[v]))

    def maybe_report(v: int) -> None:
        if self_safe[v] and len(subtree_safe[v]) == len(children[v]):
            if parent[v] is not None:
                sim.send(parent[v], ("subtree-safe", v))
            else:
                # Root: whole network safe; broadcast the next pulse.
                if pulse[v] + 1 < pulses:
                    advance(v)

    def advance(v: int) -> None:
        pulse[v] += 1
        for c in children[v]:
            sim.send(c, ("next-pulse", pulse[v]))
        enter_pulse(v)

    for v in nodes:
        enter_pulse(v)

    while True:
        item = sim.pop()
        if item is None:
            break
        v, msg = item
        kind = msg[0]
        if kind == "payload":
            payload += 1
            sim.send(msg[1], ("ack", v))
        elif kind == "ack":
            overhead += 1
            acks_pending[v] -= 1
            if acks_pending[v] == 0:
                self_safe[v] = True
                maybe_report(v)
        elif kind == "subtree-safe":
            overhead += 1
            subtree_safe[v].add(msg[1])
            maybe_report(v)
        elif kind == "next-pulse":
            overhead += 1
            new_pulse = msg[1]
            pulse[v] = new_pulse
            for c in children[v]:
                sim.send(c, ("next-pulse", new_pulse))
            enter_pulse(v)

    return SynchronizerOutcome(
        name="beta",
        n=len(nodes),
        edges=graph.number_of_edges(),
        pulses=pulses,
        total_time=sim.now,
        payload_messages=payload,
        overhead_messages=overhead,
    )


def tradeoff_comparison(graph: nx.Graph, pulses: int = 5
                        ) -> Dict[str, SynchronizerOutcome]:
    """Run both synchronizers on the same graph; the Awerbuch corners."""
    return {
        "alpha": run_alpha_synchronizer(graph, pulses),
        "beta": run_beta_synchronizer(graph, pulses),
    }
