"""Quorum leases under partition adversaries, with explicit degraded modes.

The CAP negotiation, mechanized.  A cluster of ``n`` nodes elects a
leaseholder by quorum promise: a node with no valid lease in sight
requests one, every acceptor that hears it acks the lowest-pid requester
*iff* its standing promise allows, and a requester collecting a strict
majority of acks holds the lease until expiry.  Because promises persist
until the lease they backed expires and any two quorums intersect, **no
two leases from different holders ever overlap** — under every split,
asymmetric-cut and crash schedule the
:class:`~repro.circumvention.partitions.PartitionAdversary` can throw
(:class:`~repro.chaos.monitors.LeaseSafetyMonitor` checks exactly this).

Impossibility is negotiated, not defeated: what a partition takes away
is *availability*, surfaced as three explicit degraded modes instead of
silent wrongness —

* a leaseholder cut off from a majority drops to **read-only**: it
  declares ``("degraded", "read-only")`` and rejects writes with a
  structured ``("write-reject", "no-quorum")``;
* nodes that are not the leaseholder (minority partitions included)
  reject writes with ``("write-reject", "not-leader")``;
* reads are **bounded-staleness**: a replica serves a read only while
  its last-seen commit is at most ``staleness_bound`` steps old, and
  rejects with ``("read-reject", "stale")`` otherwise.

The planted bug (``buggy_no_quorum=True``) grants a lease on *any* ack
— a node isolated by one split (or one asymmetric cut) self-acks its
way to a second concurrent lease, and writes without re-checking quorum.
One partition atom suffices, which is what ddmin shrinks the fuzzer's
findings down to.

Deterministic (no RNG: delivery is same-step, masked by the partition),
replayable, and budget-threaded: ``budget=`` overdrafts return a
resumable partial :class:`LeaseRun`, ``meter=`` propagates the raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.budget import Budget, BudgetExceeded, BudgetMeter
from ..core.runtime import DECLARE, OUTPUT, SEND, Trace, TraceEvent
from .partitions import PartitionAdversary, Schedule

SUBSTRATE = "quorum-lease"

LEASE = "lease"
DEGRADED = "degraded"
WRITE_ACK = "write-ack"
WRITE_REJECT = "write-reject"
READ = "read"
READ_REJECT = "read-reject"


@dataclass
class LeaseRun:
    """One quorum-lease run (possibly partial)."""

    trace: Trace
    complete: bool
    leases: Tuple[Tuple[int, int, int], ...]
    commits: int
    resume: Optional["_LeaseSim"] = field(default=None, repr=False)
    interrupted: Optional[BudgetExceeded] = None


class _LeaseSim:
    """Mutable state: promises, known leases, replica versions, the log."""

    def __init__(
        self,
        atoms: Schedule,
        seed: Optional[int],
        n: int,
        horizon: int,
        lease_len: int,
        renew_margin: int,
        staleness_bound: int,
        write_every: int,
        read_every: int,
        buggy_no_quorum: bool,
    ):
        self.partition = PartitionAdversary(atoms, n)
        self.seed = seed
        self.n = n
        self.horizon = horizon
        self.lease_len = lease_len
        self.renew_margin = renew_margin
        self.staleness_bound = staleness_bound
        self.write_every = write_every
        self.read_every = read_every
        self.buggy_no_quorum = buggy_no_quorum
        self.quorum = n // 2 + 1
        self.t = 0
        #: acceptor promise: pid -> (holder, expiry) or None
        self.promise: List[Optional[Tuple[int, int]]] = [None] * n
        #: last lease each node knows: (holder, start, expiry) or None
        self.known: List[Optional[Tuple[int, int, int]]] = [None] * n
        self.version = [0] * n
        self.last_commit = [0] * n
        self.degraded = [False] * n
        self.leases: List[Tuple[int, int, int]] = []
        self.commits = 0
        self.events: List[TraceEvent] = []
        self._step_no = 0

    def _emit(self, actor, kind, payload):
        self.events.append(
            TraceEvent(self._step_no, actor, kind, payload, None, self.t)
        )
        self._step_no += 1

    # -- helpers -----------------------------------------------------------

    def _holds_lease(self, p: int) -> bool:
        lease = self.known[p]
        return (
            lease is not None and lease[0] == p and self.t < lease[2]
        )

    def _wants_lease(self, p: int) -> bool:
        lease = self.known[p]
        if lease is None or self.t >= lease[2]:
            return True  # no valid lease in sight: run for it
        # The holder renews inside the margin; everyone else waits.
        return lease[0] == p and self.t >= lease[2] - self.renew_margin

    # -- one step ----------------------------------------------------------

    def step(self) -> None:
        t = self.t
        part = self.partition
        live = [p for p in range(self.n) if not part.crashed(t, p)]

        # 1. Lease requests and quorum promises (same-step RPC, masked
        #    by the partition in both directions).
        requesters = [p for p in live if self._wants_lease(p)]
        for p in requesters:
            self._emit(p, SEND, ("lease-request",))
        acks: Dict[int, int] = {p: 0 for p in requesters}
        for q in live:
            heard = [p for p in requesters if not part.blocked(t, p, q)]
            if not heard:
                continue
            grantee = min(heard)
            promise = self.promise[q]
            if (
                promise is not None
                and t < promise[1]
                and promise[0] != grantee
            ):
                continue  # a live promise bars conflicting acks
            self.promise[q] = (grantee, t + self.lease_len)
            if not part.blocked(t, q, grantee):
                acks[grantee] += 1
        needed = 1 if self.buggy_no_quorum else self.quorum
        for p in requesters:
            if acks[p] < needed:
                continue
            lease = (p, t, t + self.lease_len)
            self.leases.append(lease)
            self.known[p] = lease
            self._emit(p, DECLARE, (LEASE,) + lease)
            for q in live:
                if q != p and not part.blocked(t, p, q):
                    current = self.known[q]
                    if current is None or lease[2] > current[2]:
                        self.known[q] = lease

        # 2. Client writes: every node fields one attempt per write tick.
        if t % self.write_every == 0:
            for p in live:
                if not self._holds_lease(p):
                    self._emit(p, OUTPUT, (WRITE_REJECT, "not-leader"))
                    continue
                if not self.buggy_no_quorum and not part.majority_connected(
                    t, p
                ):
                    # Leader without a quorum: explicit read-only mode.
                    if not self.degraded[p]:
                        self.degraded[p] = True
                        self._emit(p, DECLARE, (DEGRADED, "read-only"))
                    self._emit(p, OUTPUT, (WRITE_REJECT, "no-quorum"))
                    continue
                if self.degraded[p]:
                    self.degraded[p] = False
                    self._emit(p, DECLARE, (DEGRADED, "restored"))
                value = self.version[p] + 1
                self.commits += 1
                for q in live:
                    if not part.blocked(t, p, q):
                        self.version[q] = max(self.version[q], value)
                        self.last_commit[q] = t
                self._emit(p, OUTPUT, (WRITE_ACK, value))

        # 3. Bounded-staleness reads.
        if t % self.read_every == 0:
            for p in live:
                staleness = t - self.last_commit[p]
                if staleness <= self.staleness_bound:
                    self._emit(p, OUTPUT, (READ, self.version[p], staleness))
                else:
                    self._emit(p, OUTPUT, (READ_REJECT, "stale"))

        self.t = t + 1

    def outcome(self) -> Dict:
        return {
            "leases": tuple(self.leases),
            "commits": self.commits,
            "versions": tuple(self.version),
            "complete": self.t >= self.horizon,
        }


def run_quorum_lease(
    atoms: Schedule,
    seed: Optional[int] = None,
    *,
    n: int = 4,
    horizon: int = 48,
    lease_len: int = 8,
    renew_margin: int = 2,
    staleness_bound: int = 8,
    write_every: int = 3,
    read_every: int = 5,
    buggy_no_quorum: bool = False,
    meter: Optional[BudgetMeter] = None,
    budget: Optional[Budget] = None,
    resume: Optional[LeaseRun] = None,
) -> LeaseRun:
    """Run (or resume) one quorum-lease simulation.

    ``meter`` (an external account) raises on overdraft; ``budget``
    opens this run's own account and returns a resumable partial run
    instead.
    """
    if resume is not None:
        if resume.resume is None:
            raise ValueError("run is not resumable (it completed)")
        sim = resume.resume
    else:
        sim = _LeaseSim(
            tuple(atoms), seed, n, horizon, lease_len, renew_margin,
            staleness_bound, write_every, read_every, buggy_no_quorum,
        )
    own = budget.meter("quorum-lease") if budget is not None else None
    interrupted: Optional[BudgetExceeded] = None
    while sim.t < sim.horizon:
        if meter is not None:
            meter.charge_steps(sim.n)
        if own is not None:
            try:
                own.charge_steps(sim.n)
            except BudgetExceeded as exc:
                interrupted = exc
                break
        sim.step()
    complete = sim.t >= sim.horizon

    def replayer() -> Trace:
        return run_quorum_lease(
            sim.partition.atoms,
            sim.seed,
            n=sim.n,
            horizon=sim.horizon,
            lease_len=sim.lease_len,
            renew_margin=sim.renew_margin,
            staleness_bound=sim.staleness_bound,
            write_every=sim.write_every,
            read_every=sim.read_every,
            buggy_no_quorum=sim.buggy_no_quorum,
        ).trace

    trace = Trace(
        substrate=SUBSTRATE,
        protocol="quorum-lease-bug" if sim.buggy_no_quorum else "quorum-lease",
        seed=sim.seed,
        events=tuple(sim.events),
        outcome=tuple(
            sorted((str(k), v) for k, v in sim.outcome().items())
        ),
        replayer=replayer if complete else None,
    )
    return LeaseRun(
        trace=trace,
        complete=complete,
        leases=tuple(sim.leases),
        commits=sim.commits,
        resume=None if complete else sim,
        interrupted=interrupted,
    )
