"""Circumvention layer: how real systems negotiate around impossibility.

The survey frames each impossibility proof as an invariant real systems
must *negotiate around*, not a dead end.  This package mechanizes the
canonical negotiations on the repository's simulation substrates:

* :mod:`repro.circumvention.partitions` — the
  :class:`~repro.circumvention.partitions.PartitionAdversary`: seeded
  split / heal / asymmetric-link / crash schedules, the fault model
  CAP-style scenarios run under;
* :mod:`repro.circumvention.detectors` — a heartbeat-driven failure
  detector runtime (timeout/backoff-adaptive eventually-perfect
  suspicion lists and an Omega leader oracle), the Chandra–Toueg escape
  hatch from FLP;
* :mod:`repro.circumvention.consensus` — rotating-coordinator consensus
  that terminates under an eventually-accurate suspicion schedule and
  provably *stalls* (budget-exceeded, never unsafe) under an adversarial
  one — the FLP circumvention receipt, both sides;
* :mod:`repro.circumvention.leases` — a quorum lease protocol with
  explicit degraded modes: a leader without a quorum drops to
  read-only, minority partitions reject writes with structured errors,
  and reads stay within a declared staleness bound;
* :mod:`repro.circumvention.randomized` — Ben-Or's randomized consensus
  under delivery-script / crash atoms, with the expected-round analysis
  harness (streaming confidence intervals, sharded bit-identically) —
  the coin-flip escape hatch from FLP;
* :mod:`repro.circumvention.gst` — partial synchrony as first-class
  adversary atoms (``("gst", g)`` stabilization, per-round link delays)
  and DLS rotating-coordinator consensus that provably stalls before
  GST (structured budget receipt) and decides after it.

Every run is a deterministic function of ``(atoms, seed)`` through the
unified runtime (:mod:`repro.core.runtime`), replayable byte-identically,
and budget-threaded (:mod:`repro.core.budget`) with resumable partial
state.  The chaos roster (:mod:`repro.chaos.circumvention_targets`)
fuzzes both the honest protocols and planted-bug variants.
"""

from .consensus import ConsensusRun, run_rotating_consensus
from .detectors import DetectorRun, run_heartbeat_detector
from .gst import (
    GSTAdversary,
    GSTRun,
    blackout_atoms,
    run_gst_consensus,
    simplify_gst_atom,
)
from .leases import LeaseRun, run_quorum_lease
from .partitions import PartitionAdversary
from .randomized import (
    BenOrAdversary,
    BenOrRun,
    RoundSweep,
    expected_rounds,
    run_ben_or_traced,
)

__all__ = [
    "BenOrAdversary",
    "BenOrRun",
    "ConsensusRun",
    "DetectorRun",
    "GSTAdversary",
    "GSTRun",
    "LeaseRun",
    "PartitionAdversary",
    "RoundSweep",
    "blackout_atoms",
    "expected_rounds",
    "run_ben_or_traced",
    "run_gst_consensus",
    "run_heartbeat_detector",
    "run_quorum_lease",
    "run_rotating_consensus",
    "simplify_gst_atom",
]
