"""Heartbeat failure detectors: eventually-perfect suspicion and Omega.

Chandra–Toueg's answer to FLP: consensus is unsolvable in a pure
asynchronous system, but add an *unreliable failure detector* — local
suspicion lists that may be wrong for a while, as long as they are
eventually accurate — and rotating-coordinator consensus terminates.
This module is the runtime half of that circumvention: a discrete-time
heartbeat simulator over a :class:`~repro.circumvention.partitions.
PartitionAdversary`, producing for each process

* a **suspicion list** (the eventually-perfect / eventually-weak
  detector output): peer ``q`` is suspected once nothing has been heard
  from it for longer than the current per-link timeout;
* an **Omega leader**: the minimum pid the process does not suspect —
  the leader oracle rotating-coordinator consensus and leader leases
  consume.

Two properties the hypothesis suite checks on every seed:

* **completeness** — a crashed process stops heartbeating, so every
  live process eventually suspects it permanently;
* **eventual accuracy** — with ``adaptive=True`` a false suspicion
  doubles the offended link's timeout on recovery, so once the
  partition schedule goes quiet, suspicions of live peers die out and
  every live process settles on the same live leader.

The planted-bug configuration (``adaptive=False`` with a timeout below
the heartbeat interval) never stabilizes: every heartbeat arrival
re-trusts a peer the gap just re-suspected, the leader flaps forever,
and :class:`~repro.chaos.monitors.LeaderStabilityMonitor` fires on the
*empty* schedule — the detector itself is the counterexample.

Runs are deterministic functions of ``(atoms, seed)`` (the seed drives
per-heartbeat delivery jitter), replayable byte-identically, and
budget-threaded: ``budget=`` overdrafts return a resumable partial
:class:`DetectorRun` in the PR-3 convention, ``meter=`` (the campaign's
account) propagates :class:`~repro.core.budget.BudgetExceeded`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.budget import Budget, BudgetExceeded, BudgetMeter
from ..core.runtime import DECLARE, SEND, Trace, TraceEvent
from .partitions import PartitionAdversary, Schedule

SUBSTRATE = "failure-detector"

#: Declaration payload tags (each rides in a DECLARE event's payload).
SUSPECT = "suspect"
TRUST = "trust"
LEADER = "leader"


@dataclass
class DetectorRun:
    """One heartbeat-detector run (possibly partial).

    ``complete`` is False when a ``budget=`` overdraft interrupted the
    simulation; ``resume`` then carries the live simulator state — pass
    it back via ``resume=`` to continue, and the finished run's trace is
    byte-identical to an uninterrupted one.
    """

    trace: Trace
    complete: bool
    suspects: Dict[int, Tuple[int, ...]]
    leaders: Dict[int, int]
    leader_changes: int
    last_change: int
    resume: Optional["_DetectorSim"] = field(default=None, repr=False)
    interrupted: Optional[BudgetExceeded] = None


class _DetectorSim:
    """The mutable simulator: all state needed to take one more step."""

    def __init__(
        self,
        atoms: Schedule,
        seed: Optional[int],
        n: int,
        horizon: int,
        heartbeat_every: int,
        initial_timeout: int,
        adaptive: bool,
        jitter: int,
    ):
        self.partition = PartitionAdversary(atoms, n)
        self.seed = seed
        self.n = n
        self.horizon = horizon
        self.heartbeat_every = heartbeat_every
        self.initial_timeout = initial_timeout
        self.adaptive = adaptive
        self.jitter = jitter
        self.rng = random.Random(seed)
        self.t = 0
        self.last_heard = [[0] * n for _ in range(n)]
        self.timeout = [[initial_timeout] * n for _ in range(n)]
        self.suspects: List[set] = [set() for _ in range(n)]
        self.leader: List[Optional[int]] = [None] * n
        self.leader_changes = 0
        self.last_change = 0
        #: in-flight heartbeats: (arrival step, src, dst), kept sorted
        self.inflight: List[Tuple[int, int, int]] = []
        self.events: List[TraceEvent] = []
        self._step_no = 0

    def _emit(self, actor, kind, payload):
        self.events.append(
            TraceEvent(self._step_no, actor, kind, payload, None, self.t)
        )
        self._step_no += 1

    def _note_change(self):
        self.last_change = self.t

    def step(self) -> None:
        t = self.t
        part = self.partition
        # 1. deliveries due this step, in (arrival, src, dst) order
        due = [m for m in self.inflight if m[0] == t]
        if due:
            self.inflight = [m for m in self.inflight if m[0] != t]
        for _, src, dst in sorted(due):
            if part.crashed(t, dst):
                continue
            self.last_heard[dst][src] = t
            if src in self.suspects[dst]:
                self.suspects[dst].discard(src)
                if self.adaptive:
                    self.timeout[dst][src] *= 2
                self._emit(dst, DECLARE, (TRUST, src))
                self._note_change()
        # 2. heartbeat broadcast
        if t % self.heartbeat_every == 0:
            for p in range(self.n):
                if part.crashed(t, p):
                    continue
                self._emit(p, SEND, ("hb", t))
                for q in range(self.n):
                    if q == p or part.blocked(t, p, q):
                        continue
                    delay = 1 + (
                        self.rng.randrange(self.jitter + 1)
                        if self.jitter > 0
                        else 0
                    )
                    self.inflight.append((t + delay, p, q))
        # 3. timeout-driven suspicion, then leader recomputation
        for p in range(self.n):
            if part.crashed(t, p):
                continue
            for q in range(self.n):
                if q == p or q in self.suspects[p]:
                    continue
                if t - self.last_heard[p][q] > self.timeout[p][q]:
                    self.suspects[p].add(q)
                    self._emit(p, DECLARE, (SUSPECT, q))
                    self._note_change()
            trusted = [
                q for q in range(self.n) if q not in self.suspects[p]
            ]
            new_leader = min(trusted) if trusted else p
            if new_leader != self.leader[p]:
                self.leader[p] = new_leader
                self._emit(p, DECLARE, (LEADER, new_leader))
                if t > 0:
                    self.leader_changes += 1
                self._note_change()
        self.t = t + 1

    def outcome(self) -> Dict:
        live = [
            p for p in range(self.n) if not self.partition.crashed(self.t, p)
        ]
        return {
            "leaders": tuple((p, self.leader[p]) for p in live),
            "suspects": tuple(
                (p, tuple(sorted(self.suspects[p]))) for p in live
            ),
            "leader_changes": self.leader_changes,
            "last_change": self.last_change,
            "crashed": tuple(sorted(self.partition.ever_crashed())),
            "complete": self.t >= self.horizon,
        }


def run_heartbeat_detector(
    atoms: Schedule,
    seed: Optional[int] = None,
    *,
    n: int = 4,
    horizon: int = 40,
    heartbeat_every: int = 3,
    initial_timeout: int = 4,
    adaptive: bool = True,
    jitter: int = 1,
    meter: Optional[BudgetMeter] = None,
    budget: Optional[Budget] = None,
    resume: Optional[DetectorRun] = None,
) -> DetectorRun:
    """Run (or resume) one heartbeat-detector simulation.

    ``meter`` is an externally owned account (a chaos campaign's per-run
    meter): its overdraft *raises*.  ``budget`` opens this run's own
    account: its overdraft returns a partial, resumable run instead.
    """
    if resume is not None:
        if resume.resume is None:
            raise ValueError("run is not resumable (it completed)")
        sim = resume.resume
    else:
        sim = _DetectorSim(
            tuple(atoms), seed, n, horizon, heartbeat_every,
            initial_timeout, adaptive, jitter,
        )
    own = budget.meter("heartbeat-detector") if budget is not None else None
    interrupted: Optional[BudgetExceeded] = None
    while sim.t < sim.horizon:
        if meter is not None:
            meter.charge_steps(sim.n)
        if own is not None:
            try:
                own.charge_steps(sim.n)
            except BudgetExceeded as exc:
                interrupted = exc
                break
        sim.step()
    complete = sim.t >= sim.horizon

    def replayer() -> Trace:
        return run_heartbeat_detector(
            sim.partition.atoms,
            sim.seed,
            n=sim.n,
            horizon=sim.horizon,
            heartbeat_every=sim.heartbeat_every,
            initial_timeout=sim.initial_timeout,
            adaptive=sim.adaptive,
            jitter=sim.jitter,
        ).trace

    trace = Trace(
        substrate=SUBSTRATE,
        protocol="heartbeat-detector",
        seed=sim.seed,
        events=tuple(sim.events),
        outcome=tuple(
            sorted((str(k), v) for k, v in sim.outcome().items())
        ),
        replayer=replayer if complete else None,
    )
    return DetectorRun(
        trace=trace,
        complete=complete,
        suspects={
            p: tuple(sorted(sim.suspects[p])) for p in range(sim.n)
        },
        leaders={
            p: sim.leader[p]
            for p in range(sim.n)
            if sim.leader[p] is not None
        },
        leader_changes=sim.leader_changes,
        last_change=sim.last_change,
        resume=None if complete else sim,
        interrupted=interrupted,
    )
