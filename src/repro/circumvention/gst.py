"""Partial synchrony as adversary atoms: GST schedules, DLS consensus.

The survey's second escape hatch from FLP (§2.2.3, Dwork–Lynch–
Stockmeyer): the network may be arbitrarily asynchronous for an unknown
but finite prefix, after which a Global Stabilization Time (GST) makes
every message arrive on time.  Consensus is impossible before GST and
guaranteed after — and this module makes *both* halves mechanical by
promoting the synchrony assumption itself into first-class chaos atoms:

* ``("gst", g)`` — from round ``g`` onward the network is synchronous:
  every message on every link arrives within its round, whatever the
  scripted delays say.  Several atoms: the earliest wins (stabilization
  cannot be retracted).  A schedule with *no* gst atom never stabilizes
  (``default_gst`` can override).
* ``("delay", r, (src, dst), d)`` — the round-``r`` message on the
  directed link src->dst is delayed ``d >= 1`` rounds.  In a
  round-synchronized protocol a message that misses its round is lost to
  that round, so any ``d >= 1`` is a per-round drop; the shrinker's
  :func:`simplify_gst_atom` still reduces ``d`` toward 1 so 1-minimal
  schedules name the mildest sufficient delay.
* ``("down", r, pid)`` — ``pid`` crashes at round ``r`` (the partition
  adversary's atom, honoured here for at most ``t`` distinct pids).

ddmin deletion has clean one-sided semantics for delays and crashes
(removing one strictly heals the run); deleting a ``gst`` atom makes the
run *harsher* (stabilization never comes), which is harmless because
only safety violations shrink and safety never depends on synchrony.

The protocol is a DLS-style round-synchronized rotating coordinator with
locks: each round the live processes report ``(value, lock)`` to the
coordinator ``r mod n``; on ``n - t`` reports it proposes the value with
the highest lock round; reporters that hear the proposal lock it and
ack; on ``n - t`` acks the coordinator decides and broadcasts the
decision.  Quorums of size ``n - t`` intersect (``2t < n``), so a
decided value owns every later proposal — agreement and validity hold
under *every* delay schedule.  Liveness is exactly GST: under a pre-GST
blackout with a step budget below ``n * gst`` the run provably stalls,
exiting via a structured :class:`~repro.core.budget.BudgetExceeded`
receipt with nothing decided and nothing unsafe; give it budget past GST
and the first stabilized round with a live coordinator decides.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.budget import Budget, BudgetExceeded, BudgetMeter
from ..core.errors import ModelError
from ..core.runtime import (
    CRASH,
    DECIDE,
    DECLARE,
    DROP,
    SEND,
    Trace,
    TraceEvent,
)
from .partitions import Atom, Schedule

SUBSTRATE = "gst-consensus"

GST_ATOM = "gst"
DELAY_ATOM = "delay"
DOWN_ATOM = "down"


class GSTAdversary:
    """Compiled form of a partial-synchrony schedule.

    O(1) per-message delivery queries; immutable across queries, so the
    simulator and any post-hoc monitor re-deciding deliveries from the
    trace can never disagree about what the network did.
    """

    def __init__(
        self,
        atoms: Iterable[Atom],
        n: int,
        t: int = 0,
        default_gst: Optional[int] = None,
    ):
        self.n = n
        self.atoms: Schedule = tuple(atoms)
        self.gst: Optional[int] = default_gst
        # (round, src, dst) -> scripted delay (rounds)
        self._delays: Dict[Tuple[int, int, int], int] = {}
        self.crashed_at: Dict[int, int] = {}
        for atom in self.atoms:
            tag = atom[0]
            if tag == GST_ATOM:
                _, g = atom
                self.gst = g if self.gst is None else min(self.gst, g)
            elif tag == DELAY_ATOM:
                _, r, link, d = atom
                src, dst = link
                key = (r, src, dst)
                self._delays[key] = max(self._delays.get(key, 0), d)
            elif tag == DOWN_ATOM:
                _, r, pid = atom
                if pid in self.crashed_at:
                    self.crashed_at[pid] = min(self.crashed_at[pid], r)
                elif len(self.crashed_at) < t:
                    self.crashed_at[pid] = r
            else:
                raise ValueError(f"unknown gst atom {atom!r}")

    def stabilized(self, rnd: int) -> bool:
        """Has GST passed by round ``rnd``?"""
        return self.gst is not None and rnd >= self.gst

    def delivered(self, rnd: int, src: int, dst: int) -> bool:
        """Does the round-``rnd`` message src->dst arrive within its round?

        Self-delivery always succeeds; after GST everything does — the
        synchrony bound overrides every scripted delay, which is the
        whole content of the DLS assumption.
        """
        if src == dst:
            return True
        if self.stabilized(rnd):
            return True
        return self._delays.get((rnd, src, dst), 0) < 1

    def crashed(self, rnd: int, pid: int) -> bool:
        at = self.crashed_at.get(pid)
        return at is not None and rnd >= at

    def reset(self) -> None:
        """Stateless — present for the FaultAdversary replay contract."""


def simplify_gst_atom(atom: Atom):
    """Strictly milder variants of one gst atom, for the shrinker.

    A shorter delay is milder (``d`` decreases toward 1); an earlier GST
    is milder (less asynchrony).  Both strictly decrease an integer, so
    per-atom simplification terminates.  Crashes have no internal
    structure — ddmin deletes them whole.
    """
    tag = atom[0]
    if tag == DELAY_ATOM:
        _, r, link, d = atom
        if d > 1:
            yield (DELAY_ATOM, r, link, 1)
    elif tag == GST_ATOM:
        _, g = atom
        for earlier in range(g - 1, -1, -1):
            yield (GST_ATOM, earlier)


def blackout_atoms(gst: int, n: int) -> Schedule:
    """The canonical pre-GST worst case: every link dark until ``gst``.

    One delay atom per (round, directed link) below ``gst``, plus the
    ``("gst", gst)`` stabilization atom — the schedule under which the
    impossibility half of DLS is exercised end to end.
    """
    atoms: List[Atom] = [(GST_ATOM, gst)]
    for r in range(gst):
        for src, dst in itertools.permutations(range(n), 2):
            atoms.append((DELAY_ATOM, r, (src, dst), 1))
    return tuple(atoms)


@dataclass
class GSTRun:
    """One DLS-consensus run (possibly partial, budget convention)."""

    trace: Trace
    complete: bool
    decisions: Dict[int, Optional[int]]
    rounds: int
    gst: Optional[int]
    crashed: Tuple[int, ...]
    resume: Optional["_GSTSim"] = field(default=None, repr=False)
    interrupted: Optional[BudgetExceeded] = None


class _GSTSim:
    """Mutable state: values, locks, the round cursor, the log."""

    def __init__(
        self,
        atoms: Schedule,
        seed,
        inputs: Tuple[int, ...],
        t: int,
        max_rounds: int,
        default_gst: Optional[int],
    ):
        self.n = len(inputs)
        self.t = t
        if 2 * t >= self.n:
            raise ModelError(
                f"DLS consensus needs n > 2t, got n={self.n}, t={t}"
            )
        self.adversary = GSTAdversary(atoms, self.n, t, default_gst)
        self.seed = seed
        self.inputs = tuple(inputs)
        self.max_rounds = max_rounds
        self.quorum = self.n - t
        self.rnd = 0
        self.value = list(self.inputs)
        self.lock = [-1] * self.n
        self.decided: List[Optional[int]] = [None] * self.n
        self.events: List[TraceEvent] = []
        self._step_no = 0
        self._announced_crashes: set = set()

    def _emit(self, actor, kind, payload):
        self.events.append(
            TraceEvent(self._step_no, actor, kind, payload, self.rnd, None)
        )
        self._step_no += 1

    def _live(self) -> List[int]:
        return [
            p for p in range(self.n) if not self.adversary.crashed(self.rnd, p)
        ]

    def step_round(self) -> None:
        """One synchronized round: report, propose, ack, maybe decide."""
        r = self.rnd
        adv = self.adversary
        for pid, at in adv.crashed_at.items():
            if r >= at and pid not in self._announced_crashes:
                self._announced_crashes.add(pid)
                self._emit(pid, CRASH, ("at", at))
        live = self._live()
        c = r % self.n
        # A decided process keeps relaying its decision; the first round
        # in which the relay lands (GST at the latest) finishes everyone.
        settled = [p for p in live if self.decided[p] is not None]
        if settled:
            v = self.decided[settled[0]]
            for p in live:
                if self.decided[p] is None and any(
                    adv.delivered(r, q, p) for q in settled
                ):
                    self.decided[p] = v
                    self._emit(p, DECIDE, v)
            self.rnd = r + 1
            return
        if c not in live:
            self._emit(c, DROP, ("coordinator-down", r))
            self.rnd = r + 1
            return
        # Phase 1: reports flow to the coordinator (or die pre-GST).
        reports: Dict[int, Tuple[int, int]] = {}
        for p in live:
            self._emit(p, SEND, ("report", self.value[p], self.lock[p]))
            if adv.delivered(r, p, c):
                reports[p] = (self.value[p], self.lock[p])
            else:
                self._emit(c, DROP, ("report", p))
        if len(reports) < self.quorum:
            self._emit(c, DECLARE, ("no-quorum", len(reports)))
            self.rnd = r + 1
            return
        # Quorum intersection: the highest lock in any n-t reports
        # carries every previously decided value forward.
        best = max(reports, key=lambda p: (reports[p][1], -p))
        proposal = reports[best][0]
        self._emit(c, SEND, ("propose", proposal))
        # Phase 2: processes that hear the proposal lock it and ack.
        acks = 0
        for p in live:
            if adv.delivered(r, c, p) and adv.delivered(r, p, c):
                self.value[p] = proposal
                self.lock[p] = r
                self._emit(p, DECLARE, ("ack", c))
                acks += 1
            else:
                self._emit(p, DECLARE, ("miss", c))
        # Phase 3: a quorum of acks decides; the decision broadcast
        # reaches whoever the round still delivers to.
        if acks >= self.quorum:
            self.decided[c] = proposal
            self._emit(c, DECIDE, proposal)
            for p in live:
                if p != c and adv.delivered(r, c, p):
                    self.decided[p] = proposal
                    self._emit(p, DECIDE, proposal)
        self.rnd = r + 1

    @property
    def done(self) -> bool:
        live = self._live()
        if all(self.decided[p] is not None for p in live):
            return True
        return self.rnd >= self.max_rounds

    def outcome(self) -> Dict:
        return {
            "decisions": tuple(
                (p, self.decided[p]) for p in range(self.n)
            ),
            "rounds": self.rnd,
            "gst": self.adversary.gst,
            "crashed": tuple(sorted(self.adversary.crashed_at)),
            "complete": self.done,
        }


def run_gst_consensus(
    atoms: Schedule,
    seed=None,
    *,
    inputs: Sequence[int] = (0, 1, 1, 0),
    t: int = 1,
    max_rounds: int = 64,
    default_gst: Optional[int] = None,
    meter: Optional[BudgetMeter] = None,
    budget: Optional[Budget] = None,
    resume: Optional[GSTRun] = None,
) -> GSTRun:
    """Run (or resume) DLS consensus under a partial-synchrony schedule.

    Charges ``meter`` (raising on overdraft) ``n`` steps per round —
    which is what makes the pre-GST stall *provable*: under a blackout
    schedule with ``max_steps < n * gst`` the overdraft arrives before
    stabilization can, carrying the structured receipt.  A ``budget=``
    overdraft instead returns ``complete=False`` with a resume handle.
    """
    if resume is not None:
        if resume.resume is None:
            raise ValueError("run is not resumable (it completed)")
        sim = resume.resume
    else:
        sim = _GSTSim(
            tuple(atoms), seed, tuple(inputs), t, max_rounds, default_gst
        )
    own = budget.meter("gst-consensus") if budget is not None else None
    interrupted: Optional[BudgetExceeded] = None
    while not sim.done:
        if meter is not None:
            meter.charge_steps(sim.n)
        if own is not None:
            try:
                own.charge_steps(sim.n)
            except BudgetExceeded as exc:
                interrupted = exc
                break
        sim.step_round()
    complete = sim.done

    def replayer() -> Trace:
        return run_gst_consensus(
            sim.adversary.atoms,
            sim.seed,
            inputs=sim.inputs,
            t=sim.t,
            max_rounds=sim.max_rounds,
            default_gst=sim.adversary.gst,
        ).trace

    trace = Trace(
        substrate=SUBSTRATE,
        protocol="dls-rotating-coordinator",
        seed=sim.seed,
        events=tuple(sim.events),
        outcome=tuple(
            sorted((str(k), v) for k, v in sim.outcome().items())
        ),
        replayer=replayer if complete else None,
    )
    return GSTRun(
        trace=trace,
        complete=complete,
        decisions={p: sim.decided[p] for p in range(sim.n)},
        rounds=sim.rnd,
        gst=sim.adversary.gst,
        crashed=tuple(sorted(sim.adversary.crashed_at)),
        resume=None if complete else sim,
        interrupted=interrupted,
    )
