"""Command-line entry point: ``python -m repro.circumvention``.

Both sides of the FLP circumvention from one CLI, plus the detector and
lease runtimes on their own:

    # impossible side: relentless suspicion, consensus stalls
    # (structured budget overdraft, exit 2 — never a safety violation)
    python -m repro.circumvention flp-stall

    # possible side: eventually-accurate suspicion, Omega leads, decides
    python -m repro.circumvention omega --suspect 0:1 --suspect 1:2

    # a failure detector stabilizing through a partition
    python -m repro.circumvention detector --atoms '[["split", 2, 3]]'

    # quorum leases degrading explicitly under a sustained split
    python -m repro.circumvention lease \\
        --atoms '[["split", 0, 3], ["split", 1, 3]]'

    # randomization circumvents FLP: the expected-round sweep, with a
    # confidence interval and a termination-probability gate
    python -m repro.circumvention benor --trials 200 --workers 2

    # the planted anti-correlated coin: termination collapses to 0
    python -m repro.circumvention benor --trials 30 --biased-coin

    # partial synchrony: blackout until GST, then decide (exit 0) — or
    # cap the budget below GST and stall with a receipt (exit 2)
    python -m repro.circumvention gst --gst 6
    python -m repro.circumvention gst --gst 30 --stall

Exit codes: 0 = completed (decided / stabilized), 2 = stalled on budget
(the impossibility receipt), 1 = anything unsafe, which should never
happen.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..core.budget import Budget, BudgetExceeded
from .consensus import run_rotating_consensus
from .detectors import run_heartbeat_detector
from .gst import blackout_atoms, run_gst_consensus
from .leases import run_quorum_lease
from .randomized import expected_rounds


def _parse_atoms(text: str):
    atoms = json.loads(text)
    return tuple(tuple(atom) if isinstance(atom, list) else atom
                 for atom in atoms)


def _suspicion_atoms(pairs: List[str], relentless: List[int]):
    atoms = [("relentless", pid) for pid in relentless]
    for pair in pairs:
        rnd, _, pid = pair.partition(":")
        atoms.append(("suspect", int(rnd), int(pid)))
    return tuple(sorted(atoms))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.circumvention",
        description="Failure detectors, Omega-led consensus and quorum "
        "leases: impossibility circumvented, or stalling with a receipt.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stall = sub.add_parser(
        "flp-stall",
        help="rotating consensus under a relentless full coalition: "
        "no round ever collects a quorum, the run exits via a "
        "structured budget overdraft (exit 2), never unsafely",
    )
    stall.add_argument("--n", type=int, default=3)
    stall.add_argument("--max-steps", type=int, default=120)

    omega = sub.add_parser(
        "omega",
        help="rotating consensus under an eventually-accurate suspicion "
        "schedule: the first clean round's coordinator decides",
    )
    omega.add_argument(
        "--suspect", action="append", default=[], metavar="ROUND:PID",
        help="pid suspects that round's coordinator (repeatable)",
    )
    omega.add_argument(
        "--relentless", action="append", type=int, default=[], metavar="PID",
        help="pid suspects every coordinator forever (repeatable)",
    )
    omega.add_argument("--inputs", default="0,1,1", metavar="V,V,...")
    omega.add_argument("--max-rounds", type=int, default=64)
    omega.add_argument("--max-steps", type=int, default=None)

    detector = sub.add_parser(
        "detector", help="one heartbeat failure-detector run"
    )
    detector.add_argument("--atoms", default="[]", metavar="JSON")
    detector.add_argument("--seed", type=int, default=0)
    detector.add_argument("--n", type=int, default=4)
    detector.add_argument("--horizon", type=int, default=40)
    detector.add_argument("--initial-timeout", type=int, default=4)
    detector.add_argument(
        "--no-adaptive", action="store_true",
        help="disable timeout adaptation (with a low timeout this is "
        "the planted never-stabilizing detector)",
    )

    lease = sub.add_parser(
        "lease", help="one quorum-lease run under a partition schedule"
    )
    lease.add_argument("--atoms", default="[]", metavar="JSON")
    lease.add_argument("--seed", type=int, default=0)
    lease.add_argument("--n", type=int, default=4)
    lease.add_argument("--horizon", type=int, default=48)
    lease.add_argument(
        "--buggy", action="store_true",
        help="grant leases without a quorum (the planted bug)",
    )

    benor = sub.add_parser(
        "benor",
        help="Ben-Or expected-round sweep: seeded trials folded into a "
        "confidence interval, agreement/validity asserted on every seed",
    )
    benor.add_argument("--trials", type=int, default=200)
    benor.add_argument("--seed", type=int, default=0, metavar="MASTER")
    benor.add_argument("--n", type=int, default=4)
    benor.add_argument("--t", type=int, default=1)
    benor.add_argument("--workers", default=1)
    benor.add_argument(
        "--confidence", type=float, default=0.95,
        choices=(0.90, 0.95, 0.99),
    )
    benor.add_argument(
        "--min-termination", type=float, default=0.9, metavar="RATE",
        help="termination-probability gate across the sweep",
    )
    benor.add_argument("--max-events", type=int, default=4000)
    benor.add_argument(
        "--biased-coin", action="store_true",
        help="replace every coin with the process's parity (the planted "
        "anti-correlated bug): termination collapses, safety survives",
    )

    gst = sub.add_parser(
        "gst",
        help="DLS consensus under a pre-GST blackout: decides right "
        "after stabilization, or stalls with a structured receipt when "
        "the step budget cannot reach GST",
    )
    gst.add_argument("--gst", type=int, default=6, metavar="ROUND")
    gst.add_argument("--n", type=int, default=4)
    gst.add_argument("--t", type=int, default=1)
    gst.add_argument("--inputs", default=None, metavar="V,V,...")
    gst.add_argument("--seed", type=int, default=0)
    gst.add_argument("--atoms", default=None, metavar="JSON",
                     help="explicit schedule (overrides --gst blackout)")
    gst.add_argument(
        "--stall", action="store_true",
        help="cap the step budget below n*gst: the run must exhaust it "
        "before stabilization — the DLS impossibility receipt (exit 2)",
    )
    gst.add_argument("--max-steps", type=int, default=None)

    args = parser.parse_args(argv)

    if args.command == "flp-stall":
        atoms = tuple(("relentless", pid) for pid in range(args.n))
        meter = Budget(max_steps=args.max_steps).meter("flp-stall")
        try:
            run = run_rotating_consensus(
                atoms, 0, inputs=(0,) + (1,) * (args.n - 1), meter=meter
            )
        except BudgetExceeded as exc:
            print(
                "STALLED: relentless suspicion starves every round of a "
                f"quorum; budget overdraft after {exc.spent} steps "
                f"(limit {exc.limit}).  No process decided; no process "
                "disagreed.  This stall is the FLP impossibility made "
                "operational — remove the relentless coalition and the "
                "same protocol decides (see the omega subcommand)."
            )
            return 2
        print(f"decided {run.decided} in round {run.rounds} — no stall?")
        return 0

    if args.command == "omega":
        inputs = tuple(int(v) for v in args.inputs.split(","))
        atoms = _suspicion_atoms(args.suspect, args.relentless)
        meter = (
            Budget(max_steps=args.max_steps).meter("omega")
            if args.max_steps is not None
            else None
        )
        try:
            run = run_rotating_consensus(
                atoms, 0, inputs=inputs, max_rounds=args.max_rounds,
                meter=meter,
            )
        except BudgetExceeded as exc:
            print(f"STALLED: budget overdraft after {exc.spent} steps")
            return 2
        if run.decided is None:
            print(f"no decision within {run.rounds} rounds")
            return 2
        print(
            f"decided {run.decided} in round {run.rounds} "
            f"(inputs {inputs}, {len(atoms)} suspicion atoms): the first "
            "round whose coordinator goes unsuspected collects a quorum — "
            "the detector bought back the termination FLP forbids"
        )
        return 0

    if args.command == "detector":
        run = run_heartbeat_detector(
            _parse_atoms(args.atoms),
            args.seed,
            n=args.n,
            horizon=args.horizon,
            initial_timeout=args.initial_timeout,
            adaptive=not args.no_adaptive,
        )
        print(f"leaders:   {run.leaders}")
        print(f"suspects:  {run.suspects}")
        print(
            f"stability: {run.leader_changes} leader change(s), "
            f"last output change at t={run.last_change} "
            f"(horizon {args.horizon})"
        )
        print(f"trace:     {run.trace.fingerprint()[:16]} (replayable)")
        live = set(run.leaders)
        stable = len({run.leaders[p] for p in live}) == 1
        return 0 if stable else 1

    if args.command == "lease":
        run = run_quorum_lease(
            _parse_atoms(args.atoms),
            args.seed,
            n=args.n,
            horizon=args.horizon,
            buggy_no_quorum=args.buggy,
        )
        print(f"leases:  {run.leases}")
        print(f"commits: {run.commits}")
        degraded = [
            (e.actor, e.time, e.payload[1])
            for e in run.trace.events
            if isinstance(e.payload, tuple)
            and e.payload
            and e.payload[0] == "degraded"
        ]
        if degraded:
            print(f"degraded-mode transitions: {degraded}")
        overlaps = [
            (x, y)
            for i, x in enumerate(run.leases)
            for y in run.leases[i + 1:]
            if x[0] != y[0] and x[1] < y[2] and y[1] < x[2]
        ]
        if overlaps:
            print(f"UNSAFE: concurrent leases {overlaps}")
            return 1
        print(f"trace:   {run.trace.fingerprint()[:16]} (replayable)")
        return 0

    if args.command == "benor":
        workers = (
            int(args.workers)
            if str(args.workers).isdigit()
            else args.workers
        )
        sweep = expected_rounds(
            args.trials,
            args.seed,
            n=args.n,
            t=args.t,
            biased_coin=args.biased_coin,
            max_events=args.max_events,
            confidence=args.confidence,
            workers=workers,
        )
        coin = "biased (pid parity)" if args.biased_coin else "fair"
        print(
            f"Ben-Or sweep: {sweep.trials} trials, n={args.n} t={args.t}, "
            f"{coin} coin"
        )
        print(
            f"  termination: {sweep.decided}/{sweep.trials} "
            f"(rate {sweep.termination_rate:.3f}, "
            f"gate {args.min_termination})"
        )
        print(
            f"  expected rounds: {sweep.mean_rounds:.3f} "
            f"[{sweep.ci_low:.3f}, {sweep.ci_high:.3f}] at "
            f"{int(sweep.confidence * 100)}% confidence "
            f"(worst {sweep.worst_rounds})"
        )
        if sweep.violations:
            for violation in sweep.violations:
                print(f"UNSAFE: {violation}")
            return 1
        print("  safety: agreement and validity held on every seed")
        if not sweep.ok(args.min_termination):
            print(
                f"STALLED: termination rate {sweep.termination_rate:.3f} "
                f"below the {args.min_termination} gate — randomization "
                "has stopped buying back the termination FLP forbids "
                "(the planted anti-correlated coin re-creates the split "
                "input every phase)."
            )
            return 2
        return 0

    if args.command == "gst":
        if args.inputs is not None:
            inputs = tuple(int(v) for v in args.inputs.split(","))
        else:
            inputs = tuple(i % 2 for i in range(args.n))
        if args.atoms is not None:
            atoms = _parse_atoms(args.atoms)
        else:
            atoms = blackout_atoms(args.gst, len(inputs))
        n = len(inputs)
        if args.max_steps is not None:
            max_steps = args.max_steps
        elif args.stall:
            max_steps = max(n * args.gst - n, n)  # runs out before GST
        else:
            max_steps = None
        meter = (
            Budget(max_steps=max_steps).meter("gst")
            if max_steps is not None
            else None
        )
        try:
            run = run_gst_consensus(
                atoms, args.seed, inputs=inputs, t=args.t, meter=meter
            )
        except BudgetExceeded as exc:
            print(
                f"STALLED: pre-GST blackout; budget overdraft after "
                f"{exc.spent} steps (limit {exc.limit}) with GST at round "
                f"{args.gst} still ahead.  No process decided; no process "
                "disagreed.  This stall is the DLS impossibility made "
                "operational — the same schedule with budget past GST "
                "decides in the first stabilized round."
            )
            return 2
        decided = {v for v in run.decisions.values() if v is not None}
        if not decided:
            print(f"no decision within {run.rounds} rounds (gst={run.gst})")
            return 2
        if len(decided) > 1:
            print(f"UNSAFE: conflicting decisions {sorted(decided)}")
            return 1
        print(
            f"decided {decided.pop()} in round {run.rounds} "
            f"(GST at round {run.gst}): the first stabilized round's "
            "coordinator collects a quorum — eventual synchrony bought "
            "back the termination FLP forbids"
        )
        print(f"trace: {run.trace.fingerprint()[:16]} (replayable)")
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
