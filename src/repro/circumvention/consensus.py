"""Rotating-coordinator consensus: termination bought with suspicion.

The FLP circumvention receipt, both sides on one protocol.  The
Chandra–Toueg shape: rounds rotate the coordinator ``c = r mod n``; each
round the coordinator gathers timestamped estimates, proposes the most
recent, and processes **ack** unless their failure detector tells them
to suspect the coordinator — in which case they **nack** and the round
is wasted.  A quorum of acks decides.

Safety never depends on the detector: a decision requires a quorum
behind a single per-round proposal, so agreement and validity hold under
*every* suspicion schedule — wrong suspicions can only waste rounds.
Liveness is exactly the detector's accuracy:

* under an **eventually accurate** schedule (all suspicion atoms confined
  to rounds below some bound) the first clean round decides — the
  possible side;
* under a **relentless full coalition** (every process forever suspects
  every coordinator but itself) no round ever collects a quorum, and the
  run exits via a structured :class:`~repro.core.budget.BudgetExceeded`
  — never via a safety violation.  That stall *is* the impossibility
  made operational: take the detector away and FLP takes the protocol.

Suspicion schedules are chaos atoms:

* ``("suspect", r, pid)`` — ``pid`` suspects round ``r``'s coordinator
  during round ``r`` only;
* ``("relentless", pid)`` — ``pid`` suspects every coordinator, every
  round (except itself: a coordinator always backs its own proposal).

``budget=`` overdrafts return a resumable partial
:class:`ConsensusRun`; ``meter=`` (an external account, e.g. the chaos
campaign's) propagates the raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.budget import Budget, BudgetExceeded, BudgetMeter
from ..core.runtime import DECIDE, DECLARE, SEND, Trace, TraceEvent
from .partitions import Schedule

SUBSTRATE = "rotating-consensus"

SUSPECT_ATOM = "suspect"
RELENTLESS_ATOM = "relentless"


class TandemMeter:
    """Charge several meters as one (campaign account + a run's own cap).

    Only the stepping interface — exactly what the simulators use.  Any
    member's overdraft raises that member's structured
    :class:`BudgetExceeded`.
    """

    def __init__(self, *meters: Optional[BudgetMeter]):
        self.meters = [m for m in meters if m is not None]

    def charge_steps(self, k: int = 1) -> None:
        for m in self.meters:
            m.charge_steps(k)


class SuspicionOracle:
    """Compiled suspicion schedule: does p suspect round r's coordinator?"""

    def __init__(self, atoms: Schedule, n: int):
        self.atoms = tuple(atoms)
        self.n = n
        self._scripted: Dict[Tuple[int, int], bool] = {}
        self._relentless: set = set()
        for atom in self.atoms:
            if atom[0] == SUSPECT_ATOM:
                _, r, pid = atom
                self._scripted[(r, pid)] = True
            elif atom[0] == RELENTLESS_ATOM:
                self._relentless.add(atom[1])
            else:
                raise ValueError(f"unknown suspicion atom {atom!r}")

    def suspects(self, rnd: int, pid: int, coordinator: int) -> bool:
        if pid == coordinator:
            return False
        if pid in self._relentless:
            return True
        return self._scripted.get((rnd, pid), False)

    def max_scripted_round(self) -> int:
        return max((r for (r, _p) in self._scripted), default=-1)


@dataclass
class ConsensusRun:
    """One rotating-coordinator run (possibly partial)."""

    trace: Trace
    complete: bool
    decided: Optional[int]
    rounds: int
    resume: Optional["_ConsensusSim"] = field(default=None, repr=False)
    interrupted: Optional[BudgetExceeded] = None


class _ConsensusSim:
    """Mutable state: estimates, timestamps, the round cursor, the log."""

    def __init__(
        self,
        atoms: Schedule,
        seed: Optional[int],
        inputs: Sequence[int],
        max_rounds: int,
    ):
        self.oracle = SuspicionOracle(atoms, len(inputs))
        self.seed = seed
        self.inputs = tuple(inputs)
        self.n = len(inputs)
        self.quorum = self.n // 2 + 1
        self.max_rounds = max_rounds
        self.rnd = 0
        self.estimate = list(self.inputs)
        self.timestamp = [-1] * self.n
        self.decided: Optional[int] = None
        self.events: List[TraceEvent] = []
        self._step_no = 0

    def _emit(self, actor, kind, payload):
        self.events.append(
            TraceEvent(self._step_no, actor, kind, payload, self.rnd, None)
        )
        self._step_no += 1

    def step_round(self) -> None:
        """One full round: gather, propose, ack-or-nack, maybe decide."""
        r = self.rnd
        c = r % self.n
        # Phase 1: estimates flow to the coordinator.
        for p in range(self.n):
            self._emit(
                p, SEND, ("estimate", self.estimate[p], self.timestamp[p])
            )
        # The coordinator adopts the most recently locked estimate
        # (highest timestamp; min pid breaks ties deterministically).
        best = max(
            range(self.n), key=lambda p: (self.timestamp[p], -p)
        )
        proposal = self.estimate[best]
        self._emit(c, SEND, ("propose", proposal))
        # Phase 2: ack unless the local detector suspects the coordinator.
        acks = 0
        for p in range(self.n):
            if self.oracle.suspects(r, p, c):
                self._emit(p, DECLARE, ("nack", c))
            else:
                self.estimate[p] = proposal
                self.timestamp[p] = r
                self._emit(p, DECLARE, ("ack", c))
                acks += 1
        # Phase 3: a quorum behind one proposal decides for everyone.
        if acks >= self.quorum:
            self.decided = proposal
            for p in range(self.n):
                self._emit(p, DECIDE, proposal)
        self.rnd = r + 1

    @property
    def done(self) -> bool:
        return self.decided is not None or self.rnd >= self.max_rounds

    def outcome(self) -> Dict:
        return {
            "decisions": tuple(
                (p, self.decided) for p in range(self.n)
            ),
            "rounds": self.rnd,
            "quorum": self.quorum,
            "complete": self.done,
        }


def run_rotating_consensus(
    atoms: Schedule,
    seed: Optional[int] = None,
    *,
    inputs: Sequence[int] = (0, 1, 1),
    max_rounds: int = 64,
    meter=None,
    budget: Optional[Budget] = None,
    resume: Optional[ConsensusRun] = None,
) -> ConsensusRun:
    """Run (or resume) rotating-coordinator consensus under a suspicion
    schedule.

    Charges ``meter`` (raising on overdraft) ``n`` steps per round; a
    ``budget=`` overdraft instead returns ``complete=False`` with a
    ``resume`` handle.
    """
    if resume is not None:
        if resume.resume is None:
            raise ValueError("run is not resumable (it completed)")
        sim = resume.resume
    else:
        sim = _ConsensusSim(tuple(atoms), seed, inputs, max_rounds)
    own = budget.meter("rotating-consensus") if budget is not None else None
    interrupted: Optional[BudgetExceeded] = None
    while not sim.done:
        if meter is not None:
            meter.charge_steps(sim.n)
        if own is not None:
            try:
                own.charge_steps(sim.n)
            except BudgetExceeded as exc:
                interrupted = exc
                break
        sim.step_round()
    complete = sim.done

    def replayer() -> Trace:
        return run_rotating_consensus(
            sim.oracle.atoms,
            sim.seed,
            inputs=sim.inputs,
            max_rounds=sim.max_rounds,
        ).trace

    trace = Trace(
        substrate=SUBSTRATE,
        protocol="rotating-coordinator",
        seed=sim.seed,
        events=tuple(sim.events),
        outcome=tuple(
            sorted((str(k), v) for k, v in sim.outcome().items())
        ),
        replayer=replayer if complete else None,
    )
    return ConsensusRun(
        trace=trace,
        complete=complete,
        decided=sim.decided,
        rounds=sim.rnd,
        resume=None if complete else sim,
        interrupted=interrupted,
    )
