"""Ben-Or's randomized consensus on the unified runtime (§2.2.4).

The survey's first escape hatch from FLP: deterministic 1-resilient
asynchronous consensus is impossible, but flip coins and the adversary
loses — Ben-Or decides with probability 1 against any crash-and-schedule
adversary when ``n > 2t``, never violating safety.  This module is the
runtime-native engine: every run is a deterministic, replayable function
of ``(atoms, seed)``, with the message scheduler and every process's
coin derived from the seed through :func:`~repro.core.runtime.
derive_seed` (so ``PYTHONHASHSEED`` cannot touch it).

Adversary schedules follow the chaos engine's atoms-as-schedules
convention — a flat tuple of hashable atoms, ddmin-shrinkable and
JSONL-serializable:

* bare ints — a scheduling script: the k-th int indexes (mod the live
  count) the sorted deliverable-message list at delivery step k; when
  the script runs dry the seeded RNG schedules the rest;
* ``("crash", e, pid)`` — ``pid`` crashes at delivery step ``e``: its
  queued messages are destroyed and it takes no further steps.  At most
  ``t`` crash atoms are honoured (first ``t`` distinct pids in schedule
  order), so mutated or spliced schedules can never exceed the
  protocol's fault contract.

Phase machine (binary values): a *report* round (broadcast your value,
act on ``n - t``), a *propose* round (propose ``w`` on a strict
majority of reports, else ``?``), then decide on more than ``t`` real
proposals, adopt a single real proposal, or **flip a coin**.  The
``biased_coin=True`` configuration is the planted bug: the coin is
replaced by the process's parity (``pid % 2``), which is exactly the
anti-correlated "randomness" that lets a perfectly split input re-create
itself every phase — the run never terminates, on the *empty* schedule,
which is what the chaos shrinker reduces every finding to.  Safety is
coin-independent either way: agreement and validity hold on every seed
of every schedule, biased or honest.

The **expected-round harness** (:func:`expected_rounds`) turns "decides
with probability 1" into a measured, gated number: a streaming,
constant-memory fold of per-seed round counts into a mean with a
normal-approximation confidence interval, sharded bit-identically across
the PR-4 :class:`~repro.parallel.pool.WorkerPool` (workers compute
cases, the parent folds them in submission order — the
parent-is-authoritative rule), plus a statistical monitor: agreement and
validity are asserted on *every* seed, and the termination rate across
the sweep is gated against a probability bound.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.budget import Budget, BudgetExceeded, BudgetMeter
from ..core.runtime import (
    CRASH,
    DECIDE,
    DELIVER,
    SEND,
    Trace,
    TraceEvent,
    derive_seed,
)
from ..parallel.pool import WorkerPool
from .partitions import Schedule

SUBSTRATE = "benor-consensus"

CRASH_ATOM = "crash"
QUESTION = "?"


class BenOrAdversary:
    """Compiled form of a Ben-Or schedule: script indices + crash plan.

    Scheduling ints are consumed in order; crash atoms are honoured for
    at most ``t`` distinct pids (schedule order), so the compiled
    adversary always sits inside the protocol's fault contract whatever
    ddmin or the mutation operators did to the raw atoms.
    """

    def __init__(self, atoms: Schedule, t: int):
        self.atoms: Schedule = tuple(atoms)
        self.script: Tuple[int, ...] = tuple(
            a for a in self.atoms if isinstance(a, int)
        )
        self.crash_at: Dict[int, int] = {}
        for atom in self.atoms:
            if isinstance(atom, tuple) and atom and atom[0] == CRASH_ATOM:
                _, when, pid = atom
                if pid in self.crash_at:
                    self.crash_at[pid] = min(self.crash_at[pid], when)
                elif len(self.crash_at) < t:
                    self.crash_at[pid] = when

    def schedule(self, k: int, options: int, rng: random.Random) -> int:
        """Index of the delivery chosen at step ``k`` among ``options``."""
        if k < len(self.script):
            return self.script[k] % options
        return rng.randrange(options)

    def reset(self) -> None:
        """Stateless — present for the FaultAdversary replay contract."""


class BenOrProcess:
    """One participant: the report/propose phase machine plus its coin."""

    def __init__(
        self, pid: int, n: int, t: int, value: int, seed, biased_coin: bool
    ):
        self.pid = pid
        self.n = n
        self.t = t
        self.value = 1 if value else 0
        self.phase = 1
        self.stage = "report"
        self.decided: Optional[int] = None
        self.decided_phase: Optional[int] = None
        self.biased_coin = biased_coin
        self.rng = random.Random(derive_seed(seed, "benor-coin", pid))
        self.inbox: Dict[Tuple[str, int], Dict[int, object]] = {}
        self.outbox: List[Tuple[str, int, object]] = []
        self._send(("report", self.phase, self.value))

    def _coin(self) -> int:
        if self.biased_coin:
            return self.pid % 2  # the planted anti-correlated "coin"
        return self.rng.randrange(2)

    def _send(self, msg) -> None:
        self.outbox.append(msg)
        self._store(self.pid, msg)

    def _store(self, src: int, msg) -> None:
        stage, phase, value = msg
        self.inbox.setdefault((stage, phase), {})[src] = value

    def handle(self, src: int, msg) -> None:
        self._store(src, msg)
        self._advance()

    def _advance(self) -> None:
        # A decided process keeps running the phase machine with its value
        # pinned (all later real proposals must equal it), so it can never
        # starve the undecided of their n - t messages per stage; the
        # simulator stops scheduling once every live process has decided.
        while True:
            arrived = self.inbox.get((self.stage, self.phase), {})
            if len(arrived) < self.n - self.t:
                return
            if self.stage == "report":
                ones = sum(1 for v in arrived.values() if v == 1)
                zeros = sum(1 for v in arrived.values() if v == 0)
                if ones * 2 > self.n:
                    proposal: object = 1
                elif zeros * 2 > self.n:
                    proposal = 0
                else:
                    proposal = QUESTION
                self.stage = "propose"
                self._send(("propose", self.phase, proposal))
            else:
                proposals = [v for v in arrived.values() if v != QUESTION]
                if proposals:
                    # Majority intersection: all real proposals of a
                    # phase are equal; adopt (or decide) that value.
                    w = proposals[0]
                    if len(proposals) > self.t and self.decided is None:
                        self.decided = w
                        self.decided_phase = self.phase
                    self.value = w
                elif self.decided is not None:
                    self.value = self.decided
                else:
                    self.value = self._coin()
                self.phase += 1
                self.stage = "report"
                self._send(("report", self.phase, self.value))


@dataclass
class BenOrRun:
    """One Ben-Or run (possibly partial, in the PR-3 budget convention)."""

    trace: Trace
    complete: bool
    decisions: Dict[int, Optional[int]]
    phases: Dict[int, int]
    crashed: Tuple[int, ...]
    events: int
    agreement: bool
    validity: bool
    resume: Optional["_BenOrSim"] = field(default=None, repr=False)
    interrupted: Optional[BudgetExceeded] = None


class _BenOrSim:
    """Mutable simulator state: processes, the flight list, the log."""

    def __init__(
        self,
        atoms: Schedule,
        seed,
        n: int,
        t: int,
        inputs: Tuple[int, ...],
        biased_coin: bool,
        max_events: int,
    ):
        self.adversary = BenOrAdversary(atoms, t)
        self.seed = seed
        self.n = n
        self.t = t
        self.inputs = tuple(inputs)
        self.biased_coin = biased_coin
        self.max_events = max_events
        self.rng = random.Random(derive_seed(seed, "benor-schedule"))
        self.processes = [
            BenOrProcess(pid, n, t, inputs[pid], seed, biased_coin)
            for pid in range(n)
        ]
        self.crashed: set = set()
        #: in-flight messages (src, dst, msg), delivery order adversarial
        self.flight: List[Tuple[int, int, object]] = []
        self.k = 0  # delivery-step counter (the adversary's clock)
        self.events: List[TraceEvent] = []
        self._step_no = 0
        self._drain()

    def _emit(self, actor, kind, payload, phase=None):
        self.events.append(
            TraceEvent(self._step_no, actor, kind, payload, phase, self.k)
        )
        self._step_no += 1

    def _drain(self) -> None:
        for proc in self.processes:
            if proc.pid in self.crashed:
                proc.outbox.clear()
                continue
            for msg in proc.outbox:
                self._emit(proc.pid, SEND, msg, phase=msg[1])
                for dst in range(self.n):
                    if dst != proc.pid:
                        self.flight.append((proc.pid, dst, msg))
            proc.outbox.clear()

    def _phase_of(self, pid: int) -> int:
        """The phase a process decided in, or its current phase if undecided.

        Decided processes keep running the machine (see ``_advance``), so
        their live ``phase`` counter drifts past the decision point; the
        reported phase is pinned at decision time.
        """
        proc = self.processes[pid]
        if proc.decided_phase is not None:
            return proc.decided_phase
        return proc.phase

    def _crash_due(self) -> None:
        for pid, when in self.adversary.crash_at.items():
            if self.k >= when and pid not in self.crashed:
                self.crashed.add(pid)
                self._emit(pid, CRASH, ("at", self.k))
                self.flight = [
                    (s, d, m) for (s, d, m) in self.flight if s != pid
                ]

    @property
    def done(self) -> bool:
        live_undecided = [
            p
            for p in range(self.n)
            if p not in self.crashed and self.processes[p].decided is None
        ]
        if not live_undecided:
            return True
        deliverable = [
            i
            for i, (_s, d, _m) in enumerate(self.flight)
            if d not in self.crashed
        ]
        return not deliverable or self.k >= self.max_events

    def step(self) -> None:
        """One delivery: crashes due now, then one adversarial delivery."""
        self._crash_due()
        deliverable = [
            i
            for i, (_s, d, _m) in enumerate(self.flight)
            if d not in self.crashed
        ]
        if not deliverable:
            return
        choice = self.adversary.schedule(self.k, len(deliverable), self.rng)
        src, dst, msg = self.flight.pop(deliverable[choice])
        self._emit(dst, DELIVER, (src, msg), phase=msg[1])
        before = self.processes[dst].decided
        self.processes[dst].handle(src, msg)
        after = self.processes[dst].decided
        if before is None and after is not None:
            self._emit(dst, DECIDE, after, phase=self._phase_of(dst))
        self.k += 1
        self._drain()

    def outcome(self) -> Dict:
        return {
            "decisions": tuple(
                (p, self.processes[p].decided) for p in range(self.n)
            ),
            "phases": tuple(
                (p, self._phase_of(p)) for p in range(self.n)
            ),
            "crashed": tuple(sorted(self.crashed)),
            "events": self.k,
            "complete": self.done,
        }


def run_ben_or_traced(
    atoms: Schedule,
    seed=None,
    *,
    n: int = 4,
    t: int = 1,
    inputs: Optional[Sequence[int]] = None,
    biased_coin: bool = False,
    max_events: int = 4000,
    meter: Optional[BudgetMeter] = None,
    budget: Optional[Budget] = None,
    resume: Optional[BenOrRun] = None,
) -> BenOrRun:
    """Run (or resume) one Ben-Or consensus simulation.

    ``meter`` is an externally owned account (a chaos campaign's per-run
    meter): its overdraft *raises*.  ``budget`` opens this run's own
    account: its overdraft returns a partial, resumable run whose
    finished trace is byte-identical to an uninterrupted one.
    """
    if resume is not None:
        if resume.resume is None:
            raise ValueError("run is not resumable (it completed)")
        sim = resume.resume
    else:
        if inputs is None:
            inputs = tuple(i % 2 for i in range(n))
        inputs = tuple(1 if v else 0 for v in inputs)
        n = len(inputs)
        sim = _BenOrSim(
            tuple(atoms), seed, n, t, inputs, biased_coin, max_events
        )
    own = budget.meter("benor-consensus") if budget is not None else None
    interrupted: Optional[BudgetExceeded] = None
    while not sim.done:
        if meter is not None:
            meter.charge_steps()
        if own is not None:
            try:
                own.charge_steps()
            except BudgetExceeded as exc:
                interrupted = exc
                break
        sim.step()
    complete = sim.done

    def replayer() -> Trace:
        return run_ben_or_traced(
            sim.adversary.atoms,
            sim.seed,
            n=sim.n,
            t=sim.t,
            inputs=sim.inputs,
            biased_coin=sim.biased_coin,
            max_events=sim.max_events,
        ).trace

    trace = Trace(
        substrate=SUBSTRATE,
        protocol="ben-or" + ("-biased-coin" if sim.biased_coin else ""),
        seed=sim.seed,
        events=tuple(sim.events),
        outcome=tuple(
            sorted((str(k), v) for k, v in sim.outcome().items())
        ),
        replayer=replayer if complete else None,
    )
    decisions = {p: sim.processes[p].decided for p in range(sim.n)}
    live = [p for p in range(sim.n) if p not in sim.crashed]
    decided_values = {
        decisions[p] for p in live if decisions[p] is not None
    }
    validity = True
    if len(set(sim.inputs)) == 1:
        (v,) = set(sim.inputs)
        validity = all(decisions[p] in (None, v) for p in live)
    return BenOrRun(
        trace=trace,
        complete=complete,
        decisions=decisions,
        phases={p: sim._phase_of(p) for p in range(sim.n)},
        crashed=tuple(sorted(sim.crashed)),
        events=sim.k,
        agreement=len(decided_values) <= 1,
        validity=validity,
        resume=None if complete else sim,
        interrupted=interrupted,
    )


# ---------------------------------------------------------------------------
# The expected-round analysis harness
# ---------------------------------------------------------------------------

#: two-sided normal quantiles for the supported confidence levels
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054,
      0.99: 2.5758293035489004}


@dataclass(frozen=True)
class RoundSweep:
    """The folded result of one expected-round sweep.

    Every field is a deterministic function of the sweep coordinates
    ``(trials, master_seed, n, t, ...)`` — the fold runs in submission
    order in the parent whatever the worker count, so two sweeps with
    the same coordinates are ``==`` bit-for-bit at workers=1 and
    workers=N (the hypothesis suite's anchor).
    """

    trials: int
    decided: int
    termination_rate: float
    mean_rounds: float
    ci_low: float
    ci_high: float
    worst_rounds: int
    confidence: float
    violations: Tuple[str, ...]

    def ok(self, min_termination: float = 0.9) -> bool:
        """The statistical monitor's verdict for this sweep."""
        return not self.violations and (
            self.termination_rate >= min_termination
        )


def _sweep_case(args) -> Dict:
    """One sweep trial — a pure, picklable function of its coordinates.

    The per-trial seed is re-derived from ``(master_seed, index)`` inside
    the worker (the campaign-engine idiom), so sharding cannot change
    what any trial computes, only where.
    """
    master_seed, index, n, t, inputs, biased_coin, max_events = args
    seed = derive_seed(master_seed, "benor-sweep", index)
    if inputs is None:
        # mixed inputs, rotated per trial so both values recur everywhere
        inputs = tuple((index + i) % 2 for i in range(n))
    run = run_ben_or_traced(
        (),
        seed,
        n=n,
        t=t,
        inputs=inputs,
        biased_coin=biased_coin,
        max_events=max_events,
    )
    violations = []
    if not run.agreement:
        violations.append(f"trial {index}: agreement violated")
    if not run.validity:
        violations.append(f"trial {index}: validity violated")
    live = [p for p in run.decisions if p not in run.crashed]
    decided = all(run.decisions[p] is not None for p in live)
    rounds = max(run.phases[p] for p in live) if decided else 0
    return {
        "index": index,
        "decided": decided,
        "rounds": rounds,
        "violations": tuple(violations),
    }


def expected_rounds(
    trials: int,
    master_seed: int = 0,
    *,
    n: int = 4,
    t: int = 1,
    inputs: Optional[Sequence[int]] = None,
    biased_coin: bool = False,
    max_events: int = 4000,
    confidence: float = 0.95,
    workers=1,
) -> RoundSweep:
    """Fold ``trials`` seeded Ben-Or runs into an expected-round estimate.

    Streaming and constant-memory: trials flow through
    :meth:`~repro.parallel.pool.WorkerPool.map_stream` and fold into
    running Welford moments — nothing per-trial is retained.  The
    parent-is-authoritative merge makes the result bit-identical at any
    worker count.  Agreement/validity violations (there must never be
    any) are collected per trial; the termination rate across the sweep
    is the probability-1 claim, measured.
    """
    if confidence not in _Z:
        raise ValueError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        )
    inputs = tuple(inputs) if inputs is not None else None
    if inputs is not None:
        n = len(inputs)
    coords = [
        (master_seed, index, n, t, inputs, biased_coin, max_events)
        for index in range(trials)
    ]
    decided = 0
    worst = 0
    mean = 0.0
    m2 = 0.0
    violations: List[str] = []
    with WorkerPool(workers) as pool:
        for _item, case in pool.map_stream(
            _sweep_case, coords, chunk=8
        ):
            violations.extend(case["violations"])
            if not case["decided"]:
                continue
            decided += 1
            rounds = case["rounds"]
            worst = max(worst, rounds)
            delta = rounds - mean
            mean += delta / decided
            m2 += delta * (rounds - mean)
    z = _Z[confidence]
    if decided > 1:
        half = z * math.sqrt(m2 / (decided - 1) / decided)
    else:
        half = 0.0
    return RoundSweep(
        trials=trials,
        decided=decided,
        termination_rate=decided / trials if trials else 0.0,
        mean_rounds=mean,
        ci_low=mean - half,
        ci_high=mean + half,
        worst_rounds=worst,
        confidence=confidence,
        violations=tuple(violations),
    )
