"""The partition adversary: seeded split / heal / asymmetric-link schedules.

CAP-style scenarios need an adversary that owns the *network*, not the
processes: it may split the cluster into sides, cut single directions of
single links (asymmetric reachability — the nastiest real-world case),
heal everything the next step, and crash nodes outright.  Following the
chaos engine's atoms-as-schedules convention
(:mod:`repro.chaos.generators`), a partition schedule is a flat tuple of
per-step atoms, so ddmin deletion has clean semantics (removing an atom
strictly heals the network) and schedules serialize into JSONL artifacts
unchanged:

* ``("split", t, mask)`` — during step ``t`` the nodes whose bit is set
  in ``mask`` are one side, the rest the other; every link crossing the
  boundary is cut in both directions for that step only;
* ``("cut", t, a, b)`` — during step ``t`` the directed link a->b is
  cut (b->a stays up: asymmetric);
* ``("down", t, pid)`` — ``pid`` crashes at step ``t`` and stays down.

Sustained partitions are spelled as one split atom per step, which is
exactly what makes shrinking informative: the 1-minimal counterexample
names the precise steps (often just one) the failure needs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

Atom = Tuple
Schedule = Tuple[Atom, ...]

SPLIT = "split"
CUT = "cut"
DOWN = "down"


class PartitionAdversary:
    """Compiled form of a partition schedule: O(1) per-step link queries.

    Immutable and stateless across queries, so one instance serves both
    the simulator (deciding deliveries as it runs) and the post-hoc
    monitors (re-deciding majority membership from the trace) — the two
    can never disagree about what the network did.
    """

    def __init__(self, atoms: Iterable[Atom], n: int):
        self.n = n
        self.atoms: Schedule = tuple(atoms)
        # step -> frozenset of side-masks active that step
        self._splits: Dict[int, Set[int]] = {}
        # step -> set of directed (src, dst) cuts
        self._cuts: Dict[int, Set[Tuple[int, int]]] = {}
        # pid -> earliest crash step
        self.crashed_at: Dict[int, int] = {}
        for atom in self.atoms:
            tag = atom[0]
            if tag == SPLIT:
                _, t, mask = atom
                self._splits.setdefault(t, set()).add(mask & ((1 << n) - 1))
            elif tag == CUT:
                _, t, a, b = atom
                self._cuts.setdefault(t, set()).add((a, b))
            elif tag == DOWN:
                _, t, pid = atom
                prior = self.crashed_at.get(pid)
                if prior is None or t < prior:
                    self.crashed_at[pid] = t
            else:
                raise ValueError(f"unknown partition atom {atom!r}")

    # -- process liveness --------------------------------------------------

    def crashed(self, t: int, pid: int) -> bool:
        """True once ``pid``'s crash step has arrived."""
        at = self.crashed_at.get(pid)
        return at is not None and t >= at

    def live(self, t: int) -> Tuple[int, ...]:
        return tuple(p for p in range(self.n) if not self.crashed(t, p))

    def ever_crashed(self) -> FrozenSet[int]:
        return frozenset(self.crashed_at)

    # -- link state --------------------------------------------------------

    def blocked(self, t: int, src: int, dst: int) -> bool:
        """Is a message sent src->dst during step ``t`` destroyed?

        Self-delivery is never blocked by the network (a node always
        hears itself); crashes block everything at either endpoint.
        """
        if self.crashed(t, src) or self.crashed(t, dst):
            return True
        if src == dst:
            return False
        for mask in self._splits.get(t, ()):
            if bool(mask >> src & 1) != bool(mask >> dst & 1):
                return True
        cuts = self._cuts.get(t)
        return cuts is not None and (src, dst) in cuts

    def connected(self, t: int, a: int, b: int) -> bool:
        """Bidirectionally reachable during step ``t`` (both alive)."""
        return not self.blocked(t, a, b) and not self.blocked(t, b, a)

    def majority_connected(self, t: int, pid: int) -> bool:
        """Can ``pid`` currently exchange messages with a strict majority
        of the *full* cluster (itself included)?

        The quorum test degraded modes key on: a leader that fails it
        must stop acking writes, whatever lease it still holds.
        """
        if self.crashed(t, pid):
            return False
        reach = sum(
            1 for q in range(self.n) if self.connected(t, pid, q)
        )
        return reach > self.n // 2

    def quiet_after(self) -> int:
        """The first step from which the schedule does nothing new.

        Crashes are permanent, so a ``down`` atom keeps acting forever;
        splits and cuts act only at their own step.
        """
        horizon = 0
        for atom in self.atoms:
            if atom[0] in (SPLIT, CUT):
                horizon = max(horizon, atom[1] + 1)
        return horizon

    def reset(self) -> None:
        """Stateless — present for the FaultAdversary replay contract."""


def simplify_partition_atom(atom: Atom):
    """Strictly simpler variants of one partition atom, for the shrinker.

    A split with fewer nodes on the minority side is milder (fewer links
    cut); popcount strictly decreases, so per-atom simplification
    terminates.  Cuts and crashes have no internal structure — ddmin
    deletes them whole.
    """
    if atom[0] != SPLIT:
        return
    _, t, mask = atom
    if mask.bit_count() <= 1:
        return
    bit = 1
    while bit <= mask:
        if mask & bit:
            yield (SPLIT, t, mask & ~bit)
        bit <<= 1
