"""Parallel frontier expansion: workers prefetch, the parent folds.

The state-graph frontier (:class:`repro.core.stategraph._Frontier`) is a
classic FIFO breadth-first search whose per-state work — the
``enabled_actions``/``apply`` successor sweep — is a pure function of
the state.  That makes it shardable without touching the algorithm:

1. the parent takes the next batch of queue-head states;
2. workers compute each state's ``(action, successor)`` edge list and
   send it back (the **prefetch**) — successors encoded as worker-local
   dense ids plus an id-table *delta* of never-before-shipped states,
   so recurring states cross the process boundary once, not once per
   edge;
3. the parent decodes each delta against a per-worker mirror table,
   seeds the edge lists into the graph's successor memo and then runs
   the ordinary *serial* expansion over the batch — every
   ``transitions`` call is now a cache hit, so the fold is pure
   bookkeeping.

Because step 3 *is* the serial algorithm (same code, same order, same
budget charges), discovery order, parent maps, ``SearchBudgetExceeded``
cutoffs and :class:`~repro.core.budget.BudgetExceeded` overdrafts are
bit-identical to a serial run by construction.  Workers that die, stop
early (via the :class:`~repro.parallel.pool.SharedCounter` budget
fan-in) or return garbage for a state the parent never folds can only
waste time, never change an answer — on a cache miss the parent simply
computes the sweep itself.

Unpicklable automata degrade gracefully: if the pool cannot ship the
automaton or its states, the expansion falls back to serial.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..core.budget import BudgetMeter
from ..core.packed import StateInterner
from .pool import SharedCounter, WorkerPool, resolve_workers, split_chunks

# Per-worker process state, installed once by the pool initializer so the
# automaton is pickled per worker, not per task.  Each worker keeps its
# own StateInterner for the pool's lifetime: successor states are shipped
# back as worker-local dense ids plus a one-time id-table delta (the
# states interned since the worker's last send), so a state that recurs
# across edges and batches crosses the process boundary exactly once.
_WORKER = {
    "automaton": None, "counter": None, "max_states": None,
    "interner": None, "sent": 0,
}


def _init_worker(automaton, counter, max_states) -> None:
    _WORKER["automaton"] = automaton
    _WORKER["counter"] = counter
    _WORKER["max_states"] = max_states
    _WORKER["interner"] = StateInterner()
    _WORKER["sent"] = 0


def _expand_chunk(args: Tuple) -> Tuple:
    """Expand a chunk of states; return the id-encoded sweeps plus delta.

    The result is ``(worker, base, delta, rows)``: ``rows`` holds one
    ``(state_id, local_edges, input_edges)`` triple per expanded state
    with successors as worker-local ids, and ``delta`` is the id-table
    slice ``base <= id < base + len(delta)`` of states this worker has
    not shipped before.  Worker ids mean nothing to the parent's own
    interner — the parent keeps a per-worker mirror table and decodes at
    fold time, staying authoritative over its id space.

    Checks the shared counter between states and stops early once the
    fleet-wide aggregate passes ``max_states`` — the parent recomputes
    anything missing, so early stop is safe.
    """
    states, include_inputs = args
    automaton = _WORKER["automaton"]
    counter: Optional[SharedCounter] = _WORKER["counter"]
    max_states = _WORKER["max_states"]
    interner: StateInterner = _WORKER["interner"]
    intern = interner.intern
    rows: List[Tuple] = []
    for state in states:
        if counter is not None and counter.exceeded(max_states=max_states):
            break
        local = tuple(
            (action, intern(succ))
            for action in automaton.enabled_actions(state)
            for succ in automaton.apply(state, action)
        )
        input_edges = None
        if include_inputs:
            input_edges = tuple(
                (action, intern(succ))
                for action in automaton.signature.inputs
                for succ in automaton.apply(state, action)
            )
        if counter is not None:
            counter.add(steps=1, states=len(local) + len(input_edges or ()))
        rows.append((intern(state), local, input_edges))
    base = _WORKER["sent"]
    delta = interner.states()[base:]
    _WORKER["sent"] = base + len(delta)
    return (os.getpid(), base, delta, rows)


def _fold_prefetch(graph, mirrors: Dict[int, List], result: Tuple) -> None:
    """Decode one worker result against its mirror table and seed it.

    Deltas from one worker arrive in interning order (a worker handles
    its tasks sequentially), so the mirror either lines up exactly or —
    if a chunk went missing — the remaining results from that worker are
    undecodable and dropped: the serial fold recomputes those sweeps, so
    a gap costs time, never correctness.
    """
    worker, base, delta, rows = result
    mirror = mirrors.setdefault(worker, [])
    if len(mirror) != base:
        return
    mirror.extend(delta)
    for state_id, local, input_edges in rows:
        graph.seed_transitions(
            mirror[state_id],
            tuple((action, mirror[wid]) for action, wid in local),
            None if input_edges is None else tuple(
                (action, mirror[wid]) for action, wid in input_edges
            ),
        )


def expand_frontier_parallel(
    graph,
    include_inputs: bool = False,
    max_states: int = 100_000,
    meter: Optional[BudgetMeter] = None,
    workers=2,
    batch_size: Optional[int] = None,
) -> None:
    """Expand the graph's shared frontier to exhaustion, ``workers`` wide.

    Raises exactly what :meth:`_Frontier.expand_all` raises
    (:class:`~repro.core.errors.SearchBudgetExceeded` past ``max_states``,
    :class:`~repro.core.budget.BudgetExceeded` on meter overdraft), with
    the frontier left resumable in the identical intermediate state.
    """
    frontier = graph.frontier(include_inputs)
    nworkers = resolve_workers(workers)
    if nworkers == 1:
        frontier.expand_all(max_states, meter)
        return
    if batch_size is None:
        # Large batches amortize the per-round pool barrier; the fold
        # stays exact regardless of batch size, so this is tuning only.
        batch_size = max(64 * nworkers, 256)

    counter = SharedCounter()
    pool = None
    try:
        try:
            pool = WorkerPool(
                nworkers,
                initializer=_init_worker,
                initargs=(graph.automaton, counter, max_states),
            )
        except Exception:
            # Unpicklable automaton (or no multiprocessing): serial fallback.
            frontier.expand_all(max_states, meter)
            return
        if not frontier.started:
            frontier.start()
        mirrors: Dict[int, List] = {}
        while frontier.queue:
            batch = frontier.pending(batch_size)
            todo = [
                s for s in batch if not graph.has_transitions(s, include_inputs)
            ]
            if todo:
                try:
                    prefetched = pool.map(
                        _expand_chunk,
                        [(chunk, include_inputs)
                         for chunk in split_chunks(todo, nworkers)],
                        chunksize=1,
                    )
                except Exception:
                    # A broken pool (unpicklable states, killed worker)
                    # downgrades to serial for the rest of the expansion.
                    pool.shutdown()
                    pool = None
                    frontier.expand_all(max_states, meter)
                    return
                for chunk_result in prefetched:
                    _fold_prefetch(graph, mirrors, chunk_result)
            # The authoritative fold: the serial algorithm over a warm
            # cache.  Budget charges and overdrafts happen here, in the
            # exact order a serial run makes them.
            for _ in batch:
                frontier.expand_one(max_states, meter)
    finally:
        if pool is not None:
            pool.shutdown()
