"""The parallel execution fabric: multiprocess campaigns and exploration.

Every CPU-bound search in this repository — chaos campaigns, exhaustive
register-protocol enumeration, state-graph frontier expansion — is a
deterministic function of ``(protocol, inputs, adversary, seed)`` thanks
to the unified runtime's seed plumbing (:func:`repro.core.runtime.derive_seed`).
That makes the workloads embarrassingly parallel *and* checkable: the
work partitions into independent shards whose results merge
order-independently, exactly the property extension-based and FLP-style
proof reconstructions exploit when they explore independent branches of
the execution tree in any order.

The fabric has three layers:

* :mod:`repro.parallel.pool` — process-pool plumbing on the stdlib only
  (:class:`WorkerPool` over :class:`concurrent.futures.ProcessPoolExecutor`,
  a cross-process :class:`SharedCounter` for budget fan-in,
  :func:`resolve_workers`, :func:`split_chunks`);
* :mod:`repro.parallel.explore` — batched frontier **prefetch** for
  :class:`~repro.core.stategraph.StateGraph`: workers expand frontier
  states and return edge lists, the parent folds them into the memoized
  graph by re-running the *serial* expansion over the warmed cache, so
  discovery order, parent maps and budget accounting are bit-identical
  to a serial run by construction;
* consumers — :func:`repro.chaos.campaign.run_campaign`,
  :func:`repro.core.exploration.explore`,
  :meth:`repro.core.stategraph.StateGraph.reachable` and
  :func:`repro.registers.exhaustive.search_register_consensus` all take
  ``workers=N``.

The headline guarantee, enforced by ``tests/test_parallel_fabric.py``
and the golden-trace suite: **every result is bit-identical for
``workers=1`` and ``workers=N``**.  Parallelism is a pure wall-clock
optimization; it never changes an answer.
"""

from .explore import expand_frontier_parallel
from .pool import (
    SharedCounter,
    WorkerPool,
    resolve_workers,
    split_chunks,
)

__all__ = [
    "SharedCounter",
    "WorkerPool",
    "expand_frontier_parallel",
    "resolve_workers",
    "split_chunks",
]
