"""Process-pool plumbing for the parallel fabric (stdlib only).

Design rules, shared by every consumer:

* **The parent is authoritative.**  Workers only *compute*; the parent
  merges results in a deterministic order and does all budget accounting
  through the ordinary :class:`~repro.core.budget.BudgetMeter` calls the
  serial code path makes.  A slow, dead or early-stopped worker can cost
  wall-clock time, never correctness.
* **Shards are derived, not shared.**  A worker never receives mutable
  campaign state — only the immutable coordinates (target, index, seed
  policy) it needs to re-derive its shard from scratch via
  :func:`repro.core.runtime.derive_seed`.
* **Fork where possible.**  The ``fork`` start method inherits the
  loaded interpreter, so pools are cheap enough for test-sized work;
  platforms without it fall back to ``spawn`` transparently (everything
  shipped to workers is picklable).

:class:`SharedCounter` is the budget fan-in channel: workers add the
steps/states they burn to one cross-process account, so the parent can
observe aggregate spend while shards are in flight and workers can
stop early once the aggregate passes a limit — an *optimization* only,
since the parent re-charges its own meter deterministically during the
merge.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers) -> int:
    """Normalize a ``workers=`` argument to a concrete positive count.

    ``None``, ``0`` and ``1`` all mean serial; ``"auto"`` means one
    worker per available CPU.  Anything else must be a positive integer.
    """
    if workers in (None, 0, 1):
        return 1
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return count


def pool_context():
    """The multiprocessing context the fabric uses (fork when available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def split_chunks(items: Sequence[T], chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, ordered chunks.

    Contiguity is what keeps merges deterministic: concatenating the
    per-chunk results in chunk order reproduces the serial iteration
    order exactly.  Sizes differ by at most one; empty chunks are
    dropped.
    """
    if chunks < 1:
        raise ValueError(f"need at least one chunk, got {chunks}")
    n = len(items)
    size, remainder = divmod(n, chunks)
    out: List[List[T]] = []
    cursor = 0
    for i in range(chunks):
        width = size + (1 if i < remainder else 0)
        if width == 0:
            continue
        out.append(list(items[cursor:cursor + width]))
        cursor += width
    return out


class SharedCounter:
    """A cross-process (steps, states) account for budget fan-in.

    Workers :meth:`add` what they burn; the parent (or any worker)
    reads :meth:`snapshot` and :meth:`exceeded`.  Backed by two
    lock-protected ``multiprocessing.Value`` cells, inherited by pool
    workers through the process-creation channel (pass the counter via
    ``initargs``, never through a task submission).
    """

    def __init__(self, ctx=None):
        ctx = ctx if ctx is not None else pool_context()
        self._lock = ctx.Lock()
        self._steps = ctx.Value("q", 0, lock=False)
        self._states = ctx.Value("q", 0, lock=False)

    def add(self, steps: int = 0, states: int = 0) -> None:
        with self._lock:
            self._steps.value += steps
            self._states.value += states

    def snapshot(self) -> dict:
        with self._lock:
            return {"steps": self._steps.value, "states": self._states.value}

    def exceeded(
        self,
        max_steps: Optional[int] = None,
        max_states: Optional[int] = None,
    ) -> bool:
        """Has the aggregate spend passed either limit?

        Workers poll this to stop early once the *fleet* has spent the
        budget, even if their own shard is still cheap.  Advisory only:
        the parent's deterministic meter is what actually raises.
        """
        spent = self.snapshot()
        if max_steps is not None and spent["steps"] >= max_steps:
            return True
        if max_states is not None and spent["states"] >= max_states:
            return True
        return False


def _run_chunk(fn: Callable[[T], R], batch: List[T]) -> List[R]:
    """Worker-side body of one :meth:`WorkerPool.map_stream` chunk."""
    return [fn(item) for item in batch]


class WorkerPool:
    """A process pool with a serial in-process fallback at ``workers=1``.

    At ``workers=1`` no subprocess is created and :meth:`map` is a plain
    loop (the initializer runs in-process), so consumers write one code
    path and serial callers pay zero fabric overhead.  Use as a context
    manager; exit shuts the pool down and waits for the workers.
    """

    def __init__(
        self,
        workers,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ):
        self.workers = resolve_workers(workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        if self.workers > 1:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=pool_context(),
                initializer=initializer,
                initargs=initargs,
            )
        elif initializer is not None:
            initializer(*initargs)

    @property
    def parallel(self) -> bool:
        return self._executor is not None

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        chunksize: Optional[int] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item, preserving submission order.

        Ordered results are the merge-determinism primitive: consumers
        feed shards in serial order and fold the returned list left to
        right.
        """
        items = list(items)
        if self._executor is None:
            return [fn(item) for item in items]
        if chunksize is None:
            chunksize = max(1, len(items) // (self.workers * 4))
        return list(self._executor.map(fn, items, chunksize=chunksize))

    def map_stream(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        window: Optional[int] = None,
        chunk: int = 1,
    ) -> Iterator[Tuple[T, R]]:
        """Apply ``fn`` to a (possibly unbounded) stream, yielding
        ``(item, result)`` pairs in submission order.

        The constant-memory sibling of :meth:`map`: instead of
        materializing every input and every result, at most ``window``
        chunks of ``chunk`` items are in flight at once — the input
        iterator is pulled lazily as results drain, so a million-case
        campaign holds a few hundred cases in memory, never the campaign.
        Order is preserved by construction (a FIFO of futures), which is
        what lets the parent fold worker outcomes exactly as a serial
        loop would — the streaming form of the parent-is-authoritative
        merge.

        At ``workers=1`` this degenerates to a plain generator loop with
        zero fabric overhead, so serial and parallel callers share one
        code path.
        """
        items = iter(items)
        if self._executor is None:
            for item in items:
                yield item, fn(item)
            return
        window = window if window is not None else 2 * self.workers
        if window < 1 or chunk < 1:
            raise ValueError(
                f"window and chunk must be >= 1, got {window}, {chunk}"
            )
        pending: deque = deque()

        def submit_next() -> bool:
            batch = list(itertools.islice(items, chunk))
            if not batch:
                return False
            pending.append(
                (batch, self._executor.submit(_run_chunk, fn, batch))
            )
            return True

        for _ in range(window):
            if not submit_next():
                break
        while pending:
            batch, future = pending.popleft()
            results = future.result()
            # Refill before yielding so workers stay busy while the
            # parent folds this chunk.
            submit_next()
            yield from zip(batch, results)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
