"""Clock synchronization and the epsilon(1 - 1/n) bound (§2.2.6, [77]).

Lundelius and Lynch: on a complete graph of n processes whose message
delays are known only to within an uncertainty interval of width epsilon,
no algorithm can synchronize logical clocks closer than
epsilon * (1 - 1/n) — and averaging the estimated differences achieves
exactly that.  The lower bound is a *diagram stretching* argument: shift
one process's clock and retune the delays; nobody can tell, so the
adjusted clocks shift too.

The model: process i has hardware clock H_i(t) = t + offset_i (drift-free
for this bound); each ordered pair (i, j) has a fixed delay
delta_ij in [0, epsilon]; at hardware time 0 every process broadcasts a
timestamped reading.  Process j's *observation* of i is the local receive
time of that reading — everything an algorithm may use.

An algorithm is a function from observations to a per-process correction;
:func:`lundelius_lynch_algorithm` is the optimal midpoint-averaging one.
:func:`worst_case_skew` measures an algorithm's real worst case over all
corner delay assignments; :func:`shifted_executions` mechanizes the
stretching argument, delivering pairs of indistinguishable executions
whose existence forces the bound on *every* algorithm.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.errors import ModelError

# observations[j][i] = local (hardware) time at which j received i's
# hardware-time-0 broadcast; observations[j][j] = 0.0 by convention.
Observations = Tuple[Tuple[float, ...], ...]
Algorithm = Callable[[int, Observations, float], Sequence[float]]
# signature: (n, observations, epsilon) -> corrections per process


@dataclass
class ClockSyncRun:
    """One execution: true offsets, delays, observations, corrections."""

    n: int
    epsilon: float
    offsets: Tuple[float, ...]
    delays: Dict[Tuple[int, int], float]
    observations: Observations
    corrections: Tuple[float, ...]

    @property
    def adjusted_offsets(self) -> Tuple[float, ...]:
        """The adjusted clock of i is H_i + corr_i = t + offset_i + corr_i."""
        return tuple(
            o + c for o, c in zip(self.offsets, self.corrections)
        )

    @property
    def skew(self) -> float:
        adjusted = self.adjusted_offsets
        return max(adjusted) - min(adjusted)


def observe(
    n: int,
    offsets: Sequence[float],
    delays: Dict[Tuple[int, int], float],
    epsilon: float,
) -> Observations:
    """Compute each process's observations of the time-0 broadcasts.

    Process i sends when H_i = 0, i.e. at real time -offset_i; process j
    receives at real time -offset_i + delay_ij, which reads
    -offset_i + delay_ij + offset_j on j's hardware clock.
    """
    rows: List[Tuple[float, ...]] = []
    for j in range(n):
        row = []
        for i in range(n):
            if i == j:
                row.append(0.0)
                continue
            delay = delays[(i, j)]
            if not -1e-12 <= delay <= epsilon + 1e-12:
                raise ModelError(
                    f"delay {delay} outside [0, {epsilon}] for pair {(i, j)}"
                )
            row.append(-offsets[i] + delay + offsets[j])
        rows.append(tuple(row))
    return tuple(rows)


def run_clock_sync(
    algorithm: Algorithm,
    offsets: Sequence[float],
    delays: Dict[Tuple[int, int], float],
    epsilon: float,
) -> ClockSyncRun:
    n = len(offsets)
    observations = observe(n, offsets, delays, epsilon)
    corrections = tuple(algorithm(n, observations, epsilon))
    if len(corrections) != n:
        raise ModelError("algorithm must return one correction per process")
    return ClockSyncRun(
        n=n,
        epsilon=epsilon,
        offsets=tuple(offsets),
        delays=dict(delays),
        observations=observations,
        corrections=corrections,
    )


# ---------------------------------------------------------------------------
# Algorithms
# ---------------------------------------------------------------------------


def lundelius_lynch_algorithm(
    n: int, observations: Observations, epsilon: float
) -> List[float]:
    """Midpoint difference estimation plus averaging: the optimal algorithm.

    j estimates (offset_i - offset_j) as (epsilon/2 - L_ji) where L_ji is
    the local receive time: the estimate errs by at most epsilon/2.  The
    correction is the average estimated difference to all processes
    (including the zero estimate of itself), which brings the worst-case
    skew down to epsilon * (1 - 1/n).
    """
    corrections = []
    for j in range(n):
        estimates = [0.0]  # difference to self
        for i in range(n):
            if i == j:
                continue
            estimates.append(epsilon / 2.0 - observations[j][i])
        corrections.append(sum(estimates) / n)
    return corrections


def follow_zero_algorithm(
    n: int, observations: Observations, epsilon: float
) -> List[float]:
    """The naive baseline: everyone adopts its estimate of process 0.

    Worst-case skew epsilon (a factor 1/(1-1/n) worse than optimal): the
    estimation errors of two followers can point in opposite directions.
    """
    corrections = [0.0]
    for j in range(1, n):
        corrections.append(epsilon / 2.0 - observations[j][0])
    return corrections


def do_nothing_algorithm(
    n: int, observations: Observations, epsilon: float
) -> List[float]:
    """No synchronization at all; skew = spread of the true offsets."""
    return [0.0] * n


# ---------------------------------------------------------------------------
# Measurement and the stretching lower bound
# ---------------------------------------------------------------------------


def corner_delay_assignments(n: int, epsilon: float):
    """Every assignment with each directed delay at 0 or epsilon.

    The worst case of any algorithm that is monotone in the observations
    is attained at a corner, so this search is exact for our algorithms.
    """
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    for bits in itertools.product((0.0, epsilon), repeat=len(pairs)):
        yield dict(zip(pairs, bits))


def worst_case_skew(
    algorithm: Algorithm, n: int, epsilon: float = 1.0
) -> float:
    """The algorithm's exact worst-case skew over corner delay assignments
    (true offsets zero — corrections are what create skew)."""
    worst = 0.0
    offsets = [0.0] * n
    for delays in corner_delay_assignments(n, epsilon):
        run = run_clock_sync(algorithm, offsets, delays, epsilon)
        worst = max(worst, run.skew)
    return worst


def shifted_executions(
    algorithm: Algorithm, n: int, epsilon: float, shifted: int
) -> Tuple[ClockSyncRun, ClockSyncRun]:
    """The stretching argument's pair of indistinguishable executions.

    Execution A: process ``shifted`` has offset 0, its outgoing delays are
    0 and incoming delays epsilon.  Execution B: its offset is +epsilon,
    outgoing delays epsilon, incoming 0.  Every observation is identical
    (the engine asserts it), so the algorithm computes the same
    corrections — but the true offset moved by epsilon, so the adjusted
    clocks cannot be tight in both executions.
    """
    half = epsilon / 2.0
    offsets_a = [0.0] * n
    offsets_b = [0.0] * n
    offsets_b[shifted] = epsilon
    delays_a: Dict[Tuple[int, int], float] = {}
    delays_b: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if i == shifted:
                delays_a[(i, j)], delays_b[(i, j)] = 0.0, epsilon
            elif j == shifted:
                delays_a[(i, j)], delays_b[(i, j)] = epsilon, 0.0
            else:
                delays_a[(i, j)] = delays_b[(i, j)] = half
    run_a = run_clock_sync(algorithm, offsets_a, delays_a, epsilon)
    run_b = run_clock_sync(algorithm, offsets_b, delays_b, epsilon)
    if run_a.observations != run_b.observations:
        raise ModelError("shifted executions are distinguishable — engine bug")
    return run_a, run_b


def stretching_bound(algorithm: Algorithm, n: int, epsilon: float = 1.0
                     ) -> float:
    """A lower bound on the algorithm's worst-case skew from shifting.

    For each process, the shifted pair forces skew >= epsilon/2 in one of
    the two executions (the ``shifted`` clock moved epsilon while every
    correction stayed put).  Returns the strongest bound found — for every
    algorithm whatsoever this is at least epsilon/2, and the full chain
    over all processes yields the epsilon(1 - 1/n) of [77].
    """
    forced = 0.0
    for shifted in range(n):
        run_a, run_b = shifted_executions(algorithm, n, epsilon, shifted)
        forced = max(forced, max(run_a.skew, run_b.skew, epsilon / 2.0))
    return forced


def optimal_bound(n: int, epsilon: float = 1.0) -> float:
    """The paper's tight bound: epsilon * (1 - 1/n)."""
    return epsilon * (1.0 - 1.0 / n)
