"""Clocks: logical time and clock synchronization bounds (survey §2.2.6)."""

from .logical import (
    Computation,
    Event,
    check_clock_condition,
    check_vector_condition,
    vector_less,
)
from .sync import (
    Algorithm,
    ClockSyncRun,
    corner_delay_assignments,
    do_nothing_algorithm,
    follow_zero_algorithm,
    lundelius_lynch_algorithm,
    observe,
    optimal_bound,
    run_clock_sync,
    shifted_executions,
    stretching_bound,
    worst_case_skew,
)

__all__ = [
    "Event",
    "Computation",
    "check_clock_condition",
    "check_vector_condition",
    "vector_less",
    "Algorithm",
    "ClockSyncRun",
    "observe",
    "run_clock_sync",
    "lundelius_lynch_algorithm",
    "follow_zero_algorithm",
    "do_nothing_algorithm",
    "corner_delay_assignments",
    "worst_case_skew",
    "shifted_executions",
    "stretching_bound",
    "optimal_bound",
]
