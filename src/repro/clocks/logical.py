"""Logical time: Lamport clocks, vector clocks, happens-before.

Lamport's logical clocks [74] are the survey's recurring tool — Welch's
reducibility from the FLP result to shared-register impossibility uses a
fault-tolerant version of them.  This module implements the happens-before
partial order over a distributed computation, Lamport timestamps (clock
condition: e -> f implies C(e) < C(f)) and vector clocks (the biconditional
version), with checkers for both conditions.

A computation is a sequence of events; each event is local, a send, or a
receive naming the send it matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set

from ..core.errors import ModelError


@dataclass(frozen=True)
class Event:
    """One event of a distributed computation.

    ``kind`` is "local", "send" or "recv"; ``message`` identifies the
    message for send/recv matching (each message sent once, received at
    most once).
    """

    process: Hashable
    index: int  # position within its process (0-based)
    kind: str
    message: Optional[Hashable] = None

    def __post_init__(self):
        if self.kind not in ("local", "send", "recv"):
            raise ModelError(f"unknown event kind {self.kind!r}")
        if self.kind in ("send", "recv") and self.message is None:
            raise ModelError("send/recv events need a message id")


class Computation:
    """A distributed computation: per-process event sequences."""

    def __init__(self, events: Sequence[Event]):
        self.events = list(events)
        self._by_process: Dict[Hashable, List[Event]] = {}
        senders: Dict[Hashable, Event] = {}
        receivers: Dict[Hashable, Event] = {}
        for event in self.events:
            seq = self._by_process.setdefault(event.process, [])
            if event.index != len(seq):
                raise ModelError(
                    f"events of process {event.process!r} must appear in "
                    f"index order; got index {event.index}, expected {len(seq)}"
                )
            seq.append(event)
            if event.kind == "send":
                if event.message in senders:
                    raise ModelError(f"message {event.message!r} sent twice")
                senders[event.message] = event
            elif event.kind == "recv":
                if event.message in receivers:
                    raise ModelError(f"message {event.message!r} received twice")
                receivers[event.message] = event
        for message, recv in receivers.items():
            if message not in senders:
                raise ModelError(f"message {message!r} received but never sent")
        self.senders = senders
        self.receivers = receivers

    @property
    def processes(self) -> List[Hashable]:
        return sorted(self._by_process, key=repr)

    def process_events(self, process: Hashable) -> List[Event]:
        return self._by_process.get(process, [])

    # -- happens-before -----------------------------------------------------

    def direct_predecessors(self, event: Event) -> List[Event]:
        preds: List[Event] = []
        if event.index > 0:
            preds.append(self._by_process[event.process][event.index - 1])
        if event.kind == "recv":
            preds.append(self.senders[event.message])
        return preds

    def happens_before(self, a: Event, b: Event) -> bool:
        """Lamport's irreflexive partial order: a -> b."""
        if a == b:
            return False
        stack = [b]
        seen: Set[Event] = set()
        while stack:
            current = stack.pop()
            for pred in self.direct_predecessors(current):
                if pred == a:
                    return True
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return False

    def concurrent(self, a: Event, b: Event) -> bool:
        return (
            a != b
            and not self.happens_before(a, b)
            and not self.happens_before(b, a)
        )

    # -- clocks --------------------------------------------------------------

    def lamport_timestamps(self) -> Dict[Event, int]:
        """Lamport clocks: C(e) = 1 + max over direct predecessors."""
        stamps: Dict[Event, int] = {}

        def stamp(event: Event) -> int:
            if event in stamps:
                return stamps[event]
            preds = self.direct_predecessors(event)
            value = 1 + max((stamp(p) for p in preds), default=0)
            stamps[event] = value
            return value

        for event in self.events:
            stamp(event)
        return stamps

    def vector_clocks(self) -> Dict[Event, Dict[Hashable, int]]:
        """Vector clocks: the happens-before-complete timestamps."""
        processes = self.processes
        clocks: Dict[Event, Dict[Hashable, int]] = {}

        def clock(event: Event) -> Dict[Hashable, int]:
            if event in clocks:
                return clocks[event]
            vector = {p: 0 for p in processes}
            for pred in self.direct_predecessors(event):
                for p, v in clock(pred).items():
                    vector[p] = max(vector[p], v)
            vector[event.process] += 1
            clocks[event] = vector
            return vector

        for event in self.events:
            clock(event)
        return clocks


def vector_less(a: Dict, b: Dict) -> bool:
    """Strict vector order: a <= b pointwise and a != b."""
    return all(a[k] <= b[k] for k in a) and a != b


def check_clock_condition(computation: Computation) -> bool:
    """e -> f implies C(e) < C(f) for Lamport timestamps."""
    stamps = computation.lamport_timestamps()
    for a in computation.events:
        for b in computation.events:
            if computation.happens_before(a, b) and not stamps[a] < stamps[b]:
                return False
    return True


def check_vector_condition(computation: Computation) -> bool:
    """e -> f iff V(e) < V(f) for vector clocks (the biconditional)."""
    clocks = computation.vector_clocks()
    for a in computation.events:
        for b in computation.events:
            if a == b:
                continue
            if computation.happens_before(a, b) != vector_less(clocks[a], clocks[b]):
                return False
    return True
