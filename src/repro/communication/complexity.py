"""Two-party communication complexity (§2.6, Yao [103]).

The survey's last catalogue entry: lower bounds on the number of bits two
parties must exchange to compute a function of their distributed inputs,
proved by information-theoretic arguments.  For the small functions we
treat, everything is *exactly* computable:

* :func:`exact_complexity` — the true deterministic communication
  complexity, by exhaustive search over protocol trees (memoized
  recursion over combinatorial rectangles);
* :func:`fooling_set_bound` — the classic lower bound log2 of the largest
  fooling set (found exactly for small matrices);
* :func:`log_rank_bound` — the rank lower bound ceil(log2 rank(M));
* :func:`trivial_upper_bound` — send-everything, as the baseline.

The bundled functions (equality, greater-than, parity, constant) exhibit
the bounds' separations: EQ on k bits costs exactly k+1, matching its
2^k fooling set, while parity costs 2 regardless of input size.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..core.errors import ModelError

Matrix = Tuple[Tuple[int, ...], ...]  # M[x][y] = f(x, y)


def function_matrix(
    f: Callable[[int, int], int], x_size: int, y_size: int
) -> Matrix:
    return tuple(
        tuple(f(x, y) for y in range(y_size)) for x in range(x_size)
    )


# ---------------------------------------------------------------------------
# Exact deterministic complexity via protocol-tree search
# ---------------------------------------------------------------------------


def exact_complexity(matrix: Matrix) -> int:
    """The deterministic communication complexity of the matrix.

    A protocol is a binary tree: at each node one party announces one bit
    (any function of its input), splitting its side of the current
    rectangle; leaves must be monochromatic.  Cost = tree depth = bits
    exchanged in the worst case.  Exhaustive over all bipartitions with
    memoization on rectangles — exponential, but exact, and fine for the
    at-most-8x8 matrices the tests use.
    """
    x_all = frozenset(range(len(matrix)))
    y_all = frozenset(range(len(matrix[0])))

    @lru_cache(maxsize=None)
    def cost(xs: FrozenSet[int], ys: FrozenSet[int]) -> int:
        values = {matrix[x][y] for x in xs for y in ys}
        if len(values) <= 1:
            return 0
        best = math.inf
        # Alice speaks: any bipartition of xs into (part, xs - part).
        best = min(best, _best_split(xs, lambda part: max(
            cost(part, ys), cost(xs - part, ys))))
        # Bob speaks.
        best = min(best, _best_split(ys, lambda part: max(
            cost(xs, part), cost(xs, ys - part))))
        return 1 + int(best)

    def _best_split(side: FrozenSet[int], rec) -> float:
        items = sorted(side)
        best = math.inf
        # Nontrivial bipartitions; fixing items[0]'s side halves the work.
        for mask in range(2 ** (len(items) - 1)):
            part = frozenset(
                [items[0]] + [items[i] for i in range(1, len(items))
                              if (mask >> (i - 1)) & 1]
            )
            if part == side:
                continue
            best = min(best, rec(part))
        return best

    return cost(x_all, y_all)


# ---------------------------------------------------------------------------
# Lower bounds
# ---------------------------------------------------------------------------


def largest_fooling_set(matrix: Matrix, value: Optional[int] = None
                        ) -> List[Tuple[int, int]]:
    """The largest fooling set, exactly (branch and bound over cells).

    A fooling set for value v: cells (x, y) with M[x][y] = v such that for
    any two of them, at least one of the crossed cells differs from v.
    """
    best: List[Tuple[int, int]] = []
    values = {matrix[x][y] for x in range(len(matrix))
              for y in range(len(matrix[0]))}
    targets = [value] if value is not None else sorted(values)
    for v in targets:
        cells = [
            (x, y)
            for x in range(len(matrix))
            for y in range(len(matrix[0]))
            if matrix[x][y] == v
        ]

        def compatible(a, b):
            (x1, y1), (x2, y2) = a, b
            return matrix[x1][y2] != v or matrix[x2][y1] != v

        current: List[Tuple[int, int]] = []

        def extend(start: int) -> None:
            nonlocal best
            if len(current) > len(best):
                best = list(current)
            for i in range(start, len(cells)):
                cell = cells[i]
                if all(compatible(cell, other) for other in current):
                    current.append(cell)
                    extend(i + 1)
                    current.pop()

        extend(0)
    return best


def fooling_set_bound(matrix: Matrix) -> int:
    """D(f) >= ceil(log2 |fooling set|)."""
    size = len(largest_fooling_set(matrix))
    return math.ceil(math.log2(size)) if size > 1 else 0


def log_rank_bound(matrix: Matrix) -> int:
    """D(f) >= ceil(log2 rank(M)) over the reals."""
    rank = int(np.linalg.matrix_rank(np.array(matrix, dtype=float)))
    return math.ceil(math.log2(rank)) if rank > 1 else 0


def trivial_upper_bound(matrix: Matrix) -> int:
    """Alice sends her whole input; Bob replies with the answer bit(s)."""
    x_bits = math.ceil(math.log2(len(matrix))) if len(matrix) > 1 else 0
    values = {matrix[x][y] for x in range(len(matrix))
              for y in range(len(matrix[0]))}
    answer_bits = math.ceil(math.log2(len(values))) if len(values) > 1 else 0
    return x_bits + answer_bits


# ---------------------------------------------------------------------------
# The standard functions
# ---------------------------------------------------------------------------


def equality_matrix(bits: int) -> Matrix:
    size = 2 ** bits
    return function_matrix(lambda x, y: int(x == y), size, size)


def greater_than_matrix(bits: int) -> Matrix:
    size = 2 ** bits
    return function_matrix(lambda x, y: int(x > y), size, size)


def parity_matrix(bits: int) -> Matrix:
    size = 2 ** bits
    return function_matrix(
        lambda x, y: (bin(x).count("1") + bin(y).count("1")) % 2, size, size
    )


def constant_matrix(bits: int) -> Matrix:
    size = 2 ** bits
    return function_matrix(lambda x, y: 0, size, size)


def complexity_report(matrix: Matrix) -> Dict[str, int]:
    """All bounds side by side; raises if they are mutually inconsistent."""
    exact = exact_complexity(matrix)
    fooling = fooling_set_bound(matrix)
    rank = log_rank_bound(matrix)
    trivial = trivial_upper_bound(matrix)
    if not (fooling <= exact and rank <= exact <= trivial):
        raise ModelError(
            f"bound sandwich violated: fooling {fooling}, rank {rank}, "
            f"exact {exact}, trivial {trivial}"
        )
    return {
        "fooling_bound": fooling,
        "log_rank_bound": rank,
        "exact": exact,
        "trivial_upper": trivial,
    }
