"""Two-party communication complexity (survey §2.6, Yao [103])."""

from .complexity import (
    complexity_report,
    constant_matrix,
    equality_matrix,
    exact_complexity,
    fooling_set_bound,
    function_matrix,
    greater_than_matrix,
    largest_fooling_set,
    log_rank_bound,
    parity_matrix,
    trivial_upper_bound,
)

__all__ = [
    "function_matrix",
    "exact_complexity",
    "largest_fooling_set",
    "fooling_set_bound",
    "log_rank_bound",
    "trivial_upper_bound",
    "complexity_report",
    "equality_matrix",
    "greater_than_matrix",
    "parity_matrix",
    "constant_matrix",
]
