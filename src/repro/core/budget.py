"""Resource budgets: bounded exploration that degrades gracefully.

Every search in this repository — state-graph expansion, exhaustive
protocol enumeration, adversary-fuzzing campaigns — is in principle
unbounded: the interesting questions live right at the edge of what a
machine can enumerate.  A :class:`Budget` makes the edge explicit.  It
caps three resources:

* ``max_steps`` — simulation steps / candidate checks / campaign runs;
* ``max_states`` — distinct states a graph exploration may discover;
* ``max_seconds`` — wall-clock time.

A budget is an immutable *policy*; calling :meth:`Budget.meter` starts a
:class:`BudgetMeter` — the mutable *account* a single activity charges
against.  When a charge overdraws the account the meter raises
:class:`BudgetExceeded`, and every budget-aware consumer is written so
that the abort is **graceful and resumable**: explorations return a
partial result whose shared frontier picks up exactly where the budget
ran out (see :func:`repro.core.exploration.explore`), exhaustive searches
return a census with a resume cursor, and chaos campaigns return a
partial report carrying per-target resume indices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from .errors import SearchBudgetExceeded


class BudgetExceeded(SearchBudgetExceeded):
    """A budgeted activity overdrew one of its capped resources.

    Carries which ``resource`` overflowed (``"steps"``, ``"states"`` or
    ``"seconds"``), how much was ``spent`` and what the ``limit`` was, so
    callers can report the abort structurally instead of parsing a
    message.  Subclasses :class:`SearchBudgetExceeded`, so existing
    ``except SearchBudgetExceeded`` handlers keep working.
    """

    def __init__(self, resource: str, spent, limit, context: str = ""):
        self.resource = resource
        self.spent = spent
        self.limit = limit
        self.context = context
        where = f" in {context}" if context else ""
        super().__init__(
            f"budget exceeded{where}: {resource} spent {spent} > limit {limit}"
        )


@dataclass(frozen=True)
class Budget:
    """An immutable cap on steps, states and wall-clock seconds.

    ``None`` means "unlimited" for that resource; ``Budget()`` is the
    unlimited budget (a meter on it never raises).
    """

    max_steps: Optional[int] = None
    max_states: Optional[int] = None
    max_seconds: Optional[float] = None

    @property
    def unlimited(self) -> bool:
        return (
            self.max_steps is None
            and self.max_states is None
            and self.max_seconds is None
        )

    def meter(self, context: str = "") -> "BudgetMeter":
        """Open a fresh account against this budget."""
        return BudgetMeter(self, context)


class BudgetMeter:
    """The running account of one budgeted activity.

    Consumers call :meth:`charge_steps` / :meth:`charge_states` as they
    work and :meth:`check_time` at loop heads; any of the three raises
    :class:`BudgetExceeded` on overdraft.  The clock starts when the
    meter is created.
    """

    __slots__ = ("budget", "context", "steps", "states", "_started")

    def __init__(self, budget: Budget, context: str = ""):
        self.budget = budget
        self.context = context
        self.steps = 0
        self.states = 0
        self._started = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def check_time(self) -> None:
        limit = self.budget.max_seconds
        if limit is not None and self.elapsed > limit:
            raise BudgetExceeded(
                "seconds", round(self.elapsed, 3), limit, self.context
            )

    def charge_steps(self, k: int = 1) -> None:
        self.steps += k
        limit = self.budget.max_steps
        if limit is not None and self.steps > limit:
            raise BudgetExceeded("steps", self.steps, limit, self.context)
        self.check_time()

    def charge_states(self, k: int = 1) -> None:
        self.states += k
        limit = self.budget.max_states
        if limit is not None and self.states > limit:
            raise BudgetExceeded("states", self.states, limit, self.context)
        self.check_time()

    def snapshot(self) -> Dict[str, float]:
        """What has been spent so far (for reports and partial results)."""
        return {
            "steps": self.steps,
            "states": self.states,
            "seconds": round(self.elapsed, 3),
        }

    def throughput(self) -> Dict[str, float]:
        """Spend *rates* since the meter opened (steps/s, states/s).

        The accounting behind "cases per second" in mega-campaign reports
        and the BENCH trajectory: a campaign charges one step per case,
        so the campaign meter's step rate *is* campaign throughput.  The
        clock always runs (not only under a wall-clock cap), so any meter
        doubles as a throughput probe.
        """
        dt = self.elapsed
        if dt <= 0:
            return {"steps_per_s": 0.0, "states_per_s": 0.0, "seconds": 0.0}
        return {
            "steps_per_s": round(self.steps / dt, 3),
            "states_per_s": round(self.states / dt, 3),
            "seconds": round(dt, 3),
        }

    def absorb(self, spent: Dict[str, float]) -> None:
        """Fan a worker's spend into this account (parallel budget fan-in).

        ``spent`` is a :meth:`snapshot`-shaped mapping (or a
        :class:`~repro.parallel.pool.SharedCounter` snapshot); steps and
        states are charged in one lump each, so an overdraft raises the
        same structured :class:`BudgetExceeded` a serial run would —
        wall-clock seconds stay this meter's own (parent) clock.
        """
        steps = int(spent.get("steps", 0))
        states = int(spent.get("states", 0))
        if steps:
            self.charge_steps(steps)
        if states:
            self.charge_states(states)
        if not steps and not states:
            self.check_time()
