"""Bit-packed state engine: dense integer state ids + CSR adjacency.

Every exhaustive argument in this repository — FLP bivalence, the E1/E2
register-protocol searches, backward-closure valency labelling — is a
graph computation over configurations.  Configurations are frozen
dicts/tuples, and hashing and (deep) equality of those structures
dominate the hot-loop profile: each ``succ in seen`` probe hashes a
nested tuple tree.

This module is the cure.  A :class:`StateInterner` hash-conses each
frozen state **once**, assigning it a dense integer id; a
:class:`PackedGraph` stores successor adjacency as CSR rows in one flat
``array('q')``.  Everything downstream — reachability, SCC passes,
valency labelling, dedup sets — then runs over small integers: set
probes hash machine words, visited sets become flat arrays indexed by
id, and adjacency scans are contiguous memory.

Id lifetime rules:

* ids are **dense** (0, 1, 2, ... in interning order) and **stable for
  the lifetime of the interner** — an id is never reassigned;
* ids are **local to one interner** (one per :class:`~repro.core.stategraph.StateGraph`
  / transition cache); they must never be compared across interners —
  ship the frozen state (or an explicit id-table delta, see
  :mod:`repro.parallel.explore`) across that boundary;
* :meth:`StateInterner.clear` resets the id space; every packed
  structure holding ids from it must be dropped with it (the owning
  graph does this, see ``clear_intern_table``).
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

UNEXPANDED = -1


class StateInterner:
    """A bidirectional frozen-state <-> dense-integer-id map.

    ``intern`` is the only way ids are born: the first interning of a
    state assigns the next dense id, later calls return the same id via
    one dict probe (the *last* time the deep structure is hashed).
    ``state_of`` is a plain list index, so the id -> state direction is
    free — which is what lets hot loops carry ids and convert back to
    frozen states only at API boundaries.
    """

    __slots__ = ("_ids", "_states", "hits", "misses")

    def __init__(self) -> None:
        self._ids: Dict[Any, int] = {}
        self._states: List[Any] = []
        self.hits = 0
        self.misses = 0

    def intern(self, state: Any) -> int:
        """The dense id of ``state``, assigning the next one if new."""
        sid = self._ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._ids[state] = sid
            self._states.append(state)
            self.misses += 1
        else:
            self.hits += 1
        return sid

    def id_of(self, state: Any) -> Optional[int]:
        """The id of ``state`` if it has been interned, else None."""
        return self._ids.get(state)

    def state_of(self, sid: int) -> Any:
        """The canonical state behind ``sid`` (a list index)."""
        return self._states[sid]

    def states(self) -> List[Any]:
        """The id -> state table itself (index = id).  Do not mutate."""
        return self._states

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state: Any) -> bool:
        return state in self._ids

    def clear(self) -> None:
        """Reset the id space.  Invalidates every id ever issued."""
        self._ids.clear()
        self._states.clear()
        self.hits = 0
        self.misses = 0

    def bulk_load(self, states: Iterable[Any]) -> None:
        """Restore an id -> state table saved from another process.

        Only valid on an empty interner: ids are positional, so the
        restored table must *be* the id space, not extend one.  Counts
        neither hits nor misses — a restore is cache plumbing, not live
        interning, and the counters stay meaningful as "work this
        process did".
        """
        if self._states:
            raise ValueError(
                f"bulk_load needs an empty interner, found {len(self._states)} "
                "states already interned"
            )
        for state in states:
            self._ids[state] = len(self._states)
            self._states.append(state)

    @property
    def stats(self) -> Dict[str, Any]:
        probes = self.hits + self.misses
        return {
            "size": len(self._states),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / probes) if probes else 0.0,
        }


class PackedGraph:
    """CSR successor adjacency over interned state ids.

    Each state's successor sweep is appended exactly once as one
    contiguous row of the flat ``array('q')`` successor array; per-id
    ``(start, end)`` offsets live in parallel ``array('q')`` columns
    (``-1`` = not yet expanded).  Edge labels (actions / events) are
    Python objects in one flat list aligned index-for-index with the
    successor array, so ``labels[start:end]`` and ``succ[start:end]``
    describe the same edges.

    Rows are immutable once recorded — the same append-once discipline
    the frozen-path memo tables had, now costing ~16 bytes of offsets
    plus 8 bytes per edge instead of a dict slot and a tuple of tuples.
    """

    __slots__ = ("interner", "_succ", "_labels", "_start", "_end", "rows")

    def __init__(self, interner: Optional[StateInterner] = None):
        self.interner = interner if interner is not None else StateInterner()
        self._succ = array("q")
        self._labels: List[Any] = []
        self._start = array("q")
        self._end = array("q")
        self.rows = 0

    # -- row bookkeeping ---------------------------------------------------

    def _ensure_slot(self, sid: int) -> None:
        start = self._start
        if sid < len(start):
            return
        grow = sid + 1 - len(start)
        start.extend([UNEXPANDED] * grow)
        self._end.extend([UNEXPANDED] * grow)

    def is_expanded(self, sid: int) -> bool:
        return sid < len(self._start) and self._start[sid] != UNEXPANDED

    def add_row(
        self, sid: int, labels: Iterable[Any], succ_ids: Iterable[int]
    ) -> None:
        """Record ``sid``'s full successor sweep (append-once).

        ``labels`` and ``succ_ids`` must be aligned.  A second add for
        the same id is ignored — first sweep wins, matching the
        prefetch-tolerant memo discipline of the frontier fold.
        """
        self._ensure_slot(sid)
        if self._start[sid] != UNEXPANDED:
            return
        begin = len(self._succ)
        self._succ.extend(succ_ids)
        self._labels.extend(labels)
        if len(self._labels) != len(self._succ):
            # Misaligned row: roll back to keep the CSR invariant.
            del self._succ[begin:]
            del self._labels[begin:]
            raise ValueError("labels and successor ids must have equal length")
        self._start[sid] = begin
        self._end[sid] = len(self._succ)
        self.rows += 1

    # -- row access ----------------------------------------------------------

    def successors_ids(self, sid: int) -> "array":
        """The successor-id row of ``sid`` (empty if unexpanded)."""
        if sid >= len(self._start) or self._start[sid] == UNEXPANDED:
            return array("q")
        return self._succ[self._start[sid]:self._end[sid]]

    def labels_of(self, sid: int) -> List[Any]:
        if sid >= len(self._start) or self._start[sid] == UNEXPANDED:
            return []
        return self._labels[self._start[sid]:self._end[sid]]

    def row_bounds(self, sid: int) -> Tuple[int, int]:
        """(start, end) offsets of ``sid``'s row ((-1, -1) if unexpanded)."""
        if sid >= len(self._start):
            return (UNEXPANDED, UNEXPANDED)
        return (self._start[sid], self._end[sid])

    def edges(self, sid: int) -> Tuple[Tuple[Any, int], ...]:
        """``(label, successor_id)`` pairs of ``sid``'s row."""
        start, end = self.row_bounds(sid)
        if start == UNEXPANDED:
            return ()
        succ = self._succ
        labels = self._labels
        return tuple(
            (labels[i], succ[i]) for i in range(start, end)
        )

    # -- persistence ---------------------------------------------------------

    def export_rows(self) -> Dict[str, Any]:
        """The raw CSR storage, for cross-run persistence.

        Returns live references (not copies): ``succ``/``start``/``end``
        are the flat ``array('q')`` columns, ``labels`` the aligned edge
        label list, ``rows`` the expanded-row count.  Callers serialize
        via ``array.tobytes()`` (see :mod:`repro.service.graphs`) and
        must not mutate.
        """
        return {
            "succ": self._succ,
            "start": self._start,
            "end": self._end,
            "labels": self._labels,
            "rows": self.rows,
        }

    def import_rows(
        self,
        succ: "array",
        start: "array",
        end: "array",
        labels: List[Any],
        rows: int,
    ) -> None:
        """Adopt CSR storage saved by :meth:`export_rows`.

        Only valid on an empty graph (the restored offsets index the
        restored arrays; merging into live rows would corrupt both), and
        the columns must be mutually consistent — the label list aligned
        with the successor array, offsets within bounds.  Ids in ``succ``
        refer to the attached interner's id space, so the interner must
        be restored first (``StateInterner.bulk_load``).
        """
        if self.rows or len(self._succ) or len(self._start):
            raise ValueError("import_rows needs an empty PackedGraph")
        if len(labels) != len(succ):
            raise ValueError(
                f"misaligned rows: {len(labels)} labels vs {len(succ)} "
                "successor ids"
            )
        if len(start) != len(end):
            raise ValueError(
                f"misaligned offsets: {len(start)} starts vs {len(end)} ends"
            )
        nstates = len(self.interner)
        nedges = len(succ)
        counted = 0
        for sid in range(len(start)):
            lo, hi = start[sid], end[sid]
            if lo == UNEXPANDED and hi == UNEXPANDED:
                continue
            if not (0 <= lo <= hi <= nedges):
                raise ValueError(
                    f"row {sid} offsets ({lo}, {hi}) out of bounds "
                    f"for {nedges} edges"
                )
            counted += 1
        if counted != rows:
            raise ValueError(
                f"row count {rows} does not match {counted} expanded rows"
            )
        for sid in succ:
            if not (0 <= sid < nstates):
                raise ValueError(
                    f"successor id {sid} outside the interned id space "
                    f"of {nstates} states"
                )
        self._succ = array("q", succ)
        self._start = array("q", start)
        self._end = array("q", end)
        self._labels = list(labels)
        self.rows = rows

    # -- accounting ----------------------------------------------------------

    @property
    def edge_count(self) -> int:
        return len(self._succ)

    def nbytes(self) -> int:
        """Bytes held by the packed arrays (labels excluded: they are
        shared Python objects, usually tiny interned tuples)."""
        return (
            self._succ.itemsize * len(self._succ)
            + self._start.itemsize * len(self._start)
            + self._end.itemsize * len(self._end)
        )

    @property
    def stats(self) -> Dict[str, Any]:
        expanded = self.rows
        return {
            "states_interned": len(self.interner),
            "rows": expanded,
            "edges": len(self._succ),
            "packed_bytes": self.nbytes(),
            "bytes_per_state": (
                self.nbytes() / len(self.interner) if len(self.interner) else 0.0
            ),
        }


def expand_packed(
    packed: PackedGraph,
    sid: int,
    sweep: Callable[[Any], Iterable[Tuple[Any, Any]]],
) -> None:
    """Expand ``sid`` through ``sweep(state) -> (label, successor_state)``.

    The glue between a domain successor function (``enabled``/``apply``,
    ``events``/``apply``) and the packed store: successors are interned
    and the row is recorded in sweep order.  No-op if already expanded.
    """
    if packed.is_expanded(sid):
        return
    intern = packed.interner.intern
    labels: List[Any] = []
    succ_ids: List[int] = []
    for label, succ in sweep(packed.interner.state_of(sid)):
        labels.append(label)
        succ_ids.append(intern(succ))
    packed.add_row(sid, labels, succ_ids)


class IdFlags:
    """A growable dense bitmap over state ids (visited/seen sets).

    ``bytearray``-backed: membership is one index, insertion one store —
    no hashing at all.  The idiomatic replacement for ``set`` of states
    in packed passes; also counts members so budget checks stay O(1).
    """

    __slots__ = ("_bits", "count")

    def __init__(self, size_hint: int = 0):
        self._bits = bytearray(size_hint)
        self.count = 0

    def __contains__(self, sid: int) -> bool:
        bits = self._bits
        return sid < len(bits) and bits[sid] != 0

    def add(self, sid: int) -> bool:
        """Mark ``sid``; return True if it was new."""
        bits = self._bits
        if sid >= len(bits):
            bits.extend(b"\x00" * (sid + 1 - len(bits)))
        if bits[sid]:
            return False
        bits[sid] = 1
        self.count += 1
        return True

    def discard(self, sid: int) -> None:
        """Unmark ``sid`` (no-op if absent)."""
        bits = self._bits
        if sid < len(bits) and bits[sid]:
            bits[sid] = 0
            self.count -= 1

    def __len__(self) -> int:
        return self.count

    def ids(self) -> Iterable[int]:
        bits = self._bits
        return (i for i in range(len(bits)) if bits[i])


class IdToValue:
    """A growable dense id -> int map backed by ``array('q')``.

    ``-1`` is the *absent* sentinel, so stored values must be >= 0
    (valency bitmasks, distances, parent ids all are).  Replaces
    ``dict`` keyed by configurations in the labelling passes.
    """

    __slots__ = ("_vals", "count", "absent")

    def __init__(self, size_hint: int = 0, absent: int = -1):
        self.absent = absent
        self._vals = array("q", [absent] * size_hint)
        self.count = 0

    def get(self, sid: int) -> int:
        vals = self._vals
        if sid >= len(vals):
            return self.absent
        return vals[sid]

    def set(self, sid: int, value: int) -> None:
        vals = self._vals
        if sid >= len(vals):
            vals.extend([self.absent] * (sid + 1 - len(vals)))
        if vals[sid] == self.absent and value != self.absent:
            self.count += 1
        elif vals[sid] != self.absent and value == self.absent:
            self.count -= 1
        vals[sid] = value

    def __contains__(self, sid: int) -> bool:
        return self.get(sid) != self.absent

    def __len__(self) -> int:
        return self.count

    def items(self) -> Iterable[Tuple[int, int]]:
        absent = self.absent
        vals = self._vals
        return ((i, vals[i]) for i in range(len(vals)) if vals[i] != absent)


class ValueTable:
    """Decision values <-> bitmask bits, for integer valency labelling.

    Valencies are sets of decision values; over a dense value table they
    pack into an int bitmask, so the backward-closure union in the SCC
    pass is ``|`` on machine words instead of frozenset unions.
    """

    __slots__ = ("_bit", "_values", "_mask_sets")

    def __init__(self, values: Sequence[Any] = ()):
        self._bit: Dict[Any, int] = {}
        self._values: List[Any] = []
        self._mask_sets: Dict[int, frozenset] = {0: frozenset()}
        for value in values:
            self.bit_of(value)

    def bit_of(self, value: Any) -> int:
        bit = self._bit.get(value)
        if bit is None:
            bit = 1 << len(self._values)
            self._bit[value] = bit
            self._values.append(value)
            self._mask_sets.clear()
            self._mask_sets[0] = frozenset()
        return bit

    def mask_of(self, values: Iterable[Any]) -> int:
        mask = 0
        bit = self._bit
        for value in values:
            b = bit.get(value)
            if b is None:
                b = self.bit_of(value)
            mask |= b
        return mask

    def set_of(self, mask: int) -> frozenset:
        """The frozenset behind ``mask`` (memoized per mask value)."""
        cached = self._mask_sets.get(mask)
        if cached is None:
            values = self._values
            cached = frozenset(
                values[i] for i in range(mask.bit_length()) if mask >> i & 1
            )
            self._mask_sets[mask] = cached
        return cached
