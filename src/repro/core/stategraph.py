"""The shared state-graph engine: memoized successor expansion.

Every mechanized impossibility argument in this reproduction bottoms out
in repeated reachability queries over the same configuration graph —
pigeonhole counting explores it, invariant checking scans it, liveness
checking builds cycles over it, and exhaustive protocol search asks all
three questions of every candidate.  Before this module existed each
query re-expanded the graph from scratch: five helpers, five independent
BFS passes, five rounds of ``enabled_actions``/``apply`` on identical
states.

:class:`StateGraph` is the explicit-state-model-checker answer: one
engine per automaton that

* memoizes **successor expansion** per state (``transitions``), so each
  ``(state, action) -> successors`` sweep happens exactly once no matter
  how many queries ask for it;
* maintains one **resumable breadth-first frontier** per exploration
  mode (with/without environment inputs), so ``explore``,
  ``check_invariant``, ``find_state`` and ``reachable_states_satisfying``
  all extend the same discovery order instead of restarting;
* memoizes **forward cones** for ``can_reach_from`` so repeated valency
  style queries from one configuration are answered from cache;
* keeps hit/miss statistics so benchmarks (and tests) can observe the
  sharing.

Graphs are looked up per automaton through :func:`state_graph`, which
caches the graph on the automaton itself (so it is garbage collected
with it) and is how the module-level helpers in
:mod:`repro.core.exploration` transparently share work.  The cache
assumes the automaton's transition relation is immutable after
construction — true for every automaton in this repository; call
:func:`forget_state_graph` if you mutate one.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .automaton import Action, IOAutomaton, State
from .budget import BudgetMeter
from .errors import SearchBudgetExceeded

Edge = Tuple[Action, State]


class _Frontier:
    """A resumable breadth-first exploration from the initial states.

    States are discovered in BFS order and recorded in ``order`` with a
    ``parents`` map for shortest-path reconstruction.  The queue persists
    between queries: a later query with a larger budget resumes expansion
    exactly where the previous one stopped.
    """

    __slots__ = ("graph", "include_inputs", "order", "parents", "queue", "started")

    def __init__(self, graph: "StateGraph", include_inputs: bool):
        self.graph = graph
        self.include_inputs = include_inputs
        self.order: List[State] = []
        self.parents: Dict[State, Optional[Tuple[State, Action]]] = {}
        self.queue: deque = deque()
        self.started = False

    @property
    def complete(self) -> bool:
        return self.started and not self.queue

    def pending(self, limit: int) -> List[State]:
        """The next (up to) ``limit`` states awaiting expansion, in order.

        A read-only view of the queue head — the batch interface the
        parallel fabric prefetches (:mod:`repro.parallel.explore`).
        """
        if limit >= len(self.queue):
            return list(self.queue)
        return [self.queue[i] for i in range(limit)]

    def start(self) -> None:
        """Seed the queue with the initial states (idempotent entry)."""
        if not self.started:
            self._start()

    def _start(self) -> None:
        self.started = True
        for s in self.graph.automaton.initial_states():
            if s not in self.parents:
                self.parents[s] = None
                self.order.append(s)
                self.queue.append(s)

    def expand_one(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> None:
        """Expand the state at the head of the queue (public batch step)."""
        self._expand_one(max_states, meter)

    def _expand_one(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> None:
        """Expand the state at the head of the queue.

        The head is popped only once its whole successor sweep is
        recorded, so a budget abort mid-sweep can be resumed without
        losing edges (the sweep is idempotent over already-seen states).
        """
        if meter is not None:
            meter.check_time()
        state = self.queue[0]
        for action, succ in self.graph.transitions(state, self.include_inputs):
            if succ in self.parents:
                continue
            if len(self.parents) >= max_states:
                raise SearchBudgetExceeded(
                    f"exploration of {self.graph.automaton.name} exceeded "
                    f"{max_states} states"
                )
            if meter is not None:
                meter.charge_states()
            self.parents[succ] = (state, action)
            self.order.append(succ)
            self.queue.append(succ)
        self.queue.popleft()

    def states(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> Iterator[State]:
        """Yield every reachable state in BFS order, expanding on demand.

        Already-discovered states stream out of the cache; the frontier
        only grows when the consumer outruns it.  Raises
        :class:`SearchBudgetExceeded` past ``max_states`` *new* states,
        or :class:`~repro.core.budget.BudgetExceeded` when ``meter``
        overdraws — in either case the frontier stays resumable.
        """
        if not self.started:
            self._start()
        i = 0
        while True:
            while i < len(self.order):
                yield self.order[i]
                i += 1
            if not self.queue:
                return
            self._expand_one(max_states, meter)

    def expand_all(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> None:
        if not self.started:
            self._start()
        while self.queue:
            self._expand_one(max_states, meter)


class StateGraph:
    """Memoized successor expansion and shared frontiers for one automaton."""

    def __init__(self, automaton: IOAutomaton):
        self.automaton = automaton
        self._local: Dict[State, Tuple[Edge, ...]] = {}
        self._input: Dict[State, Tuple[Edge, ...]] = {}
        self._frontiers: Dict[bool, _Frontier] = {}
        self._cones: Dict[State, FrozenSet[State]] = {}
        self.hits = 0
        self.misses = 0
        self.prefetched = 0

    # -- successor expansion ---------------------------------------------

    def transitions(self, state: State, include_inputs: bool = False) -> Tuple[Edge, ...]:
        """All ``(action, successor)`` edges out of ``state``, memoized.

        Locally controlled actions always; with ``include_inputs``, every
        input action of the signature is fired as well (the maximally
        hostile environment).
        """
        edges = self._local.get(state)
        if edges is None:
            self.misses += 1
            automaton = self.automaton
            edges = tuple(
                (action, succ)
                for action in automaton.enabled_actions(state)
                for succ in automaton.apply(state, action)
            )
            self._local[state] = edges
        else:
            self.hits += 1
        if not include_inputs:
            return edges
        in_edges = self._input.get(state)
        if in_edges is None:
            automaton = self.automaton
            in_edges = tuple(
                (action, succ)
                for action in automaton.signature.inputs
                for succ in automaton.apply(state, action)
            )
            self._input[state] = in_edges
        return edges + in_edges

    def successors(self, state: State, include_inputs: bool = False) -> Tuple[State, ...]:
        return tuple(s for _a, s in self.transitions(state, include_inputs))

    def has_transitions(self, state: State, include_inputs: bool = False) -> bool:
        """Is the successor sweep for ``state`` already memoized?"""
        if state not in self._local:
            return False
        return not include_inputs or state in self._input

    def seed_transitions(
        self,
        state: State,
        local_edges: Tuple[Edge, ...],
        input_edges: Optional[Tuple[Edge, ...]] = None,
    ) -> None:
        """Install an externally computed successor sweep into the memo.

        The parallel fabric's prefetch channel: a worker process computed
        the sweep, the parent folds it in so the subsequent (serial,
        authoritative) expansion is a pure cache hit.  Already-memoized
        states are left untouched — the first recorded sweep wins, which
        keeps a racing prefetch harmless.
        """
        if state not in self._local:
            self._local[state] = tuple(local_edges)
            self.prefetched += 1
        if input_edges is not None and state not in self._input:
            self._input[state] = tuple(input_edges)

    # -- the shared forward frontier --------------------------------------

    def frontier(self, include_inputs: bool = False) -> _Frontier:
        frontier = self._frontiers.get(include_inputs)
        if frontier is None:
            frontier = _Frontier(self, include_inputs)
            self._frontiers[include_inputs] = frontier
        return frontier

    def states(
        self,
        max_states: int = 100_000,
        include_inputs: bool = False,
        meter: Optional[BudgetMeter] = None,
    ) -> Iterator[State]:
        """Reachable states in BFS discovery order (resumable, budgeted)."""
        return self.frontier(include_inputs).states(max_states, meter)

    def reachable(
        self,
        max_states: int = 100_000,
        include_inputs: bool = False,
        meter: Optional[BudgetMeter] = None,
        workers=1,
    ) -> Set[State]:
        """The full reachable state set (a copy; the frontier stays cached).

        ``workers > 1`` prefetches successor sweeps across worker
        processes (:mod:`repro.parallel.explore`); the result is
        bit-identical to the serial expansion.
        """
        frontier = self.frontier(include_inputs)
        if workers not in (None, 0, 1):
            from ..parallel.explore import expand_frontier_parallel

            expand_frontier_parallel(
                self, include_inputs, max_states, meter, workers
            )
        else:
            frontier.expand_all(max_states, meter)
        return set(frontier.parents)

    def parents(self, include_inputs: bool = False) -> Dict[State, Optional[Tuple[State, Action]]]:
        """The BFS parent map of the (so far) explored frontier (a copy)."""
        return dict(self.frontier(include_inputs).parents)

    # -- cones (reachability from an arbitrary configuration) -------------

    def cone(self, start: State, max_states: int = 100_000) -> FrozenSet[State]:
        """All states reachable from ``start`` by locally controlled actions.

        Complete cones are memoized per start state, which is what makes
        repeated "is a v-decision reachable from C?" queries cheap.
        """
        cached = self._cones.get(start)
        if cached is not None:
            return cached
        seen: Set[State] = {start}
        queue: deque = deque([start])
        while queue:
            state = queue.popleft()
            for succ in self.successors(state):
                if succ in seen:
                    continue
                if len(seen) >= max_states:
                    raise SearchBudgetExceeded(
                        f"cone exploration of {self.automaton.name} from "
                        f"{start!r} exceeded {max_states} states"
                    )
                seen.add(succ)
                queue.append(succ)
        cone = frozenset(seen)
        self._cones[start] = cone
        return cone

    # -- bookkeeping -------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Cache accounting: expansion hits/misses and frontier sizes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "prefetched": self.prefetched,
            "states_expanded": len(self._local),
            "frontier_states": sum(
                len(f.parents) for f in self._frontiers.values()
            ),
            "cones_cached": len(self._cones),
        }


# The graph is cached as an attribute on the automaton itself, so its
# lifetime is exactly the automaton's lifetime.  (A global map keyed by
# automaton — even a WeakKeyDictionary — would pin every automaton
# forever, because the graph holds a strong reference back to its key;
# exhaustive protocol searches create thousands of throwaway automata
# and would leak every explored graph.)  The automaton <-> graph cycle
# is ordinary cyclic garbage, collected with the automaton.
_GRAPH_ATTR = "_repro_state_graph"

# Weak roster of automata carrying a cached graph, so clear_state_graphs
# can find them without keeping any of them alive.
_ROSTER: "weakref.WeakSet[IOAutomaton]" = weakref.WeakSet()


def state_graph(automaton: IOAutomaton) -> StateGraph:
    """The shared :class:`StateGraph` for ``automaton``.

    The graph lives on the automaton and is garbage collected with it.
    Automata that reject attribute assignment (slots, frozen) get a
    fresh (unshared) graph per call.
    """
    graph = getattr(automaton, _GRAPH_ATTR, None)
    if graph is not None and graph.automaton is automaton:
        return graph
    graph = StateGraph(automaton)
    try:
        setattr(automaton, _GRAPH_ATTR, graph)
    except (AttributeError, TypeError):
        return graph
    try:
        _ROSTER.add(automaton)
    except TypeError:
        pass
    return graph


def forget_state_graph(automaton: IOAutomaton) -> None:
    """Drop the cached graph for ``automaton`` (after mutating it)."""
    try:
        delattr(automaton, _GRAPH_ATTR)
    except (AttributeError, TypeError):
        pass


def clear_state_graphs() -> None:
    """Drop every cached state graph (mainly for tests and benchmarks)."""
    for automaton in list(_ROSTER):
        forget_state_graph(automaton)
    _ROSTER.clear()
