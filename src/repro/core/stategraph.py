"""The shared state-graph engine: memoized successor expansion.

Every mechanized impossibility argument in this reproduction bottoms out
in repeated reachability queries over the same configuration graph —
pigeonhole counting explores it, invariant checking scans it, liveness
checking builds cycles over it, and exhaustive protocol search asks all
three questions of every candidate.  Before this module existed each
query re-expanded the graph from scratch: five helpers, five independent
BFS passes, five rounds of ``enabled_actions``/``apply`` on identical
states.

:class:`StateGraph` is the explicit-state-model-checker answer: one
engine per automaton that

* memoizes **successor expansion** per state (``transitions``), so each
  ``(state, action) -> successors`` sweep happens exactly once no matter
  how many queries ask for it;
* maintains one **resumable breadth-first frontier** per exploration
  mode (with/without environment inputs), so ``explore``,
  ``check_invariant``, ``find_state`` and ``reachable_states_satisfying``
  all extend the same discovery order instead of restarting;
* memoizes **forward cones** for ``can_reach_from`` so repeated valency
  style queries from one configuration are answered from cache;
* keeps hit/miss statistics so benchmarks (and tests) can observe the
  sharing.

Graphs are looked up per automaton through :func:`state_graph`, which
caches the graph on the automaton itself (so it is garbage collected
with it) and is how the module-level helpers in
:mod:`repro.core.exploration` transparently share work.  The cache
assumes the automaton's transition relation is immutable after
construction — true for every automaton in this repository; call
:func:`forget_state_graph` if you mutate one.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .automaton import Action, IOAutomaton, State
from .budget import BudgetMeter
from .errors import SearchBudgetExceeded
from .freeze import intern_table_stats, register_packed_owner
from .packed import IdFlags, PackedGraph, StateInterner

Edge = Tuple[Action, State]


class _Frontier:
    """A resumable breadth-first exploration from the initial states.

    States are discovered in BFS order over dense interned ids: the
    visited set is a flat bitmap and the parent map is keyed by id, so
    the per-successor probe never hashes a frozen state.  ``order``
    holds ids; :meth:`states` and the :attr:`parents` view convert back
    to states at the boundary.  The queue persists between queries: a
    later query with a larger budget resumes expansion exactly where
    the previous one stopped.
    """

    __slots__ = (
        "graph", "include_inputs", "order", "seen", "parent_of", "queue",
        "started",
    )

    def __init__(self, graph: "StateGraph", include_inputs: bool):
        self.graph = graph
        self.include_inputs = include_inputs
        self.order: List[int] = []
        self.seen = IdFlags()
        self.parent_of: Dict[int, Optional[Tuple[int, Action]]] = {}
        self.queue: deque = deque()
        self.started = False

    @property
    def complete(self) -> bool:
        return self.started and not self.queue

    @property
    def parents(self) -> Dict[State, Optional[Tuple[State, Action]]]:
        """The BFS parent map, keyed by states (built on access)."""
        state_of = self.graph.interner.state_of
        out: Dict[State, Optional[Tuple[State, Action]]] = {}
        for sid in self.order:
            entry = self.parent_of[sid]
            out[state_of(sid)] = (
                None if entry is None else (state_of(entry[0]), entry[1])
            )
        return out

    def pending(self, limit: int) -> List[State]:
        """The next (up to) ``limit`` states awaiting expansion, in order.

        A read-only view of the queue head — the batch interface the
        parallel fabric prefetches (:mod:`repro.parallel.explore`).
        """
        state_of = self.graph.interner.state_of
        if limit >= len(self.queue):
            return [state_of(sid) for sid in self.queue]
        return [state_of(self.queue[i]) for i in range(limit)]

    def start(self) -> None:
        """Seed the queue with the initial states (idempotent entry)."""
        if not self.started:
            self._start()

    def _start(self) -> None:
        self.started = True
        intern = self.graph.interner.intern
        for s in self.graph.automaton.initial_states():
            sid = intern(s)
            if self.seen.add(sid):
                self.parent_of[sid] = None
                self.order.append(sid)
                self.queue.append(sid)

    def expand_one(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> None:
        """Expand the state at the head of the queue (public batch step)."""
        self._expand_one(max_states, meter)

    def _expand_one(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> None:
        """Expand the state at the head of the queue.

        The head is popped only once its whole successor sweep is
        recorded, so a budget abort mid-sweep can be resumed without
        losing edges (the sweep is idempotent over already-seen states).
        """
        if meter is not None:
            meter.check_time()
        sid = self.queue[0]
        graph = self.graph
        seen = self.seen
        parent_of = self.parent_of
        for packed in graph._expand_id(sid, self.include_inputs):
            start, end = packed.row_bounds(sid)
            succ = packed._succ
            labels = packed._labels
            for i in range(start, end):
                child = succ[i]
                if child in seen:
                    continue
                if seen.count >= max_states:
                    raise SearchBudgetExceeded(
                        f"exploration of {graph.automaton.name} exceeded "
                        f"{max_states} states"
                    )
                if meter is not None:
                    meter.charge_states()
                seen.add(child)
                parent_of[child] = (sid, labels[i])
                self.order.append(child)
                self.queue.append(child)
        self.queue.popleft()

    def states(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> Iterator[State]:
        """Yield every reachable state in BFS order, expanding on demand.

        Already-discovered states stream out of the cache; the frontier
        only grows when the consumer outruns it.  Raises
        :class:`SearchBudgetExceeded` past ``max_states`` *new* states,
        or :class:`~repro.core.budget.BudgetExceeded` when ``meter``
        overdraws — in either case the frontier stays resumable.
        """
        if not self.started:
            self._start()
        state_of = self.graph.interner.state_of
        i = 0
        while True:
            while i < len(self.order):
                yield state_of(self.order[i])
                i += 1
            if not self.queue:
                return
            self._expand_one(max_states, meter)

    def expand_all(
        self, max_states: int, meter: Optional[BudgetMeter] = None
    ) -> None:
        if not self.started:
            self._start()
        while self.queue:
            self._expand_one(max_states, meter)


class StateGraph:
    """Memoized successor expansion and shared frontiers for one automaton.

    Backed by the packed state engine (:mod:`repro.core.packed`): states
    are interned to dense ids in a per-graph :class:`StateInterner` and
    successor sweeps live as CSR rows in two :class:`PackedGraph` stores
    (locally controlled edges; input-action edges).  Ids stay internal —
    every public method accepts and returns frozen states, so existing
    callers are unaffected.
    """

    def __init__(self, automaton: IOAutomaton):
        self.automaton = automaton
        self.interner = StateInterner()
        self._plocal = PackedGraph(self.interner)
        self._pinput = PackedGraph(self.interner)
        self._lviews: List[Optional[Tuple[Edge, ...]]] = []
        self._iviews: List[Optional[Tuple[Edge, ...]]] = []
        self._frontiers: Dict[bool, _Frontier] = {}
        self._cones: Dict[State, FrozenSet[State]] = {}
        self.hits = 0
        self.misses = 0
        self.prefetched = 0
        register_packed_owner(self)

    def reset_packed_state(self) -> None:
        """Drop every id-indexed structure (cascade of
        :func:`~repro.core.freeze.clear_intern_table`): ids from the old
        interning epoch must not survive the epoch."""
        self.interner = StateInterner()
        self._plocal = PackedGraph(self.interner)
        self._pinput = PackedGraph(self.interner)
        self._lviews = []
        self._iviews = []
        self._frontiers = {}
        self._cones = {}

    # -- successor expansion ---------------------------------------------

    def _sweep_local(self, sid: int) -> None:
        """Record ``sid``'s locally-controlled successor row (one sweep)."""
        automaton = self.automaton
        state = self.interner.state_of(sid)
        intern = self.interner.intern
        labels: List[Action] = []
        succ_ids: List[int] = []
        for action in automaton.enabled_actions(state):
            for succ in automaton.apply(state, action):
                labels.append(action)
                succ_ids.append(intern(succ))
        self._plocal.add_row(sid, labels, succ_ids)

    def _sweep_input(self, sid: int) -> None:
        automaton = self.automaton
        state = self.interner.state_of(sid)
        intern = self.interner.intern
        labels: List[Action] = []
        succ_ids: List[int] = []
        for action in automaton.signature.inputs:
            for succ in automaton.apply(state, action):
                labels.append(action)
                succ_ids.append(intern(succ))
        self._pinput.add_row(sid, labels, succ_ids)

    def _expand_id(self, sid: int, include_inputs: bool) -> Tuple[PackedGraph, ...]:
        """Ensure ``sid``'s rows exist; return the stores carrying them.

        The id-level twin of :meth:`transitions`, with the same hit/miss
        accounting (one hit or one miss per call, on the local store).
        """
        if self._plocal.is_expanded(sid):
            self.hits += 1
        else:
            self.misses += 1
            self._sweep_local(sid)
        if not include_inputs:
            return (self._plocal,)
        if not self._pinput.is_expanded(sid):
            self._sweep_input(sid)
        return (self._plocal, self._pinput)

    def _view(
        self, packed: PackedGraph, views: List[Optional[Tuple[Edge, ...]]],
        sid: int,
    ) -> Tuple[Edge, ...]:
        """The ``(action, successor-state)`` tuple of ``sid``'s row,
        built from the packed row once and memoized."""
        if sid < len(views):
            view = views[sid]
            if view is not None:
                return view
        else:
            views.extend([None] * (sid + 1 - len(views)))
        start, end = packed.row_bounds(sid)
        state_of = self.interner.state_of
        succ = packed._succ
        labels = packed._labels
        view = tuple((labels[i], state_of(succ[i])) for i in range(start, end))
        views[sid] = view
        return view

    def transitions(self, state: State, include_inputs: bool = False) -> Tuple[Edge, ...]:
        """All ``(action, successor)`` edges out of ``state``, memoized.

        Locally controlled actions always; with ``include_inputs``, every
        input action of the signature is fired as well (the maximally
        hostile environment).
        """
        sid = self.interner.intern(state)
        self._expand_id(sid, include_inputs)
        edges = self._view(self._plocal, self._lviews, sid)
        if not include_inputs:
            return edges
        return edges + self._view(self._pinput, self._iviews, sid)

    def successors(self, state: State, include_inputs: bool = False) -> Tuple[State, ...]:
        return tuple(s for _a, s in self.transitions(state, include_inputs))

    def has_transitions(self, state: State, include_inputs: bool = False) -> bool:
        """Is the successor sweep for ``state`` already memoized?"""
        sid = self.interner.id_of(state)
        if sid is None or not self._plocal.is_expanded(sid):
            return False
        return not include_inputs or self._pinput.is_expanded(sid)

    def seed_transitions(
        self,
        state: State,
        local_edges: Tuple[Edge, ...],
        input_edges: Optional[Tuple[Edge, ...]] = None,
    ) -> None:
        """Install an externally computed successor sweep into the memo.

        The parallel fabric's prefetch channel: a worker process computed
        the sweep, the parent folds it in so the subsequent (serial,
        authoritative) expansion is a pure cache hit.  Already-memoized
        states are left untouched — the first recorded sweep wins, which
        keeps a racing prefetch harmless.
        """
        intern = self.interner.intern
        sid = intern(state)
        if not self._plocal.is_expanded(sid):
            self._plocal.add_row(
                sid,
                [action for action, _succ in local_edges],
                [intern(succ) for _action, succ in local_edges],
            )
            self.prefetched += 1
        if input_edges is not None and not self._pinput.is_expanded(sid):
            self._pinput.add_row(
                sid,
                [action for action, _succ in input_edges],
                [intern(succ) for _action, succ in input_edges],
            )

    # -- cross-run persistence ---------------------------------------------

    def export_packed(self) -> Dict[str, object]:
        """The interner table and both CSR stores, for persistence.

        The payload (live references, do not mutate) is everything a
        future process needs to resume this graph warm: the dense
        id -> state table plus the locally-controlled and input-action
        row stores.  Frontiers and cones are *not* exported — they
        rebuild from the rows as pure cache hits, which keeps the blob
        format independent of BFS bookkeeping internals.
        """
        return {
            "states": self.interner.states(),
            "local": self._plocal.export_rows(),
            "input": self._pinput.export_rows(),
        }

    def import_packed(
        self,
        states,
        local: Dict[str, object],
        input_rows: Dict[str, object],
    ) -> None:
        """Adopt a payload saved by :meth:`export_packed`.

        Only valid on a fresh graph (no interned states, no expanded
        rows): the imported offsets index the imported id space.  After
        the import every expansion the rows cover is a cache *hit* — a
        subsequent ``reachable()`` runs with ``misses == 0``, which is
        how the certificate store proves a warm rerun did zero live
        successor sweeps.
        """
        if len(self.interner) or self._plocal.rows or self._pinput.rows:
            raise ValueError(
                "import_packed needs a fresh StateGraph "
                f"({len(self.interner)} states already interned)"
            )
        self.interner.bulk_load(states)
        self._plocal.import_rows(**local)
        self._pinput.import_rows(**input_rows)

    # -- the shared forward frontier --------------------------------------

    def frontier(self, include_inputs: bool = False) -> _Frontier:
        frontier = self._frontiers.get(include_inputs)
        if frontier is None:
            frontier = _Frontier(self, include_inputs)
            self._frontiers[include_inputs] = frontier
        return frontier

    def states(
        self,
        max_states: int = 100_000,
        include_inputs: bool = False,
        meter: Optional[BudgetMeter] = None,
    ) -> Iterator[State]:
        """Reachable states in BFS discovery order (resumable, budgeted)."""
        return self.frontier(include_inputs).states(max_states, meter)

    def reachable(
        self,
        max_states: int = 100_000,
        include_inputs: bool = False,
        meter: Optional[BudgetMeter] = None,
        workers=1,
    ) -> Set[State]:
        """The full reachable state set (a copy; the frontier stays cached).

        ``workers > 1`` prefetches successor sweeps across worker
        processes (:mod:`repro.parallel.explore`); the result is
        bit-identical to the serial expansion.
        """
        frontier = self.frontier(include_inputs)
        if workers not in (None, 0, 1):
            from ..parallel.explore import expand_frontier_parallel

            expand_frontier_parallel(
                self, include_inputs, max_states, meter, workers
            )
        else:
            frontier.expand_all(max_states, meter)
        return set(frontier.parents)

    def parents(self, include_inputs: bool = False) -> Dict[State, Optional[Tuple[State, Action]]]:
        """The BFS parent map of the (so far) explored frontier (a copy)."""
        return dict(self.frontier(include_inputs).parents)

    # -- cones (reachability from an arbitrary configuration) -------------

    def cone(self, start: State, max_states: int = 100_000) -> FrozenSet[State]:
        """All states reachable from ``start`` by locally controlled actions.

        Complete cones are memoized per start state, which is what makes
        repeated "is a v-decision reachable from C?" queries cheap.  The
        BFS itself runs over ids — one bitmap probe per successor.
        """
        cached = self._cones.get(start)
        if cached is not None:
            return cached
        start_id = self.interner.intern(start)
        seen = IdFlags()
        seen.add(start_id)
        queue: deque = deque([start_id])
        plocal = self._plocal
        while queue:
            sid = queue.popleft()
            self._expand_id(sid, False)
            begin, end = plocal.row_bounds(sid)
            succ = plocal._succ
            for i in range(begin, end):
                child = succ[i]
                if child in seen:
                    continue
                if seen.count >= max_states:
                    raise SearchBudgetExceeded(
                        f"cone exploration of {self.automaton.name} from "
                        f"{start!r} exceeded {max_states} states"
                    )
                seen.add(child)
                queue.append(child)
        state_of = self.interner.state_of
        cone = frozenset(state_of(sid) for sid in seen.ids())
        self._cones[start] = cone
        return cone

    # -- bookkeeping -------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Cache accounting: expansion hits/misses, frontier sizes, and
        the packed-store / intern-table footprint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "prefetched": self.prefetched,
            "states_expanded": self._plocal.rows,
            "frontier_states": sum(
                f.seen.count for f in self._frontiers.values()
            ),
            "cones_cached": len(self._cones),
            "states_interned": len(self.interner),
            "packed_bytes": self._plocal.nbytes() + self._pinput.nbytes(),
            "intern_table": intern_table_stats(),
        }


# The graph is cached as an attribute on the automaton itself, so its
# lifetime is exactly the automaton's lifetime.  (A global map keyed by
# automaton — even a WeakKeyDictionary — would pin every automaton
# forever, because the graph holds a strong reference back to its key;
# exhaustive protocol searches create thousands of throwaway automata
# and would leak every explored graph.)  The automaton <-> graph cycle
# is ordinary cyclic garbage, collected with the automaton.
_GRAPH_ATTR = "_repro_state_graph"

# Weak roster of automata carrying a cached graph, so clear_state_graphs
# can find them without keeping any of them alive.
_ROSTER: "weakref.WeakSet[IOAutomaton]" = weakref.WeakSet()


def state_graph(automaton: IOAutomaton) -> StateGraph:
    """The shared :class:`StateGraph` for ``automaton``.

    The graph lives on the automaton and is garbage collected with it.
    Automata that reject attribute assignment (slots, frozen) get a
    fresh (unshared) graph per call.
    """
    graph = getattr(automaton, _GRAPH_ATTR, None)
    if graph is not None and graph.automaton is automaton:
        return graph
    graph = StateGraph(automaton)
    try:
        setattr(automaton, _GRAPH_ATTR, graph)
    except (AttributeError, TypeError):
        return graph
    try:
        _ROSTER.add(automaton)
    except TypeError:
        pass
    return graph


def forget_state_graph(automaton: IOAutomaton) -> None:
    """Drop the cached graph for ``automaton`` (after mutating it)."""
    try:
        delattr(automaton, _GRAPH_ATTR)
    except (AttributeError, TypeError):
        pass


def clear_state_graphs() -> None:
    """Drop every cached state graph (mainly for tests and benchmarks)."""
    for automaton in list(_ROSTER):
        forget_state_graph(automaton)
    _ROSTER.clear()
