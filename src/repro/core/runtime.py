"""The unified simulation runtime: one trace schema, one adversary
interface, seeded determinism for every model.

The survey's power comes from moving one argument across many models —
chain arguments, scenario splicing and valency all *replay executions* of
different substrates.  Historically each substrate in this repository
(synchronous rounds, the FLP asynchronous network, rings, datalink
channels, shared memory, raw I/O-automaton executions) grew a private
adversary hierarchy, a private result type and a private notion of a
trace.  This module is the shared kernel they now all route through:

* :class:`TraceEvent` / :class:`Trace` — the uniform record schema
  ``(step, actor, kind, payload, round, time)`` every substrate emits.
  A :class:`Trace` carries the substrate name, protocol name, seed and
  outcome summary, and has a stable :meth:`~Trace.fingerprint` so
  "byte-identical run" is a checkable proposition.

* :class:`FaultAdversary` — one adversary protocol subsuming the
  crash/omission/Byzantine adversaries of the synchronous model, the
  channel adversaries of the datalink layer, and the schedulers of the
  I/O-automaton and ring simulators.  An adversary owns three optional
  powers: *faults* (``is_faulty`` + ``transform`` over faulty senders'
  messages), *scheduling* (``schedule`` picks which enabled option
  happens next) and *reset* (return to the initial state so a run can be
  replayed).

* :class:`SimulationRuntime` — the per-run kernel: a seeded
  ``random.Random``, a step counter, and the trace recorder.  Every run
  is a deterministic function of ``(protocol, inputs, adversary, seed)``.

* :func:`replay` — the single replay entry point: re-execute the run
  that produced a trace and verify the fresh trace is byte-identical.
  Every impossibility certificate whose evidence is a :class:`Trace` is
  replayable through it.

* :func:`derive_seed` / :func:`spawn_rng` — stable seed derivation
  (independent of ``PYTHONHASHSEED``) for sub-processes and child RNGs.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from .errors import ReproError

# ---------------------------------------------------------------------------
# Canonical event vocabulary
# ---------------------------------------------------------------------------
#
# Substrates map their native happenings onto this shared vocabulary so a
# trace consumer (replayer, counter, indistinguishability check) never needs
# substrate-specific knowledge to read a run.

SEND = "send"          # a message/packet enters a channel or buffer
DELIVER = "deliver"    # a message/packet reaches its destination
DROP = "drop"          # the adversary destroys a buffered message
DUPLICATE = "dup"      # the adversary duplicates a buffered message
CRASH = "crash"        # an endpoint loses state / stops
STEP = "step"          # a process takes a local step
DECIDE = "decide"      # a process irrevocably decides a value
DECLARE = "declare"    # a status declaration (leader / nonleader)
OUTPUT = "output"      # a computed output value
HALT = "halt"          # the run ends

EVENT_KINDS = frozenset(
    {SEND, DELIVER, DROP, DUPLICATE, CRASH, STEP, DECIDE, DECLARE, OUTPUT, HALT}
)


class ReplayError(ReproError):
    """A trace could not be replayed, or the replay diverged."""


class FingerprintMismatch(ReplayError):
    """A recorded fingerprint does not match the recomputed one.

    Structured: ``expected`` is the fingerprint the artifact recorded,
    ``actual`` the one recomputed from its content, and ``context`` names
    the artifact being verified (a reloaded trace, a store entry, a
    packed-graph blob).  Raised by :meth:`Trace.from_jsonl` and reused by
    the certificate store (:mod:`repro.service.store`) — anywhere
    "re-verify on read" fails, the error carries both digests so the
    diagnosis never requires re-running the verifier by hand.
    """

    def __init__(
        self,
        expected: Optional[str],
        actual: Optional[str],
        context: str = "artifact",
    ):
        self.expected = expected
        self.actual = actual
        self.context = context
        super().__init__(
            f"fingerprint mismatch in {context}: recorded {expected!r}, "
            f"recomputed {actual!r} — the content was corrupted, "
            "hand-edited, or encoded unfaithfully"
        )


class ReplayDivergence(ReplayError):
    """A replay produced a different run than the original trace.

    Structured: ``index`` is the position of the first divergent event
    (``None`` when the events all match but the metadata or outcome
    differ), ``expected`` is the original's event at that position and
    ``actual`` the replay's (either may be ``None`` when one run is a
    strict prefix of the other).  Non-determinism escaping the seeded
    RNG is exactly the bug class this error exists to pinpoint.
    """

    def __init__(self, original: "Trace", fresh: "Trace"):
        self.original = original
        self.fresh = fresh
        self.index: Optional[int] = None
        self.expected: Optional[TraceEvent] = None
        self.actual: Optional[TraceEvent] = None
        for i, (a, b) in enumerate(zip(original.events, fresh.events)):
            if a != b:
                self.index, self.expected, self.actual = i, a, b
                break
        else:
            if len(original.events) != len(fresh.events):
                i = min(len(original.events), len(fresh.events))
                self.index = i
                self.expected = (
                    original.events[i] if i < len(original.events) else None
                )
                self.actual = fresh.events[i] if i < len(fresh.events) else None
        if self.index is not None:
            detail = (
                f"first divergence at event {self.index}: "
                f"expected {self.expected!r}, got {self.actual!r}"
            )
        else:
            detail = (
                f"events identical; outcome/metadata diverged: "
                f"expected {(original.substrate, original.protocol, original.seed, original.outcome)!r}, "
                f"got {(fresh.substrate, fresh.protocol, fresh.seed, fresh.outcome)!r}"
            )
        super().__init__(
            f"replay diverged for substrate {original.substrate!r} "
            f"(protocol {original.protocol!r}, seed {original.seed!r}): "
            f"{original.steps} events originally, {fresh.steps} on replay; "
            + detail
        )


# -- JSON-safe payload encoding ---------------------------------------------
#
# Trace payloads are arbitrary hashables built from tuples, frozensets and
# scalars.  JSON has neither tuples nor frozensets, so both are encoded as
# single-key tagged objects and decoded back to the exact original type —
# which is what makes a saved counterexample's fingerprint verifiable.

def _encode_value(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [_encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {"fs": [_encode_value(v) for v in sorted(value, key=repr)]}
    raise TypeError(
        f"cannot serialize trace payload of type {type(value).__name__}: {value!r}"
    )


def _decode_value(value):
    if isinstance(value, dict):
        if set(value) == {"t"}:
            return tuple(_decode_value(v) for v in value["t"])
        if set(value) == {"fs"}:
            return frozenset(_decode_value(v) for v in value["fs"])
        raise ValueError(f"unknown tagged value {value!r}")
    if isinstance(value, list):
        raise ValueError(f"bare JSON array in trace payload: {value!r}")
    return value


class TraceEvent(NamedTuple):
    """One event of a simulation run, in the shared schema.

    ``step`` is the global 0-based sequence number within the run;
    ``actor`` identifies the process/node/endpoint the event belongs to
    (or a distinguished name like ``"channel"``); ``kind`` is one of the
    canonical vocabulary above; ``payload`` is substrate data (message
    contents, decided value, ...); ``round`` is set by round-based
    substrates and ``time`` by timed ones.

    A NamedTuple rather than a dataclass: event construction sits on the
    hot path of every simulator, and tuples are ~3x cheaper to build.
    """

    step: int
    actor: Hashable
    kind: str
    payload: Hashable = None
    round: Optional[int] = None
    time: Optional[float] = None

    def key(self) -> Tuple:
        return tuple(self)


@dataclass
class Trace:
    """A completed run of any substrate, in the uniform schema.

    Equality and :meth:`fingerprint` cover the identity fields only —
    the optional replayer closure is deliberately excluded, so a trace
    and its replay compare equal.
    """

    substrate: str
    protocol: str
    seed: Optional[int]
    events: Tuple[TraceEvent, ...]
    outcome: Tuple[Tuple[str, Hashable], ...] = ()
    replayer: Optional[Callable[[], "Trace"]] = field(
        default=None, compare=False, repr=False
    )

    # -- counters (free for every substrate) ------------------------------

    @property
    def steps(self) -> int:
        return len(self.events)

    @property
    def messages_sent(self) -> int:
        return sum(1 for e in self.events if e.kind == SEND)

    @property
    def messages_delivered(self) -> int:
        return sum(1 for e in self.events if e.kind == DELIVER)

    @property
    def rounds(self) -> int:
        return max((e.round for e in self.events if e.round is not None),
                   default=0)

    # -- projections ------------------------------------------------------

    def events_of(self, *kinds: str) -> Tuple[TraceEvent, ...]:
        wanted = frozenset(kinds)
        return tuple(e for e in self.events if e.kind in wanted)

    def view(self, actor: Hashable) -> Tuple[TraceEvent, ...]:
        """The projection onto one actor — the indistinguishability
        currency: two runs look the same to ``actor`` iff its views are
        equal."""
        return tuple(e for e in self.events if e.actor == actor)

    def outcome_dict(self) -> Dict[str, Hashable]:
        return dict(self.outcome)

    # -- identity ---------------------------------------------------------

    def canonical_bytes(self) -> bytes:
        """A canonical byte encoding of the identity fields."""
        parts = [
            repr((self.substrate, self.protocol, self.seed)),
            repr(self.outcome),
        ]
        parts.extend(repr(e.key()) for e in self.events)
        return "\n".join(parts).encode("utf-8")

    def fingerprint(self) -> str:
        """A stable digest: equal fingerprints <=> byte-identical runs."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    @property
    def replayable(self) -> bool:
        return self.replayer is not None

    # -- serialization ----------------------------------------------------

    JSONL_SCHEMA = "repro-trace/v1"

    def to_jsonl(self) -> str:
        """Serialize to JSON Lines: one header line, then one line per event.

        Payloads built from tuples, frozensets and scalars round-trip
        exactly; the header records the fingerprint so
        :meth:`from_jsonl` can verify the reload is byte-identical.
        This is how shrunk chaos counterexamples are saved as CI
        artifacts and re-verified later.
        """
        header = {
            "schema": self.JSONL_SCHEMA,
            "substrate": self.substrate,
            "protocol": self.protocol,
            "seed": self.seed,
            "outcome": _encode_value(self.outcome),
            "fingerprint": self.fingerprint(),
        }
        lines = [json.dumps(header, sort_keys=True)]
        for e in self.events:
            lines.append(
                json.dumps(
                    {
                        "step": e.step,
                        "actor": _encode_value(e.actor),
                        "kind": e.kind,
                        "payload": _encode_value(e.payload),
                        "round": e.round,
                        "time": e.time,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str, verify: bool = True) -> "Trace":
        """Rebuild a trace from :meth:`to_jsonl` output.

        The result carries no replayer (the closure does not serialize);
        with ``verify`` (the default) the recomputed fingerprint is
        checked against the header's, raising :class:`ReplayError` on
        mismatch — a corrupted or hand-edited artifact never silently
        passes as the original run.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ReplayError("empty trace serialization")
        header = json.loads(lines[0])
        if header.get("schema") != cls.JSONL_SCHEMA:
            raise ReplayError(
                f"unknown trace schema {header.get('schema')!r} "
                f"(expected {cls.JSONL_SCHEMA!r})"
            )
        events = []
        for line in lines[1:]:
            raw = json.loads(line)
            events.append(
                TraceEvent(
                    step=raw["step"],
                    actor=_decode_value(raw["actor"]),
                    kind=raw["kind"],
                    payload=_decode_value(raw["payload"]),
                    round=raw["round"],
                    time=raw["time"],
                )
            )
        trace = cls(
            substrate=header["substrate"],
            protocol=header["protocol"],
            seed=header["seed"],
            events=tuple(events),
            outcome=_decode_value(header["outcome"]),
        )
        recorded = header.get("fingerprint")
        if verify and recorded != trace.fingerprint():
            raise FingerprintMismatch(
                recorded,
                trace.fingerprint(),
                context=(
                    f"reloaded trace (substrate {trace.substrate!r}, "
                    f"protocol {trace.protocol!r})"
                ),
            )
        return trace


# ---------------------------------------------------------------------------
# Seed plumbing
# ---------------------------------------------------------------------------


def derive_seed(*components: Hashable) -> int:
    """A stable 63-bit seed derived from the components.

    Unlike ``hash()``, this is independent of ``PYTHONHASHSEED`` and of
    the process, so per-process sub-seeds derived from a master seed are
    reproducible across runs and machines.
    """
    digest = hashlib.sha256(repr(components).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


def spawn_rng(rng: random.Random) -> random.Random:
    """A child RNG deterministically derived from (and advancing) ``rng``."""
    return random.Random(rng.getrandbits(63))


# ---------------------------------------------------------------------------
# The unified adversary interface
# ---------------------------------------------------------------------------


class FaultAdversary:
    """One adversary interface for every substrate.

    The base class is the benign adversary: no process is faulty, messages
    pass untouched, and scheduling defers to the runtime's seeded RNG.
    Substrates use the three powers selectively:

    * the synchronous model calls :meth:`transform` on faulty senders'
      messages (crash / omission / Byzantine subclasses live in
      :mod:`repro.consensus.synchronous`);
    * event-driven substrates (rings, I/O-automaton schedulers) call
      :meth:`schedule` to pick which enabled option happens next;
    * the datalink layer subclasses this with a full channel-action
      interface (:class:`repro.datalink.simulate.ChannelAdversary`).

    ``inputs_trustworthy`` says whether faulty processes' *inputs* count
    for validity: crash and omission failures are honest processes that
    die, so their inputs are real; Byzantine processes have no meaningful
    input.

    :meth:`reset` must return the adversary to its initial state; it is
    what makes runs with stateful adversaries (scripts, cursors, RNGs)
    replayable through :func:`replay`.
    """

    inputs_trustworthy = True
    faulty: frozenset = frozenset()  # overridden per instance in __init__

    def __init__(self, faulty: Iterable[Hashable] = ()):
        self.faulty = frozenset(faulty)

    # -- faults -----------------------------------------------------------

    def is_faulty(self, actor: Hashable) -> bool:
        return actor in self.faulty

    def transform(
        self,
        rnd: int,
        src: Hashable,
        dest: Hashable,
        honest_message: Hashable,
    ) -> Hashable:
        """The message actually delivered from a *faulty* ``src``.

        Called only for faulty senders; honest senders' messages are
        untouchable (that is the model).  Return None to suppress.
        """
        return honest_message

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        options: Sequence[Hashable],
        rng: Optional[random.Random] = None,
    ) -> int:
        """Pick the index of the option that happens next.

        ``options`` is a deterministically ordered non-empty sequence of
        whatever the substrate offers (channel keys, enabled actions, live
        processes).  The default is the seeded-uniform choice — the benign
        scheduler — falling back to index 0 when no RNG is supplied.
        """
        if rng is None:
            return 0
        return rng.randrange(len(options))

    # -- replay -----------------------------------------------------------

    def reset(self) -> None:
        """Return to the initial state (cursors, RNGs) for replay."""


class SchedulingAdversary(FaultAdversary):
    """Wrap a bare ``options -> index`` function as a scheduling adversary.

    The adapter for the legacy ``schedule=`` callables the ring simulator
    used to take.
    """

    def __init__(self, choose: Callable[[Sequence[Hashable]], int]):
        super().__init__()
        self._choose = choose

    def schedule(self, options, rng=None):
        return self._choose(list(options))


# ---------------------------------------------------------------------------
# The per-run kernel
# ---------------------------------------------------------------------------

# The benign adversary is stateless, so every runtime without an explicit
# adversary shares this instance instead of constructing one per run.
_BENIGN = FaultAdversary()


class SimulationRuntime:
    """A single run's kernel: seeded RNG + step counter + trace recorder.

    Substrate runners create one per run, ``emit`` events as they happen,
    and ``finish`` to obtain the :class:`Trace`.  The RNG is the *only*
    source of randomness a substrate may use, which is what makes every
    run a deterministic function of ``(protocol, inputs, adversary,
    seed)``.
    """

    def __init__(
        self,
        substrate: str,
        protocol: str = "",
        seed: Optional[int] = None,
        adversary: Optional[FaultAdversary] = None,
        record: bool = True,
    ):
        self.substrate = substrate
        self.protocol = protocol
        self.seed = seed
        self._rng: Optional[random.Random] = None
        self.adversary = adversary if adversary is not None else _BENIGN
        self.record = record
        self._events: List[TraceEvent] = []
        self._step = 0

    @property
    def rng(self) -> random.Random:
        # Built on first use: bulk searches (record=False, deterministic
        # adversaries) never touch the RNG, and seeding one per run is
        # measurable across tens of thousands of runs.
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(self.seed)
        return rng

    # -- events -----------------------------------------------------------

    def emit(
        self,
        kind: str,
        actor: Hashable,
        payload: Hashable = None,
        *,
        round: Optional[int] = None,
        time: Optional[float] = None,
    ) -> Optional[TraceEvent]:
        """Record one event (and allocate its global step number)."""
        if not self.record:
            self._step += 1
            return None
        event = TraceEvent(self._step, actor, kind, payload, round, time)
        self._step += 1
        self._events.append(event)
        return event

    # -- scheduling -------------------------------------------------------

    def choose(self, options: Sequence[Hashable]) -> Hashable:
        """Let the adversary (default: seeded-uniform) pick one option."""
        index = self.adversary.schedule(options, self.rng)
        return options[index]

    def choose_index(self, options: Sequence[Hashable]) -> int:
        return self.adversary.schedule(options, self.rng)

    # -- completion -------------------------------------------------------

    def finish(
        self,
        outcome: Optional[Mapping[str, Hashable]] = None,
        replayer: Optional[Callable[[], Trace]] = None,
    ) -> Trace:
        """Seal the run into a :class:`Trace`.

        ``replayer`` is a zero-argument closure re-running the simulation
        from scratch (fresh processes, reset adversary, same seed); it is
        what :func:`replay` invokes.
        """
        packed = tuple(sorted((str(k), v) for k, v in (outcome or {}).items()))
        return Trace(
            substrate=self.substrate,
            protocol=self.protocol,
            seed=self.seed,
            events=tuple(self._events),
            outcome=packed,
            replayer=replayer,
        )


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replay(trace: Trace) -> Trace:
    """Re-execute the run that produced ``trace`` and verify it.

    Returns the freshly produced trace; raises :class:`ReplayError` if the
    trace carries no replayer, and :class:`ReplayDivergence` — carrying
    the index and both versions of the first divergent event — if the
    replay differs from the original (non-determinism escaping the seeded
    RNG — exactly the bug class this kernel exists to eliminate).
    """
    if trace.replayer is None:
        raise ReplayError(
            f"trace of substrate {trace.substrate!r} carries no replayer; "
            "run it through the unified runtime to get a replayable trace"
        )
    fresh = trace.replayer()
    if fresh.fingerprint() != trace.fingerprint():
        raise ReplayDivergence(trace, fresh)
    return fresh
