"""Executions, traces and schedules of I/O automata.

An *execution fragment* is an alternating sequence
``s0, a1, s1, a2, s2, ...`` of states and actions where each
``(s_{i-1}, a_i, s_i)`` is a transition.  An *execution* is a fragment whose
first state is a start state.  The *trace* of an execution is its
subsequence of external actions; the *schedule* is its subsequence of all
actions.

The survey's proofs manipulate executions constantly — splicing them,
comparing process views, extending them — so this module makes executions
first-class immutable values with cheap extension (persistent cons-list
style sharing is unnecessary at our scale; we copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from .automaton import Action, IOAutomaton, State
from .errors import ExecutionError


@dataclass(frozen=True)
class Execution:
    """A finite execution (or execution fragment) of an I/O automaton.

    ``states`` has exactly one more element than ``actions``.
    """

    automaton: IOAutomaton
    states: Tuple[State, ...]
    actions: Tuple[Action, ...]

    def __post_init__(self):
        if len(self.states) != len(self.actions) + 1:
            raise ExecutionError(
                f"execution must have len(states) == len(actions) + 1; "
                f"got {len(self.states)} states, {len(self.actions)} actions"
            )

    # -- construction -----------------------------------------------------

    @classmethod
    def initial(cls, automaton: IOAutomaton, state: Optional[State] = None) -> "Execution":
        """The empty execution starting at ``state`` (default: first start state)."""
        if state is None:
            state = next(iter(automaton.initial_states()))
        return cls(automaton, (state,), ())

    def extend(self, action: Action, next_state: Optional[State] = None) -> "Execution":
        """Return this execution extended by one step.

        If ``next_state`` is None the step must be deterministic and is
        computed via :meth:`IOAutomaton.step`.
        """
        if next_state is None:
            next_state = self.automaton.step(self.last_state, action)
        else:
            succs = list(self.automaton.apply(self.last_state, action))
            if next_state not in succs:
                raise ExecutionError(
                    f"({self.last_state!r}, {action!r}, {next_state!r}) is not a transition"
                )
        return Execution(
            self.automaton, self.states + (next_state,), self.actions + (action,)
        )

    @classmethod
    def run(
        cls,
        automaton: IOAutomaton,
        actions: Iterable[Action],
        start: Optional[State] = None,
    ) -> "Execution":
        """Run a deterministic automaton over a schedule of actions."""
        execution = cls.initial(automaton, start)
        for action in actions:
            execution = execution.extend(action)
        return execution

    # -- accessors --------------------------------------------------------

    @property
    def first_state(self) -> State:
        return self.states[0]

    @property
    def last_state(self) -> State:
        return self.states[-1]

    def __len__(self) -> int:
        """Number of steps (actions)."""
        return len(self.actions)

    def trace(self) -> Tuple[Action, ...]:
        """The externally visible behaviour: the subsequence of external actions."""
        external = self.automaton.signature.external
        return tuple(a for a in self.actions if a in external)

    def schedule(self) -> Tuple[Action, ...]:
        """All actions, in order."""
        return self.actions

    def prefix(self, steps: int) -> "Execution":
        """The prefix with the given number of steps."""
        if not 0 <= steps <= len(self.actions):
            raise ExecutionError(f"prefix length {steps} out of range 0..{len(self.actions)}")
        return Execution(
            self.automaton, self.states[: steps + 1], self.actions[:steps]
        )

    def steps(self) -> Iterable[Tuple[State, Action, State]]:
        """Iterate over transitions as (pre-state, action, post-state) triples."""
        for i, action in enumerate(self.actions):
            yield self.states[i], action, self.states[i + 1]

    def project_actions(
        self, keep: Callable[[Action], bool]
    ) -> Tuple[Action, ...]:
        """The subsequence of actions satisfying ``keep``.

        This is the building block of indistinguishability arguments: the
        *view* of process p is (roughly) the projection of the schedule onto
        p's actions.
        """
        return tuple(a for a in self.actions if keep(a))

    def satisfies_invariant(self, invariant: Callable[[State], bool]) -> bool:
        """True if every state along the execution satisfies ``invariant``."""
        return all(invariant(s) for s in self.states)

    def first_violation(
        self, invariant: Callable[[State], bool]
    ) -> Optional[int]:
        """Index of the first state violating ``invariant``, or None."""
        for i, state in enumerate(self.states):
            if not invariant(state):
                return i
        return None

    def describe(self, max_steps: int = 20) -> str:
        """A short human-readable rendering for assertion messages."""
        parts: List[str] = [f"{self.automaton.name}: {self.first_state!r}"]
        for i, (pre, action, post) in enumerate(self.steps()):
            if i >= max_steps:
                parts.append(f"... ({len(self) - max_steps} more steps)")
                break
            parts.append(f"  --{action!r}--> {post!r}")
        return "\n".join(parts)

    def to_trace(
        self,
        substrate: str = "io-automaton",
        actor_of: Optional[Callable[[Action], object]] = None,
    ) -> "Trace":
        """This execution in the unified trace schema.

        One STEP event per action, attributed by ``actor_of`` (default:
        the automaton's name).  The trace's replayer re-validates every
        transition against the automaton (:func:`check_execution`) and
        re-derives the trace, so :func:`repro.core.runtime.replay` is a
        machine-checked certificate replay.
        """
        from .runtime import STEP, SimulationRuntime, Trace

        runtime = SimulationRuntime(substrate=substrate, protocol=self.automaton.name)
        for action in self.actions:
            actor = actor_of(action) if actor_of is not None else self.automaton.name
            runtime.emit(STEP, actor, action)

        def replayer(_self=self, _substrate=substrate, _actor_of=actor_of) -> Trace:
            check_execution(_self)
            return _self.to_trace(substrate=_substrate, actor_of=_actor_of)

        return runtime.finish(
            outcome={"steps": len(self)}, replayer=replayer
        )


def check_execution(execution: Execution) -> None:
    """Re-validate every transition of ``execution`` against its automaton.

    Used by certificate re-validation: a counterexample execution found by
    search is independently replayed before being reported.
    """
    automaton = execution.automaton
    if execution.first_state not in set(automaton.initial_states()):
        raise ExecutionError(
            f"first state {execution.first_state!r} is not a start state"
        )
    for pre, action, post in execution.steps():
        if post not in set(automaton.apply(pre, action)):
            raise ExecutionError(
                f"invalid transition ({pre!r}, {action!r}, {post!r})"
            )
