"""Schedulers: the adversaries that resolve nondeterminism.

Every impossibility argument in the survey is a game against a scheduler —
the entity choosing which process moves next, which message is delivered,
which fault occurs.  Schedulers are the I/O-automaton instantiation of the
unified :class:`~repro.core.runtime.FaultAdversary` interface: they use the
*scheduling* power only.  This module provides the schedulers the
simulators and experiments use:

* :class:`RoundRobinScheduler` — cycles through tasks, giving each enabled
  task a turn; its infinite runs are fair, so its finite runs approximate
  admissible executions.
* :class:`RandomScheduler` — seeded uniform choice among enabled actions;
  used for randomized-algorithm experiments (Ben-Or, Itai–Rodeh).
* :class:`GreedyScheduler` — picks the enabled action minimizing/maximizing
  a user-supplied score; used to build *bad* executions (e.g. stalling
  consensus, maximizing message counts).

All schedulers are deterministic functions of their seed and the run so
far, which keeps every test and benchmark reproducible; :meth:`~Scheduler.
run_traced` additionally records the run in the unified
:class:`~repro.core.runtime.Trace` schema so it replays through
:func:`repro.core.runtime.replay`.
"""

from __future__ import annotations

import random
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, List, Optional, Sequence

from .automaton import Action, IOAutomaton, State
from .budget import BudgetMeter
from .errors import ExecutionError
from .execution import Execution
from .runtime import STEP, FaultAdversary, SimulationRuntime, Trace


@dataclass
class TracedExecution:
    """An execution plus its unified-schema trace."""

    execution: Execution
    trace: Trace


class Scheduler(FaultAdversary, ABC):
    """Chooses the next action of an execution.

    The I/O-automaton face of :class:`~repro.core.runtime.FaultAdversary`:
    subclasses implement :meth:`choose` (and optionally
    :meth:`resolve_state` for nondeterministic automata) and inherit the
    uniform fault/reset contract.
    """

    @abstractmethod
    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        """Pick one of the enabled locally controlled actions."""

    def resolve_state(
        self, execution: Execution, action: Action, successors: Sequence[State]
    ) -> State:
        """Pick among nondeterministic successor states (default: first)."""
        return successors[0]

    def run(
        self,
        automaton: IOAutomaton,
        max_steps: int,
        start: Optional[State] = None,
        stop_when: Optional[Callable[[State], bool]] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> Execution:
        """Generate an execution of up to ``max_steps`` steps.

        Stops early when the automaton is quiescent or ``stop_when`` holds
        in the current state.  A ``meter`` charges one step per transition
        and raises :class:`~repro.core.budget.BudgetExceeded` on overdraft.
        """
        execution, _runtime = self._drive(
            automaton, max_steps, start, stop_when, runtime=None, meter=meter
        )
        return execution

    def run_traced(
        self,
        automaton: IOAutomaton,
        max_steps: int,
        start: Optional[State] = None,
        stop_when: Optional[Callable[[State], bool]] = None,
        *,
        substrate: str = "io-automaton",
        actor_of: Optional[Callable[[Action], Hashable]] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> TracedExecution:
        """Like :meth:`run`, recording the run in the unified trace schema.

        ``actor_of`` maps an action to the actor charged with it in the
        trace (default: the automaton's name), letting composed systems
        attribute steps to their component processes.
        """
        runtime = SimulationRuntime(
            substrate=substrate, protocol=automaton.name, adversary=self
        )
        execution, runtime = self._drive(
            automaton, max_steps, start, stop_when,
            runtime=runtime, actor_of=actor_of, meter=meter,
        )

        def replayer(
            _self=self, _automaton=automaton, _max_steps=max_steps,
            _start=start, _stop_when=stop_when, _substrate=substrate,
            _actor_of=actor_of,
        ) -> Trace:
            _self.reset()
            return _self.run_traced(
                _automaton, _max_steps, _start, _stop_when,
                substrate=_substrate, actor_of=_actor_of,
            ).trace

        trace = runtime.finish(
            outcome={"steps": len(execution)},
            replayer=replayer,
        )
        return TracedExecution(execution=execution, trace=trace)

    def _drive(
        self,
        automaton: IOAutomaton,
        max_steps: int,
        start: Optional[State],
        stop_when: Optional[Callable[[State], bool]],
        runtime: Optional[SimulationRuntime],
        actor_of: Optional[Callable[[Action], Hashable]] = None,
        meter: Optional[BudgetMeter] = None,
    ):
        """The single scheduling loop behind :meth:`run` and
        :meth:`run_traced`."""
        execution = Execution.initial(automaton, start)
        for _ in range(max_steps):
            if meter is not None:
                meter.charge_steps()
            state = execution.last_state
            if stop_when is not None and stop_when(state):
                break
            enabled = list(automaton.enabled_actions(state))
            if not enabled:
                break
            action = self.choose(execution, enabled)
            successors = list(automaton.apply(state, action))
            if not successors:
                raise ExecutionError(
                    f"scheduler chose {action!r} but it has no successors"
                )
            next_state = self.resolve_state(execution, action, successors)
            execution = execution.extend(action, next_state)
            if runtime is not None:
                actor = actor_of(action) if actor_of is not None else automaton.name
                runtime.emit(STEP, actor, action)
        return execution, runtime


class RoundRobinScheduler(Scheduler):
    """Cycle over the automaton's tasks, giving each a turn when enabled.

    This implements weak fairness over the task partition: in any
    sufficiently long run, every continuously enabled task takes steps at a
    bounded interval.  Finite prefixes of its runs are the library's
    stand-in for admissible executions.
    """

    def __init__(self, automaton: IOAutomaton):
        super().__init__()
        self._tasks = list(automaton.tasks())
        self._cursor = 0

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        enabled_set = set(enabled)
        for offset in range(len(self._tasks)):
            task = self._tasks[(self._cursor + offset) % len(self._tasks)]
            candidates = sorted(task & enabled_set, key=repr)
            if candidates:
                self._cursor = (self._cursor + offset + 1) % len(self._tasks)
                return candidates[0]
        # Enabled actions outside any task (shouldn't happen for well-formed
        # automata); fall back to a deterministic choice.
        return sorted(enabled, key=repr)[0]

    def reset(self) -> None:
        self._cursor = 0


class RandomScheduler(Scheduler):
    """Uniformly random choice among enabled actions, from a seed."""

    def __init__(self, seed: int = 0):
        super().__init__()
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        ordered = sorted(enabled, key=repr)
        return ordered[self._rng.randrange(len(ordered))]

    def resolve_state(
        self, execution: Execution, action: Action, successors: Sequence[State]
    ) -> State:
        ordered = sorted(successors, key=repr)
        return ordered[self._rng.randrange(len(ordered))]

    def schedule(self, options, rng=None):
        """Scheduling-adversary face: the scheduler's own seeded RNG rules."""
        return self._rng.randrange(len(options))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class GreedyScheduler(Scheduler):
    """Choose the enabled action maximizing ``score(execution, action)``.

    Ties are broken deterministically by repr ordering.  Used to construct
    bad executions: e.g. score = "does this step keep the configuration
    bivalent?" yields FLP-style stalling adversaries.
    """

    def __init__(self, score: Callable[[Execution, Action], float]):
        super().__init__()
        self._score = score

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        ordered = sorted(enabled, key=repr)
        return max(ordered, key=lambda a: self._score(execution, a))


class FixedScheduler(Scheduler):
    """Replay a fixed schedule of actions; used to re-validate certificates."""

    def __init__(self, schedule: Iterable[Action]):
        super().__init__()
        self._schedule: List[Action] = list(schedule)
        self._index = 0

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        if self._index >= len(self._schedule):
            raise ExecutionError("fixed schedule exhausted")
        action = self._schedule[self._index]
        self._index += 1
        if action not in set(enabled):
            raise ExecutionError(
                f"scheduled action {action!r} is not enabled; enabled: {sorted(map(repr, enabled))}"
            )
        return action

    def reset(self) -> None:
        self._index = 0


class ScriptedIndexScheduler(Scheduler):
    """Replay a script of *indices* into the repr-sorted enabled set.

    The chaos fuzzer's interleaving adversary: a schedule is a plain
    tuple of ints, so delta-debugging can delete and simplify atoms
    freely — out-of-range indices wrap (mod the number of options) and
    an exhausted script falls back to index 0, so every finite script
    denotes a total, deterministic schedule no matter how it is mangled.

    The same instance serves every scheduling-shaped substrate: it is a
    :class:`Scheduler` for I/O-automaton and shared-memory runs, and its
    :meth:`schedule` face drives the ring and asynchronous-network
    simulators through the unified
    :class:`~repro.core.runtime.FaultAdversary` protocol.
    """

    def __init__(self, script: Iterable[int]):
        super().__init__()
        self._script: List[int] = [int(i) for i in script]
        self._index = 0

    @property
    def script(self) -> List[int]:
        return list(self._script)

    def _next(self, width: int) -> int:
        if width <= 0 or self._index >= len(self._script):
            return 0
        index = self._script[self._index]
        self._index += 1
        return index % width

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        ordered = sorted(enabled, key=repr)
        return ordered[self._next(len(ordered))]

    def resolve_state(
        self, execution: Execution, action: Action, successors: Sequence[State]
    ) -> State:
        ordered = sorted(successors, key=repr)
        return ordered[self._next(len(ordered))] if len(ordered) > 1 else ordered[0]

    def schedule(self, options, rng=None):
        return self._next(len(options))

    def reset(self) -> None:
        self._index = 0


# -- deprecated names -------------------------------------------------------

_DEPRECATED = {"GreedyAdversary": ("GreedyScheduler", GreedyScheduler)}


def __getattr__(name: str):
    if name in _DEPRECATED:
        new_name, obj = _DEPRECATED[name]
        warnings.warn(
            f"repro.core.scheduler.{name} is deprecated; use {new_name} "
            "(the unified FaultAdversary hierarchy lives in repro.core.runtime)",
            DeprecationWarning,
            stacklevel=2,
        )
        return obj
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
