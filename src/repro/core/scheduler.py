"""Schedulers: the adversaries that resolve nondeterminism.

Every impossibility argument in the survey is a game against a scheduler —
the entity choosing which process moves next, which message is delivered,
which fault occurs.  This module provides the schedulers the simulators and
experiments use:

* :class:`RoundRobinScheduler` — cycles through tasks, giving each enabled
  task a turn; its infinite runs are fair, so its finite runs approximate
  admissible executions.
* :class:`RandomScheduler` — seeded uniform choice among enabled actions;
  used for randomized-algorithm experiments (Ben-Or, Itai–Rodeh).
* :class:`GreedyAdversary` — picks the enabled action minimizing/maximizing
  a user-supplied score; used to build *bad* executions (e.g. stalling
  consensus, maximizing message counts).

All schedulers are deterministic functions of their seed and the run so
far, which keeps every test and benchmark reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterable, List, Optional, Sequence

from .automaton import Action, IOAutomaton, State
from .errors import ExecutionError
from .execution import Execution


class Scheduler(ABC):
    """Chooses the next action of an execution."""

    @abstractmethod
    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        """Pick one of the enabled locally controlled actions."""

    def resolve_state(
        self, execution: Execution, action: Action, successors: Sequence[State]
    ) -> State:
        """Pick among nondeterministic successor states (default: first)."""
        return successors[0]

    def run(
        self,
        automaton: IOAutomaton,
        max_steps: int,
        start: Optional[State] = None,
        stop_when: Optional[Callable[[State], bool]] = None,
    ) -> Execution:
        """Generate an execution of up to ``max_steps`` steps.

        Stops early when the automaton is quiescent or ``stop_when`` holds
        in the current state.
        """
        execution = Execution.initial(automaton, start)
        for _ in range(max_steps):
            state = execution.last_state
            if stop_when is not None and stop_when(state):
                break
            enabled = list(automaton.enabled_actions(state))
            if not enabled:
                break
            action = self.choose(execution, enabled)
            successors = list(automaton.apply(state, action))
            if not successors:
                raise ExecutionError(
                    f"scheduler chose {action!r} but it has no successors"
                )
            next_state = self.resolve_state(execution, action, successors)
            execution = execution.extend(action, next_state)
        return execution


class RoundRobinScheduler(Scheduler):
    """Cycle over the automaton's tasks, giving each a turn when enabled.

    This implements weak fairness over the task partition: in any
    sufficiently long run, every continuously enabled task takes steps at a
    bounded interval.  Finite prefixes of its runs are the library's
    stand-in for admissible executions.
    """

    def __init__(self, automaton: IOAutomaton):
        self._tasks = list(automaton.tasks())
        self._cursor = 0

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        enabled_set = set(enabled)
        for offset in range(len(self._tasks)):
            task = self._tasks[(self._cursor + offset) % len(self._tasks)]
            candidates = sorted(task & enabled_set, key=repr)
            if candidates:
                self._cursor = (self._cursor + offset + 1) % len(self._tasks)
                return candidates[0]
        # Enabled actions outside any task (shouldn't happen for well-formed
        # automata); fall back to a deterministic choice.
        return sorted(enabled, key=repr)[0]


class RandomScheduler(Scheduler):
    """Uniformly random choice among enabled actions, from a seed."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        ordered = sorted(enabled, key=repr)
        return ordered[self._rng.randrange(len(ordered))]

    def resolve_state(
        self, execution: Execution, action: Action, successors: Sequence[State]
    ) -> State:
        ordered = sorted(successors, key=repr)
        return ordered[self._rng.randrange(len(ordered))]


class GreedyAdversary(Scheduler):
    """Choose the enabled action maximizing ``score(execution, action)``.

    Ties are broken deterministically by repr ordering.  Used to construct
    bad executions: e.g. score = "does this step keep the configuration
    bivalent?" yields FLP-style stalling adversaries.
    """

    def __init__(self, score: Callable[[Execution, Action], float]):
        self._score = score

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        ordered = sorted(enabled, key=repr)
        return max(ordered, key=lambda a: self._score(execution, a))


class FixedScheduler(Scheduler):
    """Replay a fixed schedule of actions; used to re-validate certificates."""

    def __init__(self, schedule: Iterable[Action]):
        self._schedule: List[Action] = list(schedule)
        self._index = 0

    def choose(self, execution: Execution, enabled: Sequence[Action]) -> Action:
        if self._index >= len(self._schedule):
            raise ExecutionError("fixed schedule exhausted")
        action = self._schedule[self._index]
        self._index += 1
        if action not in set(enabled):
            raise ExecutionError(
                f"scheduled action {action!r} is not enabled; enabled: {sorted(map(repr, enabled))}"
            )
        return action
